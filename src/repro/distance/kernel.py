"""Vectorized intra-partition distance kernel (struct-of-arrays).

Per-pair Python object math is the last scalability wall after
interning (PR 4) and the block-sparse layout (PR 5): within one
table-set partition every entry is ``d_conj`` over the same small family
of predicates, evaluated ``m·(m−1)/2`` times through dataclass
dispatch, interval objects and dict-backed memos.  This module packs a
partition **once** into flat numpy arrays and produces whole condensed
blocks as array operations:

* **predicate layer** — distinct predicates are deduplicated by value
  (the same equivalence the oracle's pair LRU uses) and their pairwise
  ``d_pred`` matrix is built per category: numeric interval footprints
  as float64 endpoint slots, categorical footprints as uint64 bitset
  rows over the ordered vocabulary, coverage products for cross-column
  pairs, structural keys for column-column predicates;
* **clause layer** — distinct clauses map to rows of a ``d_disj``
  matrix: unit×unit pairs are a gather of the predicate matrix, the
  rare non-unit pairs run the symmetric best-match average over
  predicate-matrix slices;
* **area layer** — the per-clause best match against every area is one
  ``min``-gather table, and the condensed block accumulates forward and
  backward direction sums with two strided writes per row.

The pure-Python :class:`~.predicate_distance.PredicateDistance` remains
the semantic oracle.  **Every fast-path value is bitwise-equal to the
oracle**, not merely close: per-predicate quantities (widened
footprints, total widths, coverage fractions, categorical footprints)
are computed *by the oracle's own helpers* at pack time, and the
vectorized combination replays the oracle's floating-point operation
order — sequential axis-0 reductions for the direction sums (numpy
reduces the outer axis of a C-contiguous array strictly left-to-right,
matching Python's ``+=`` loop), Python-loop sums for clause-level
best-match totals (1-D ``ndarray.sum`` is *not* sequential beyond 8
elements), and identical guard expressions (``max(0.0, 1 − i/u)``,
``union <= 0`` structural fallbacks, empty-CNF fixups).  The
conformance battery in ``tests/distance/test_kernel_conformance.py``
asserts this equality within 1e-12 (and exactly, in practice) across
hypothesis-generated predicate populations.

Anything the pack cannot replay exactly — non-finite or non-float-exact
numeric constants, boolean constants (whose ``True == 1`` predicate
equality makes even the oracle's memo order-dependent), subclassed
metrics, missing numpy — raises :class:`KernelUnsupported` and the
caller falls back to the per-pair pure-Python path for that partition.
"""

from __future__ import annotations

import math
import time
from dataclasses import dataclass, field
from typing import Optional, Sequence

try:  # pragma: no cover - numpy is present in the supported toolchain
    import numpy as np
except ImportError:  # pragma: no cover
    np = None  # type: ignore[assignment]

from ..algebra.cnf import Clause
from ..algebra.predicates import (ColumnColumnPredicate,
                                  ColumnConstantPredicate,
                                  normalize_constant)
from ..obs import get_logger, trace
from .predicate_distance import PredicateDistance, _categorical_footprint
from .query_distance import QueryDistance

logger = get_logger(__name__)

#: Interval slots per packed numeric footprint.  With a positive
#: resolution every widened footprint is a single interval (the two
#: ``<>`` rays merge); two slots only occur at resolution 0.
_MAX_SLOTS = 2


class KernelUnsupported(Exception):
    """A partition (or metric) the vectorized kernel cannot replay
    bitwise; callers fall back to the pure-Python oracle path."""


def kernel_available() -> bool:
    """True when numpy is importable (the kernel's only requirement)."""
    return np is not None


@dataclass
class KernelStats:
    """Instrumentation of one :func:`compute_kernel_blocks` run."""

    partitions_packed: int = 0
    partitions_fallback: int = 0
    #: distinct predicates/clauses across all packed partitions
    n_predicates: int = 0
    n_clauses: int = 0
    pairs_vectorized: int = 0
    pairs_fallback: int = 0
    pack_seconds: float = 0.0
    block_seconds: float = 0.0
    #: per-metric totals already pushed to a registry (see :meth:`record`)
    _recorded: dict = field(default_factory=dict, repr=False,
                            compare=False)

    @property
    def vectorized_fraction(self) -> float:
        total = self.pairs_vectorized + self.pairs_fallback
        if not total:
            return 0.0
        return self.pairs_vectorized / total

    def summary(self) -> str:
        return (
            f"{self.partitions_packed} partitions packed "
            f"({self.partitions_fallback} fell back), "
            f"{self.n_predicates} predicates / {self.n_clauses} clauses "
            f"packed; {self.pairs_vectorized:,} pairs vectorized "
            f"({self.vectorized_fraction:.1%}); "
            f"pack {self.pack_seconds:.3f} s, "
            f"blocks {self.block_seconds:.3f} s")

    def record(self, registry) -> None:
        """Fold this run into a metrics registry (``repro_kernel_*``).

        Delta-based and idempotent under re-recording (see
        :func:`repro.obs.metrics.record_counter_deltas`)."""
        from ..obs.metrics import (observe_when_changed,
                                   record_counter_deltas)
        record_counter_deltas(registry, self._recorded, (
            ("repro_kernel_partitions_packed_total",
             self.partitions_packed),
            ("repro_kernel_partitions_fallback_total",
             self.partitions_fallback),
            ("repro_kernel_pairs_vectorized_total",
             self.pairs_vectorized),
            ("repro_kernel_pairs_fallback_total",
             self.pairs_fallback),
            ("repro_kernel_predicates_total", self.n_predicates),
            ("repro_kernel_clauses_total", self.n_clauses)))
        observe_when_changed(registry, self._recorded,
                             "repro_kernel_pack_seconds",
                             self.pack_seconds)
        observe_when_changed(registry, self._recorded,
                             "repro_kernel_block_seconds",
                             self.block_seconds)


def oracle_of(metric) -> PredicateDistance:
    """The :class:`PredicateDistance` behind a plain query metric.

    Only an unmodified :class:`QueryDistance` is replayable: a subclass
    overriding any distance component would change the semantics the
    pack reproduces, so anything else raises :class:`KernelUnsupported`.
    """
    if not isinstance(metric, QueryDistance):
        raise KernelUnsupported(
            f"kernel requires a QueryDistance metric, "
            f"got {type(metric).__name__}")
    for name in ("__call__", "distance", "d_tables", "d_conj", "d_disj",
                 "d_pred"):
        if getattr(type(metric), name) is not getattr(QueryDistance, name):
            raise KernelUnsupported(
                f"metric overrides QueryDistance.{name}; the kernel "
                f"cannot guarantee oracle parity")
    pred = metric._pred
    if type(pred) is not PredicateDistance:
        raise KernelUnsupported(
            f"unexpected predicate oracle {type(pred).__name__}")
    return pred


def _exact(value) -> float:
    """``value`` as float64, refusing any rounding.

    Interval endpoints may be exact Python ints (SkyServer ``objid``
    constants exceed the float53 mantissa at resolution 0); a lossy
    conversion would silently change the width arithmetic the oracle
    performs exactly.
    """
    result = float(value)
    if result != value:
        raise KernelUnsupported(
            f"constant {value!r} is not exactly representable in float64")
    return result


class PackedPartition:
    """Struct-of-arrays pack of one partition's access areas.

    Within a partition ``d_tables == 0`` and the full metric collapses
    to ``d_conj``; the pack therefore produces ``d_conj`` values, which
    equal the metric's bitwise.  Raises :class:`KernelUnsupported` when
    any predicate kind cannot be replayed exactly.
    """

    def __init__(self, areas: Sequence, metric) -> None:
        if np is None:
            raise KernelUnsupported("numpy is not available")
        self._oracle = oracle_of(metric)
        self._stats_catalog = metric.stats

        # Dedup state is retained so :meth:`extend` can append areas
        # with stable predicate/clause/area ids: clauses and predicates
        # are deduplicated by *value* — the same dataclass equality the
        # oracle's memo keys use, so spelling variants (``x = 5`` vs
        # ``x = 5.0``) share one packed row exactly like they share one
        # memo entry.  Per-position id lists keep duplicates: direction
        # sums count positions, not values.
        self._clause_ids: dict[Clause, int] = {}
        self._clauses: list[Clause] = []
        self._pred_ids: dict = {}
        self._preds: list = []
        self._clause_pred_ids: list[list[int]] = []
        self._area_clause_ids: list[list[int]] = []

        self.n_areas = 0
        self.n_predicates = 0
        self.n_clauses = 0
        self._dp = np.zeros((0, 0), dtype=float)
        self._finish_area_layer([], np.zeros((0, 0), dtype=float))
        self.extend(areas)

    def extend(self, areas: Sequence) -> None:
        """Append ``areas`` to the pack, keeping every existing
        predicate/clause/area id stable.

        The grown pack is **bitwise-identical** to a from-scratch pack
        over the concatenated area list: appending preserves the
        first-seen enumeration order of the dedup pass, predicate and
        clause entries are independent per pair, and the best-match
        table's exact ``min`` is order-insensitive.  Raises
        :class:`KernelUnsupported` — *before* mutating any state — when
        a new area's predicates cannot be replayed exactly; callers can
        keep using the unmodified pack after catching it.

        Requires the statistics catalog used at construction to be
        unchanged since: widened access intervals would silently
        invalidate the old predicate rows (the incremental clustering
        layer freezes a private snapshot for exactly this reason).
        """
        areas = list(areas)
        if not areas:
            return
        # -- tentative dedup (no mutation until every check passes) ----
        clause_ids = dict(self._clause_ids)
        clauses = list(self._clauses)
        area_clause_ids = []
        for area in areas:
            ids = []
            for clause in area.cnf.clauses:
                cid = clause_ids.get(clause)
                if cid is None:
                    cid = len(clauses)
                    clause_ids[clause] = cid
                    clauses.append(clause)
                ids.append(cid)
            area_clause_ids.append(ids)
        c_old = self.n_clauses
        new_clauses = clauses[c_old:]

        pred_ids = dict(self._pred_ids)
        preds = list(self._preds)
        clause_pred_ids = list(self._clause_pred_ids)
        for clause in new_clauses:
            ids = []
            for pred in clause.predicates:
                pid = pred_ids.get(pred)
                if pid is None:
                    pid = len(preds)
                    pred_ids[pred] = pid
                    preds.append(pred)
                ids.append(pid)
            clause_pred_ids.append(ids)
        p_old = self.n_predicates
        _check_supported(preds[p_old:])

        # -- rebuild/extend the vectorized tables ----------------------
        # The predicate block raises KernelUnsupported for constants it
        # cannot replay bitwise, so it runs before any commit; nothing
        # below this point can fail.
        dp = self._dp
        if len(preds) > p_old:
            # Full vectorized rebuild: entries between old predicates
            # are elementwise formulas over unchanged inputs, so they
            # stay bitwise-identical and every old clause entry built
            # from them remains valid.
            dp = _predicate_block(preds, self._oracle,
                                  self._stats_catalog)

        # -- commit ----------------------------------------------------
        self._clause_ids = clause_ids
        self._clauses = clauses
        self._pred_ids = pred_ids
        self._preds = preds
        self._clause_pred_ids = clause_pred_ids
        self.n_predicates = len(preds)
        self._dp = dp
        self._area_clause_ids.extend(area_clause_ids)
        if self.n_areas == 0:
            # First fill: build every layer from scratch.
            self.n_clauses = len(clauses)
            self.n_areas = len(self._area_clause_ids)
            self._finish_area_layer(
                self._area_clause_ids,
                _clause_block(clauses, clause_pred_ids, dp))
        else:
            if new_clauses:
                self._append_clause_rows(
                    _clause_rows(clauses, clause_pred_ids, dp, c_old))
            self._append_area_columns(area_clause_ids)

    # -- growable views -----------------------------------------------------
    #
    # The clause and area layers live in capacity-doubled buffers so a
    # streaming insert appends rows/columns instead of reallocating
    # O(c·m) state; the public ``_dc``/``_best``/``_counts``/``_id_pad``
    # names are views of the live region.  Downstream consumers only
    # ever *gather* from these (fancy indexing copies into fresh
    # C-contiguous arrays), so the strided views preserve the bitwise
    # summation-order guarantees documented on each method.

    @property
    def _dc(self) -> "np.ndarray":
        return self._dc_ext_buf[:self.n_clauses, :self.n_clauses]

    @property
    def _dc_ext(self) -> "np.ndarray":
        return self._dc_ext_buf[:self.n_clauses, :self.n_clauses + 1]

    @property
    def _counts(self) -> "np.ndarray":
        return self._counts_buf[:self.n_areas]

    @property
    def _id_pad(self) -> "np.ndarray":
        return self._id_pad_buf[:self.n_areas]

    @property
    def _best(self) -> "np.ndarray":
        return self._best_buf[:self.n_clauses, :self.n_areas]

    # -- area layer ---------------------------------------------------------

    def _finish_area_layer(self, area_clause_ids: list[list[int]],
                           dc: "np.ndarray") -> None:
        m = self.n_areas
        c = self.n_clauses
        counts = np.array([len(ids) for ids in area_clause_ids],
                          dtype=np.intp)
        self._ids = [np.asarray(ids, dtype=np.intp)
                     for ids in area_clause_ids]
        lmax = int(counts.max()) if m else 0
        self._l_cap = max(lmax, 1)
        self._m_cap = max(m, 4)
        self._c_cap = max(c, 4)
        self._counts_buf = np.zeros(self._m_cap, dtype=np.intp)
        self._counts_buf[:m] = counts
        # Padded clause-id matrix: pad index ``c`` addresses a sentinel
        # column/value in the extended tables below; the sentinel index
        # is remapped whenever the clause layer grows.
        self._id_pad_buf = np.full((self._m_cap, self._l_cap), c,
                                   dtype=np.intp)
        for row, ids in enumerate(area_clause_ids):
            self._id_pad_buf[row, :len(ids)] = ids
        self._dc_ext_buf = np.full(
            (self._c_cap, self._c_cap + 1), np.inf)
        self._dc_ext_buf[:c, :c] = dc
        # best_match[k, j] = min over area j's clauses of d_disj(k, ·):
        # the shared inner term of both direction sums.
        best = self._best_buf = np.full((self._c_cap, self._m_cap),
                                        np.inf)
        dc_ext = self._dc_ext
        for level in range(lmax):
            np.minimum(best[:c, :m], dc_ext[:, self._id_pad[:, level]],
                       out=best[:c, :m])
        self._row_cache: Optional[tuple[int, np.ndarray]] = None

    def _append_clause_rows(self, rows: "np.ndarray") -> None:
        """Commit ``_clause_rows`` output: grow the clause dimension of
        the ``d_disj`` and best-match tables and remap the pad
        sentinel."""
        c_old = self.n_clauses
        c = c_old + rows.shape[0]
        if c > self._c_cap:
            cap = max(self._c_cap * 2, c)
            dc_buf = np.full((cap, cap + 1), np.inf)
            dc_buf[:c_old, :c_old] = self._dc_ext_buf[:c_old, :c_old]
            self._dc_ext_buf = dc_buf
            best_buf = np.full((cap, self._m_cap), np.inf)
            best_buf[:c_old] = self._best_buf[:c_old]
            self._best_buf = best_buf
            self._c_cap = cap
        buf = self._dc_ext_buf
        buf[c_old:c, :c] = rows
        buf[:c_old, c_old:c] = rows[:, :c_old].T
        buf[:c, c] = np.inf
        # Old pad rows address the former sentinel column: remap.
        self._id_pad_buf[self._id_pad_buf == c_old] = c
        self.n_clauses = c
        # Best-match rows of the new clauses against every existing
        # area, by the same exact min-gather the full build performs.
        m = self.n_areas
        if m:
            new = self._best_buf[c_old:c, :m]
            new[:] = np.inf
            for level in range(self._l_cap):
                np.minimum(
                    new,
                    buf[c_old:c, :][:, self._id_pad_buf[:m, level]],
                    out=new)
        self._row_cache = None

    def _append_area_columns(
            self, area_clause_ids: list[list[int]]) -> None:
        """Append per-area columns for new members (clause layer must
        already cover their clause ids)."""
        c = self.n_clauses
        m_old = self.n_areas
        m = m_old + len(area_clause_ids)
        need_l = max((len(ids) for ids in area_clause_ids), default=0)
        if need_l > self._l_cap:
            pad = np.full((self._m_cap, max(need_l, 2 * self._l_cap)),
                          c, dtype=np.intp)
            pad[:, :self._l_cap] = self._id_pad_buf
            self._id_pad_buf = pad
            self._l_cap = pad.shape[1]
        if m > self._m_cap:
            cap = max(self._m_cap * 2, m)
            counts = np.zeros(cap, dtype=np.intp)
            counts[:m_old] = self._counts_buf[:m_old]
            self._counts_buf = counts
            pad = np.full((cap, self._l_cap), c, dtype=np.intp)
            pad[:m_old] = self._id_pad_buf[:m_old]
            self._id_pad_buf = pad
            best = np.full((self._c_cap, cap), np.inf)
            best[:, :m_old] = self._best_buf[:, :m_old]
            self._best_buf = best
            self._m_cap = cap
        for offset, ids in enumerate(area_clause_ids):
            row = m_old + offset
            arr = np.asarray(ids, dtype=np.intp)
            self._ids.append(arr)
            self._counts_buf[row] = len(arr)
            self._id_pad_buf[row, :] = c
            self._id_pad_buf[row, :len(arr)] = arr
            if len(arr):
                self._best_buf[:c, row] = \
                    self._dc_ext_buf[:c, arr].min(axis=1)
            else:
                self._best_buf[:c, row] = np.inf
        self.n_areas = m
        self._row_cache = None

    @property
    def storage_floats(self) -> int:
        """Floats held by the pack's tables (predicate + clause +
        best-match layers) — the sub-quadratic footprint that replaces
        the partition's ``m·(m−1)/2`` condensed block."""
        return int(self._dp.size + self._dc_ext.size + self._best.size)

    def _forward_row(self, i: int) -> Optional[np.ndarray]:
        """``Σ_{o ∈ cnf_i} min_{o' ∈ cnf_j} d_disj(o, o')`` for every j.

        The axis-0 reduction of the C-contiguous row gather adds the
        clause rows strictly left-to-right — the oracle's ``forward +=``
        order — so the sums are bitwise-identical.
        """
        if not self._counts[i]:
            return None
        return self._best[self._ids[i]].sum(axis=0)

    def condensed_block(self) -> "np.ndarray":
        """The partition's full condensed ``d_conj`` upper triangle,
        bitwise-equal to the pure-Python per-pair evaluation."""
        m = self.n_areas
        counts = self._counts
        out = np.zeros(m * (m - 1) // 2, dtype=float)
        denom = np.ones_like(out)
        for i in range(m):
            row = self._forward_row(i)
            start = i * (2 * m - i - 1) // 2
            if i + 1 < m:
                stop = start + m - 1 - i
                if row is not None:
                    out[start:stop] += row[i + 1:]
                denom[start:stop] = counts[i] + counts[i + 1:]
            if i > 0 and row is not None:
                js = np.arange(i)
                back = js * (2 * m - js - 1) // 2 + (i - js - 1)
                out[back] += row[:i]
        with np.errstate(divide="ignore", invalid="ignore"):
            values = out / denom
        self._fix_empty_pairs(values)
        return values

    def _fix_empty_pairs(self, values: "np.ndarray") -> None:
        """Replay the oracle's empty-CNF rules (both empty → 0, one
        empty → 1) over the condensed layout."""
        zero = self._counts == 0
        if not zero.any():
            return
        m = self.n_areas
        for i in range(m - 1):
            start = i * (2 * m - i - 1) // 2
            segment = values[start:start + m - 1 - i]
            later_zero = zero[i + 1:]
            if zero[i]:
                segment[later_zero] = 0.0
                segment[~later_zero] = 1.0
            elif later_zero.any():
                segment[later_zero] = 1.0

    def clause_best(self, i: int) -> "np.ndarray":
        """``v[c] = min over area i's clauses of d_disj(c, ·)`` for every
        distinct clause ``c``, padded with a trailing 0.0 sentinel —
        the shared backward-direction ingredient of :meth:`pair_rows`
        and of the metric index's certified pruning bounds."""
        cached = self._row_cache
        if cached is not None and cached[0] == i:
            return cached[1]
        v = self._dc[:, self._ids[i]].min(axis=1) \
            if self.n_clauses and self._counts[i] else \
            np.full(self.n_clauses, np.inf)
        v_ext = np.append(v, 0.0)
        self._row_cache = (i, v_ext)
        return v_ext

    def pair_rows(self, i: int, js: Sequence[int]) -> "np.ndarray":
        """``d_conj`` from area ``i`` to each area in ``js``, bitwise-
        equal to the condensed block entries (one-vs-many form for the
        metric-tree index)."""
        js = np.asarray(js, dtype=np.intp)
        counts = self._counts
        n_i = int(counts[i])
        if n_i == 0:
            return np.where(counts[js] == 0, 0.0, 1.0)
        forward = self._best[self._ids[i]][:, js].sum(axis=0)
        v_ext = self.clause_best(i)
        # C-contiguous transposed gather: each backward sum runs down a
        # column left-to-right, trailing pad zeros are order-neutral.
        back_ids = np.ascontiguousarray(self._id_pad[js].T)
        backward = v_ext[back_ids].sum(axis=0)
        with np.errstate(divide="ignore", invalid="ignore"):
            values = (forward + backward) / (n_i + counts[js])
        other_zero = counts[js] == 0
        if other_zero.any():
            values[other_zero] = 1.0
        return values


def _check_supported(preds: Sequence) -> None:
    for pred in preds:
        if isinstance(pred, ColumnColumnPredicate):
            continue
        if not isinstance(pred, ColumnConstantPredicate):
            raise KernelUnsupported(
                f"unsupported predicate kind {type(pred).__name__}")
        value = pred.value
        if isinstance(value, bool):
            # ``True == 1`` makes bool/int predicate identity — and
            # therefore the oracle's own memo — evaluation-order
            # dependent; only the true per-pair path reproduces it.
            raise KernelUnsupported(
                "boolean constants are not replayable bitwise")
        if isinstance(value, str):
            continue
        if isinstance(value, (int, float)):
            try:
                numeric = float(value)
            except OverflowError as exc:
                raise KernelUnsupported(
                    f"constant {value!r} overflows float64") from exc
            if not math.isfinite(numeric):
                raise KernelUnsupported(
                    f"non-finite constant {value!r}")
            continue
        raise KernelUnsupported(
            f"unsupported constant type {type(value).__name__}")


# -- predicate layer ---------------------------------------------------------


def _predicate_block(preds: Sequence, oracle: PredicateDistance,
                     stats) -> "np.ndarray":
    """Pairwise ``d_pred`` over the deduplicated predicates.

    The default 1.0 covers every structurally-unrelated pair (mixed
    type on one column, categorical across columns, column-column vs
    column-constant); the category fills below overwrite exactly the
    pairs the oracle treats specially.
    """
    p = len(preds)
    dp = np.ones((p, p), dtype=float)

    numeric = [(pid, pred) for pid, pred in enumerate(preds)
               if isinstance(pred, ColumnConstantPredicate)
               and pred.is_numeric]
    if numeric:
        # Cross-column numeric pairs: 1 − cov·cov everywhere; the
        # same-column groups are overwritten right after.
        idx = np.array([pid for pid, _ in numeric], dtype=np.intp)
        cov = np.array([oracle._coverage_fraction(pred)
                        for _, pred in numeric])
        dp[np.ix_(idx, idx)] = 1.0 - cov[:, None] * cov[None, :]
        by_ref: dict = {}
        for pid, pred in numeric:
            by_ref.setdefault(pred.ref, []).append((pid, pred))
        for ref, members in by_ref.items():
            gidx = np.array([pid for pid, _ in members], dtype=np.intp)
            group = [pred for _, pred in members]
            access = stats.access_interval(ref)
            width = access.width
            if not math.isfinite(width):
                block = _equality_block(
                    [(pred.op, normalize_constant(pred.value))
                     for pred in group])
            elif width <= 0:
                block = _equality_block(
                    [normalize_constant(pred.value) for pred in group])
            else:
                block = _numeric_block(group, oracle, access)
            dp[np.ix_(gidx, gidx)] = block

    by_ref = {}
    for pid, pred in enumerate(preds):
        if isinstance(pred, ColumnConstantPredicate) \
                and isinstance(pred.value, str):
            by_ref.setdefault(pred.ref, []).append((pid, pred))
    for ref, members in by_ref.items():
        gidx = np.array([pid for pid, _ in members], dtype=np.intp)
        vocabulary = stats.access_values(ref)
        footprints = [_categorical_footprint(pred, vocabulary)
                      for _, pred in members]
        dp[np.ix_(gidx, gidx)] = _categorical_block(footprints)

    joins = [(pid, pred) for pid, pred in enumerate(preds)
             if isinstance(pred, ColumnColumnPredicate)]
    if joins:
        idx = np.array([pid for pid, _ in joins], dtype=np.intp)
        # Operand order is canonical, so the ordered qualified-name pair
        # is exactly the unordered column-pair key the oracle compares.
        keys = [(pred.left.qualified, pred.right.qualified)
                for _, pred in joins]
        key_ids = _intern(keys)
        same = key_ids[:, None] == key_ids[None, :]
        dp[np.ix_(idx, idx)] = np.where(same, 0.5, 1.0)

    np.fill_diagonal(dp, 0.0)
    return dp


def _intern(keys: Sequence) -> "np.ndarray":
    table: dict = {}
    out = np.empty(len(keys), dtype=np.intp)
    for position, key in enumerate(keys):
        out[position] = table.setdefault(key, len(table))
    return out


def _equality_block(keys: Sequence) -> "np.ndarray":
    """0.0 on equal keys, 1.0 elsewhere (degenerate-access semantics)."""
    ids = _intern(keys)
    return np.where(ids[:, None] == ids[None, :], 0.0, 1.0)


def _numeric_block(group: Sequence, oracle: PredicateDistance,
                   access) -> "np.ndarray":
    """Same-column numeric ``d_pred``: Jaccard of widened footprints.

    Footprints, their total widths and their structural identities come
    from the oracle itself; only the pairwise intersection widths are
    vectorized — slot by slot in the oracle's sorted accumulation order,
    with empty slots as reversed-infinity sentinels whose clipped
    contribution is exactly 0.0.
    """
    g = len(group)
    footprints = [oracle._widened(pred, access) for pred in group]
    slots = max((len(fp) for fp in footprints), default=0)
    if slots > _MAX_SLOTS:
        raise KernelUnsupported(
            f"footprint with {slots} intervals exceeds the packed "
            f"slot budget")
    slots = max(slots, 1)
    lo = np.full((g, slots), np.inf)
    hi = np.full((g, slots), -np.inf)
    widths = np.empty(g)
    empty = np.zeros(g, dtype=bool)
    structure = _intern(footprints)
    for row, fp in enumerate(footprints):
        for slot, interval in enumerate(fp):
            lo[row, slot] = _exact(interval.lo)
            hi[row, slot] = _exact(interval.hi)
        widths[row] = _exact(fp.total_width)
        empty[row] = fp.is_empty
    if g and not math.isfinite(2.0 * float(widths.max())):
        # w1 + w2 could overflow to inf and drag the union through
        # inf − inf = NaN, where numpy's maximum() and Python's max()
        # disagree; leave such pathologies to the oracle.
        raise KernelUnsupported("footprint widths overflow float64")

    inter = np.zeros((g, g))
    for s in range(slots):
        for t in range(slots):
            segment = (np.minimum(hi[:, s, None], hi[None, :, t])
                       - np.maximum(lo[:, s, None], lo[None, :, t]))
            inter = inter + np.maximum(segment, 0.0)
    union = (widths[:, None] + widths[None, :]) - inter
    with np.errstate(divide="ignore", invalid="ignore"):
        block = np.maximum(0.0, 1.0 - inter / union)
    degenerate = union <= 0.0
    if degenerate.any():
        same = (structure[:, None] == structure[None, :]) \
            & ~empty[:, None]
        block = np.where(degenerate, np.where(same, 0.0, 1.0), block)
    return block


def _categorical_block(footprints: Sequence) -> "np.ndarray":
    """Same-column categorical ``d_pred`` over bitset footprint rows."""
    g = len(footprints)
    universe: list[str] = sorted(set().union(*footprints)) \
        if footprints else []
    position = {value: k for k, value in enumerate(universe)}
    n_words = max((len(universe) + 63) // 64, 1)
    bits = np.zeros((g, n_words), dtype=np.uint64)
    for row, fp in enumerate(footprints):
        for value in fp:
            k = position[value]
            bits[row, k >> 6] |= np.uint64(1 << (k & 63))
    inter = np.bitwise_count(bits[:, None, :] & bits[None, :, :]) \
        .sum(axis=2, dtype=np.int64)
    union = np.bitwise_count(bits[:, None, :] | bits[None, :, :]) \
        .sum(axis=2, dtype=np.int64)
    with np.errstate(divide="ignore", invalid="ignore"):
        block = 1.0 - inter / union
    return np.where(union == 0, 0.0, block)


# -- clause layer ------------------------------------------------------------


def _clause_block(clauses: Sequence, clause_pred_ids: Sequence,
                  dp: "np.ndarray") -> "np.ndarray":
    """Pairwise ``d_disj`` over the deduplicated clauses."""
    c = len(clauses)
    dc = np.ones((c, c), dtype=float)
    lengths = np.array([len(ids) for ids in clause_pred_ids],
                       dtype=np.intp)

    unit = np.flatnonzero(lengths == 1)
    if len(unit):
        unit_pids = np.array([clause_pred_ids[k][0] for k in unit],
                             dtype=np.intp)
        dc[np.ix_(unit, unit)] = dp[np.ix_(unit_pids, unit_pids)]
    empty = np.flatnonzero(lengths == 0)
    if len(empty):
        dc[np.ix_(empty, empty)] = 0.0

    multi = [int(k) for k in np.flatnonzero(lengths >= 2)]
    multi_set = set(multi)
    for ci in multi:
        ids1 = np.asarray(clause_pred_ids[ci], dtype=np.intp)
        n1 = len(ids1)
        for cj in range(c):
            n2 = int(lengths[cj])
            if n2 == 0 or cj == ci:
                continue
            if cj in multi_set and cj < ci:
                continue  # symmetric, already filled
            sub = dp[np.ix_(ids1, np.asarray(clause_pred_ids[cj],
                                             dtype=np.intp))]
            # Python-loop totals: 1-D ndarray.sum is not left-to-right
            # beyond 8 elements, the oracle's ``+=`` loop is.
            forward = 0.0
            for value in sub.min(axis=1).tolist():
                forward += value
            backward = 0.0
            for value in sub.min(axis=0).tolist():
                backward += value
            dc[ci, cj] = dc[cj, ci] = (forward + backward) / (n1 + n2)
    np.fill_diagonal(dc, 0.0)
    return dc


def _clause_rows(clauses: Sequence, clause_pred_ids: Sequence,
                 dp: "np.ndarray", c_old: int) -> "np.ndarray":
    """``d_disj`` rows of the clauses at ids ``c_old..len(clauses)``
    against *every* clause (old and new).

    Each pair runs the exact :func:`_clause_block` formula for its
    category, so stacking these rows under (and their transpose beside)
    an existing block reproduces the from-scratch matrix bitwise.
    """
    c = len(clauses)
    rows = np.ones((c - c_old, c), dtype=float)
    lengths = np.array([len(ids) for ids in clause_pred_ids],
                       dtype=np.intp)

    unit = np.flatnonzero(lengths == 1)
    new_unit = unit[unit >= c_old]
    if len(new_unit):
        pids_all = np.array([clause_pred_ids[int(k)][0] for k in unit],
                            dtype=np.intp)
        pids_new = np.array(
            [clause_pred_ids[int(k)][0] for k in new_unit],
            dtype=np.intp)
        rows[np.ix_(new_unit - c_old, unit)] = \
            dp[np.ix_(pids_new, pids_all)]
    empty = np.flatnonzero(lengths == 0)
    new_empty = empty[empty >= c_old]
    if len(new_empty):
        rows[np.ix_(new_empty - c_old, empty)] = 0.0

    multi_set = {int(k) for k in np.flatnonzero(lengths >= 2)}
    for ci in sorted(multi_set):
        ids1 = np.asarray(clause_pred_ids[ci], dtype=np.intp)
        n1 = len(ids1)
        # Old-old pairs are retained from the existing block; an old
        # multi clause only pairs against the new id range.
        for cj in range(c_old if ci < c_old else 0, c):
            n2 = int(lengths[cj])
            if n2 == 0 or cj == ci:
                continue
            if cj in multi_set and cj < ci:
                continue  # symmetric, already filled
            sub = dp[np.ix_(ids1, np.asarray(clause_pred_ids[cj],
                                             dtype=np.intp))]
            forward = 0.0
            for value in sub.min(axis=1).tolist():
                forward += value
            backward = 0.0
            for value in sub.min(axis=0).tolist():
                backward += value
            value = (forward + backward) / (n1 + n2)
            if ci >= c_old:
                rows[ci - c_old, cj] = value
            if cj >= c_old:
                rows[cj - c_old, ci] = value
    for k in range(c_old, c):
        rows[k - c_old, k] = 0.0
    return rows


# -- partition fan-out -------------------------------------------------------


def compute_kernel_blocks(items: Sequence, metric,
                          members: Sequence[Sequence[int]],
                          ) -> tuple[list, KernelStats]:
    """Condensed blocks for each partition, vectorized where possible.

    Mirrors :func:`~.parallel.compute_blocks`'s output shape: one
    row-major condensed upper triangle per member list.  Partitions the
    pack cannot replay bitwise fall back to the per-pair pure-Python
    oracle, so the result is always exactly the python-path blocks.
    """
    from .parallel import _evaluate_partition

    stats = KernelStats()
    blocks: list = []
    with trace.span("kernel_blocks", partitions=len(members)):
        for member_list in members:
            started = time.perf_counter()
            try:
                subset = [items[k] for k in member_list]
                pack = PackedPartition(subset, metric)
                stats.pack_seconds += time.perf_counter() - started
                block_started = time.perf_counter()
                block = pack.condensed_block()
                stats.block_seconds += \
                    time.perf_counter() - block_started
                stats.partitions_packed += 1
                stats.n_predicates += pack.n_predicates
                stats.n_clauses += pack.n_clauses
                stats.pairs_vectorized += len(block)
                blocks.append(block)
            except KernelUnsupported as exc:
                logger.debug("kernel fallback for %d-area partition: %s",
                             len(member_list), exc)
                values, _ = _evaluate_partition(metric, items,
                                                member_list)
                stats.partitions_fallback += 1
                stats.pairs_fallback += len(values)
                blocks.append(values)
    logger.debug("kernel blocks: %s", stats.summary())
    return blocks, stats
