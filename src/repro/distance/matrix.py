"""Shared condensed distance-matrix engine for the clustering stage.

Every clustering algorithm in the package needs the same thing: the
pairwise ``d = d_tables + d_conj`` values over a population of access
areas.  Computing them inside each algorithm made the hot path serial
and redundant.  :class:`DistanceMatrix` computes the upper triangle once
— optionally over a multiprocessing pool (:mod:`.parallel`) — into the
scipy-style *condensed* layout (``n·(n−1)/2`` floats, pair ``(i, j)``
with ``i < j`` at index ``i·(2n−i−1)/2 + (j−i−1)``) and hands the
algorithms O(1) lookups and vectorized row/neighbour queries.

Two layers of work avoidance apply when the metric decomposes like the
paper's query distance (``d_tables``/``d_conj`` attributes):

* ``d_tables`` is memoized per *relation-set pair* — a SkyServer-scale
  log has millions of statements but only a handful of distinct FROM
  sets, so the Jaccard term collapses to a tiny table;
* with a ``cutoff`` (the clustering radius), the partition bound
  ``d ≥ d_tables ≥ 0.5`` for differing relation sets lets whole blocks
  of pairs skip the expensive constraint comparison: the entry stores
  the exact lower bound ``d_tables`` instead, which any threshold query
  at ``eps ≤ cutoff`` treats identically to the true distance.

Without a cutoff the matrix is exact and bitwise identical between the
serial and parallel paths.  :class:`MatrixStats` reports what happened:
pairs computed, pairs bound-skipped, cache hit rates, wall time.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Callable, Optional, Sequence

import numpy as np

from ..obs import get_logger, metrics, trace
from .parallel import compute_pairs, resolve_n_jobs

logger = get_logger(__name__)

Metric = Callable[[object, object], float]


def condensed_index(i: int, j: int, n: int) -> int:
    """Index of pair ``(i, j)``, ``i < j``, in the condensed layout."""
    if i > j:
        i, j = j, i
    return i * (2 * n - i - 1) // 2 + (j - i - 1)


@dataclass
class MatrixStats:
    """Instrumentation of one :meth:`DistanceMatrix.compute` run."""

    n_items: int = 0
    pairs_total: int = 0
    #: pairs whose full metric was evaluated
    pairs_computed: int = 0
    #: pairs resolved by the ``d ≥ d_tables > cutoff`` bound alone
    pairs_skipped: int = 0
    #: distinct relation-set pairs whose Jaccard term was evaluated
    table_pairs: int = 0
    #: ``d_tables`` lookups served from the relation-set memo
    table_cache_hits: int = 0
    predicate_cache_hits: int = 0
    predicate_cache_misses: int = 0
    elapsed_seconds: float = 0.0
    n_jobs: int = 1
    cutoff: Optional[float] = None
    #: partition blocks stored (0 for the dense matrix)
    n_blocks: int = 0
    #: items in the largest stored partition block
    largest_block: int = 0
    #: condensed floats actually allocated — ``n·(n−1)/2`` for the dense
    #: matrix; ``Σ m_p·(m_p−1)/2`` block entries plus the P×P bound
    #: table for the block-sparse one
    stored_floats: int = 0
    #: source population size before access-area interning collapsed it
    #: to ``n_items`` unique areas (0 = the matrix was built without
    #: interning)
    n_source_items: int = 0
    #: per-metric totals already pushed to a registry (see :meth:`record`)
    _recorded: dict = field(default_factory=dict, repr=False,
                            compare=False)

    @property
    def dedup_ratio(self) -> float:
        """Source areas per unique matrix item (1.0 without interning)."""
        if not self.n_source_items or not self.n_items:
            return 1.0
        return self.n_source_items / self.n_items

    @property
    def skip_fraction(self) -> float:
        if not self.pairs_total:
            return 0.0
        return self.pairs_skipped / self.pairs_total

    @property
    def storage_fraction(self) -> float:
        """Stored floats relative to the full condensed triangle."""
        if not self.pairs_total:
            return 0.0
        return self.stored_floats / self.pairs_total

    @property
    def predicate_cache_hit_rate(self) -> float:
        probes = self.predicate_cache_hits + self.predicate_cache_misses
        if not probes:
            return 0.0
        return self.predicate_cache_hits / probes

    def summary(self) -> str:
        interned = ""
        if self.n_source_items:
            interned = (f"interned from {self.n_source_items} source "
                        f"areas ({self.dedup_ratio:.1f}x dedup); ")
        blocks = ""
        if self.n_blocks:
            blocks = (f"{self.n_blocks} blocks (largest "
                      f"{self.largest_block}), {self.stored_floats:,} "
                      f"floats stored ({self.storage_fraction:.1%} of "
                      f"dense); ")
        blocks = interned + blocks
        return (
            f"{self.n_items} items, {self.pairs_total:,} pairs: "
            f"{self.pairs_computed:,} computed, "
            f"{self.pairs_skipped:,} bound-skipped "
            f"({self.skip_fraction:.1%}); {blocks}"
            f"d_tables memo {self.table_cache_hits:,} hits / "
            f"{self.table_pairs:,} entries; "
            f"d_pred cache hit rate {self.predicate_cache_hit_rate:.1%}; "
            f"{self.elapsed_seconds:.3f} s with n_jobs={self.n_jobs}")

    def record(self, registry) -> None:
        """Fold this run into a metrics registry (``repro_distance_*``).

        Delta-based and idempotent: recording the same stats object
        twice (a resident registry's lifecycle) adds nothing the
        second time — counters end equal to the true totals.
        """
        from ..obs.metrics import (observe_when_changed,
                                   record_counter_deltas)
        record_counter_deltas(registry, self._recorded, (
            ("repro_distance_pairs_total", self.pairs_total),
            ("repro_distance_pairs_computed_total",
             self.pairs_computed),
            ("repro_distance_pairs_skipped_total", self.pairs_skipped),
            ("repro_distance_table_cache_hits_total",
             self.table_cache_hits),
            ("repro_distance_pred_cache_hits_total",
             self.predicate_cache_hits),
            ("repro_distance_pred_cache_misses_total",
             self.predicate_cache_misses),
            ("repro_distance_blocks_total", self.n_blocks)))
        observe_when_changed(registry, self._recorded,
                             "repro_distance_matrix_seconds",
                             self.elapsed_seconds)
        if self.stored_floats:
            registry.gauge("repro_distance_stored_floats").set(
                self.stored_floats)
            registry.gauge("repro_distance_storage_fraction").set(
                self.storage_fraction)


class DistanceMatrix:
    """Condensed symmetric pairwise distance matrix.

    Obtain one via :meth:`compute`; the constructor takes an existing
    condensed value array (e.g. from :meth:`submatrix`).
    """

    def __init__(self, n: int, condensed: np.ndarray,
                 stats: Optional[MatrixStats] = None) -> None:
        condensed = np.asarray(condensed, dtype=float)
        expected = n * (n - 1) // 2
        if condensed.shape != (expected,):
            raise ValueError(
                f"condensed shape {condensed.shape} does not match "
                f"{n} items (expected ({expected},))")
        self.n = n
        self._values = condensed
        self.stats = stats or MatrixStats(
            n_items=n, pairs_total=expected, pairs_computed=expected,
            stored_floats=expected)

    # -- construction -------------------------------------------------------

    @classmethod
    def compute(cls, items: Sequence, metric: Metric, *,
                n_jobs: int = 1, cutoff: Optional[float] = None,
                registry: Optional[metrics.MetricsRegistry] = None,
                ) -> "DistanceMatrix":
        """Evaluate ``metric`` over every unordered pair of ``items``.

        ``n_jobs`` — worker processes (1 = serial, 0/None = all cores);
        ``cutoff`` — optional threshold enabling the partition-bound
        skip: entries whose ``d_tables`` lower bound already exceeds it
        store that bound instead of the full distance (only valid when
        every later query uses a radius ``≤ cutoff``);
        ``registry`` — metrics sink (defaults to the process-wide
        registry); worker-process metrics are merged back into it.
        """
        n = len(items)
        n_jobs = resolve_n_jobs(n_jobs)
        if registry is None:
            registry = metrics.get_registry()
        stats = MatrixStats(n_items=n, pairs_total=n * (n - 1) // 2,
                            n_jobs=n_jobs, cutoff=cutoff,
                            stored_floats=n * (n - 1) // 2)
        values = np.zeros(stats.pairs_total, dtype=float)
        started = time.perf_counter()
        pred_info = getattr(metric, "pred_cache_info", None)
        before = pred_info() if pred_info is not None else None

        with trace.span("distance_matrix", n_items=n,
                        n_jobs=n_jobs) as span:
            decomposed = (hasattr(metric, "d_tables")
                          and hasattr(metric, "d_conj")
                          and all(hasattr(item, "table_set")
                                  and hasattr(item, "cnf")
                                  for item in items))
            with trace.span("plan"):
                if decomposed:
                    work = cls._plan_decomposed(items, metric, cutoff,
                                                values, stats)
                else:
                    work = [(condensed_index(i, j, n), i, j)
                            for i in range(n) for j in range(i + 1, n)]

            stats.pairs_computed = len(work)
            mode = "serial" if n_jobs == 1 else "parallel"
            chunk_seconds = registry.histogram(
                "repro_distance_chunk_seconds", mode=mode)
            worker_hits = worker_misses = 0
            with trace.span("fill", pairs=len(work), mode=mode):
                if n_jobs == 1:
                    fill_started = time.perf_counter()
                    if decomposed:
                        cls._fill_decomposed(items, metric, work, values)
                    else:
                        for k, i, j in work:
                            values[k] = metric(items[i], items[j])
                    if work:
                        chunk_seconds.observe(
                            time.perf_counter() - fill_started)
                else:
                    entries, infos = compute_pairs(items, metric, work,
                                                   n_jobs)
                    for k, value in entries:
                        values[k] = value
                    for info in infos:
                        trace.attach(info.span)
                        chunk_seconds.observe(
                            info.seconds,
                            exemplar=info.span.get("span_id")
                            if info.span else None)
                        worker_hits += info.cache_hits
                        worker_misses += info.cache_misses
                    registry.merge_all(
                        info.metrics for info in infos)

            if before is not None:
                after = pred_info()
                stats.predicate_cache_hits = (after.hits - before.hits
                                              + worker_hits)
                stats.predicate_cache_misses = (
                    after.misses - before.misses + worker_misses)
            stats.elapsed_seconds = time.perf_counter() - started
            span.set(pairs_computed=stats.pairs_computed,
                     pairs_skipped=stats.pairs_skipped)

        stats.record(registry)
        logger.debug("distance matrix: %s", stats.summary())
        return cls(n, values, stats)

    @classmethod
    def from_square(cls, matrix: np.ndarray) -> "DistanceMatrix":
        """Adopt an ``(n, n)`` symmetric matrix (upper triangle is read)."""
        matrix = np.asarray(matrix, dtype=float)
        if matrix.ndim != 2 or matrix.shape[0] != matrix.shape[1]:
            raise ValueError(f"not a square matrix: shape {matrix.shape}")
        n = matrix.shape[0]
        return cls(n, matrix[np.triu_indices(n, k=1)])

    @staticmethod
    def _plan_decomposed(items: Sequence, metric: Metric,
                         cutoff: Optional[float], values: np.ndarray,
                         stats: MatrixStats) -> list[tuple[int, int, int]]:
        """Memoize ``d_tables`` per relation-set pair; bound-skip blocks."""
        n = len(items)
        table_sets = [item.table_set for item in items]
        memo: dict[frozenset, float] = {}
        work: list[tuple[int, int, int]] = []
        for i in range(n):
            for j in range(i + 1, n):
                key = frozenset((table_sets[i], table_sets[j]))
                d_tables = memo.get(key)
                if d_tables is None:
                    d_tables = metric.d_tables(items[i], items[j])
                    memo[key] = d_tables
                else:
                    stats.table_cache_hits += 1
                k = condensed_index(i, j, n)
                if cutoff is not None and d_tables > cutoff:
                    # d = d_tables + d_conj ≥ d_tables > cutoff: the exact
                    # lower bound answers every query at radius ≤ cutoff.
                    values[k] = d_tables
                    stats.pairs_skipped += 1
                else:
                    work.append((k, i, j))
        stats.table_pairs = len(memo)
        return work

    @staticmethod
    def _fill_decomposed(items: Sequence, metric: Metric,
                         work: list[tuple[int, int, int]],
                         values: np.ndarray) -> None:
        # d_tables is re-derived from the memo-equivalent pure function,
        # so ``d_tables + d_conj`` reproduces ``metric(a, b)`` bitwise.
        for k, i, j in work:
            values[k] = (metric.d_tables(items[i], items[j])
                         + metric.d_conj(items[i].cnf, items[j].cnf))

    # -- lookups ------------------------------------------------------------

    def __len__(self) -> int:
        return self.n

    @property
    def condensed(self) -> np.ndarray:
        """The raw condensed value array (read-only view)."""
        view = self._values.view()
        view.flags.writeable = False
        return view

    def value(self, i: int, j: int) -> float:
        if i == j:
            return 0.0
        return float(self._values[condensed_index(i, j, self.n)])

    def __getitem__(self, pair: tuple[int, int]) -> float:
        return self.value(*pair)

    def row(self, i: int) -> np.ndarray:
        """Distances from item ``i`` to every item (length ``n``)."""
        n = self.n
        out = np.empty(n, dtype=float)
        out[i] = 0.0
        if i + 1 < n:
            start = condensed_index(i, i + 1, n)
            out[i + 1:] = self._values[start:start + (n - 1 - i)]
        if i > 0:
            js = np.arange(i)
            out[:i] = self._values[js * (2 * n - js - 1) // 2 + (i - js - 1)]
        return out

    def neighbors(self, i: int, eps: float) -> list[int]:
        """Indices within radius ``eps`` of item ``i`` (including ``i``)."""
        return list(np.flatnonzero(self.row(i) <= eps))

    def to_square(self) -> np.ndarray:
        """Expand to the full ``(n, n)`` symmetric matrix."""
        out = np.zeros((self.n, self.n), dtype=float)
        iu = np.triu_indices(self.n, k=1)
        out[iu] = self._values
        out[(iu[1], iu[0])] = self._values
        return out

    def submatrix(self, indices: Sequence[int]) -> "DistanceMatrix":
        """The matrix restricted to ``indices`` (in the given order)."""
        m = len(indices)
        values = np.empty(m * (m - 1) // 2, dtype=float)
        pos = 0
        for a in range(m):
            for b in range(a + 1, m):
                values[pos] = self.value(indices[a], indices[b])
                pos += 1
        return DistanceMatrix(m, values)
