"""The query distance ``d = d_tables + d_conj`` (Section 5).

``d_tables`` is the Jaccard distance of the relation sets (with the
paper's corner case: two queries accessing no table at all are distance
0).  ``d_conj``/``d_disj`` are symmetric best-match averages: every clause
(resp. predicate) is matched with its closest counterpart on the other
side, and the match distances are averaged over both directions.

An empty CNF (an unconstrained query) matches nothing: against another
empty CNF the distance is 0, against a non-empty one every clause pays
the maximal unit cost.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..algebra.cnf import CNF, Clause
from ..core.area import AccessArea
from ..schema.statistics import StatisticsCatalog
from .predicate_distance import DEFAULT_RESOLUTION, PredicateDistance


def jaccard_distance(a: frozenset, b: frozenset) -> float:
    """``1 − |a ∩ b| / |a ∪ b|``, with the both-empty corner case = 0."""
    union = a | b
    if not union:
        return 0.0
    return 1.0 - len(a & b) / len(union)


@dataclass
class QueryDistance:
    """Distance between access areas in intermediate format.

    The value ranges over ``[0, 2]``: one unit from the table part and
    one from the constraint part.
    """

    stats: StatisticsCatalog
    resolution: float = DEFAULT_RESOLUTION
    _pred: PredicateDistance = field(init=False)

    def __post_init__(self) -> None:
        self._pred = PredicateDistance(self.stats, self.resolution)

    def __call__(self, q1: AccessArea, q2: AccessArea) -> float:
        return self.distance(q1, q2)

    def distance(self, q1: AccessArea, q2: AccessArea) -> float:
        return (self.d_tables(q1, q2) + self.d_conj(q1.cnf, q2.cnf))

    # -- components -----------------------------------------------------------

    def d_tables(self, q1: AccessArea, q2: AccessArea) -> float:
        """Jaccard distance of the FROM relation sets (Section 5.1)."""
        return jaccard_distance(q1.table_set, q2.table_set)

    def d_conj(self, b1: CNF, b2: CNF) -> float:
        """Symmetric best-match average over clauses (Section 5.2)."""
        n1, n2 = len(b1), len(b2)
        if n1 == 0 and n2 == 0:
            return 0.0
        if n1 == 0 or n2 == 0:
            return 1.0
        total = 0.0
        for o1 in b1:
            total += min(self.d_disj(o1, o2) for o2 in b2)
        for o2 in b2:
            total += min(self.d_disj(o1, o2) for o1 in b1)
        return total / (n1 + n2)

    def d_disj(self, o1: Clause, o2: Clause) -> float:
        """Symmetric best-match average over atomic predicates."""
        n1, n2 = len(o1), len(o2)
        if n1 == 1 and n2 == 1:
            # The dominant case (unit clauses): both direction sums
            # collapse to the single pairwise distance.
            return self._pred.distance(o1.predicates[0], o2.predicates[0])
        if n1 == 0 and n2 == 0:
            return 0.0
        if n1 == 0 or n2 == 0:
            return 1.0
        total = 0.0
        for p1 in o1:
            total += min(self._pred.distance(p1, p2) for p2 in o2)
        for p2 in o2:
            total += min(self._pred.distance(p1, p2) for p1 in o1)
        return total / (n1 + n2)

    def d_pred(self, p1, p2) -> float:
        return self._pred.distance(p1, p2)
