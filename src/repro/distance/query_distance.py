"""The query distance ``d = d_tables + d_conj`` (Section 5).

``d_tables`` is the Jaccard distance of the relation sets (with the
paper's corner case: two queries accessing no table at all are distance
0).  ``d_conj``/``d_disj`` are symmetric best-match averages: every clause
(resp. predicate) is matched with its closest counterpart on the other
side, and the match distances are averaged over both directions.

An empty CNF (an unconstrained query) matches nothing: against another
empty CNF the distance is 0, against a non-empty one every clause pays
the maximal unit cost.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from itertools import combinations
from typing import Iterable, Optional

from ..algebra.cnf import CNF, Clause
from ..core.area import AccessArea
from ..schema.statistics import StatisticsCatalog
from .predicate_distance import (CacheInfo, DEFAULT_CACHE_SIZE,
                                 DEFAULT_RESOLUTION, PredicateDistance)


def jaccard_distance(a: frozenset, b: frozenset) -> float:
    """``1 − |a ∩ b| / |a ∪ b|``, with the both-empty corner case = 0."""
    union = a | b
    if not union:
        return 0.0
    return 1.0 - len(a & b) / len(union)


#: Above this many distinct table sets the exactness bound falls back to
#: the closed-form ``1/(s1+s2)`` estimate instead of the O(P²) pair scan.
_BOUND_PAIR_SCAN_LIMIT = 512


def partition_exactness_bound(table_sets: Iterable[frozenset]) -> float:
    """Radius below which table-set partitioning is *exact*.

    ``d = d_tables + d_conj ≥ d_tables``, and the Jaccard distance
    between two **different** relation sets ``A ≠ B`` is at least
    ``1/|A ∪ B|``: two areas in different partitions can only be
    threshold neighbours at a radius reaching that bound.  The often
    quoted ``eps < 0.5`` rule is the special case of one- and two-table
    FROM sets; with ``k``-table joins the sharp subset pair
    ``{R1..Rk}`` vs ``{R1..Rk, Rk+1}`` is only ``1/(k+1)`` apart.

    This function computes the *population's* true bound: the minimum
    Jaccard distance over all pairs of distinct table sets actually
    present (``inf`` when fewer than two distinct sets occur — a single
    partition is trivially exact at any radius).  Partition-based
    algorithms are exact for every ``eps < bound`` and may silently
    diverge from their unpartitioned counterparts at ``eps >= bound``.

    For pathological populations with more than
    ``_BOUND_PAIR_SCAN_LIMIT`` distinct sets, the conservative
    closed-form lower bound ``1/(s1+s2)`` (``s1, s2`` the two largest
    set sizes) is returned instead of scanning all pairs.
    """
    distinct = list({frozenset(ts) for ts in table_sets})
    if len(distinct) < 2:
        return math.inf
    if len(distinct) > _BOUND_PAIR_SCAN_LIMIT:
        sizes = sorted((len(ts) for ts in distinct), reverse=True)
        return 1.0 / max(sizes[0] + sizes[1], 1)
    return min(jaccard_distance(a, b)
               for a, b in combinations(distinct, 2))


@dataclass
class QueryDistance:
    """Distance between access areas in intermediate format.

    The value ranges over ``[0, 2]``: one unit from the table part and
    one from the constraint part.
    """

    stats: StatisticsCatalog
    resolution: float = DEFAULT_RESOLUTION
    pred_cache_size: Optional[int] = DEFAULT_CACHE_SIZE
    _pred: PredicateDistance = field(init=False)

    def __post_init__(self) -> None:
        self._pred = PredicateDistance(self.stats, self.resolution,
                                       self.pred_cache_size)

    def pred_cache_info(self) -> CacheInfo:
        """Hit/miss counters of the predicate-pair LRU."""
        return self._pred.cache_info()

    def __call__(self, q1: AccessArea, q2: AccessArea) -> float:
        return self.distance(q1, q2)

    def distance(self, q1: AccessArea, q2: AccessArea) -> float:
        return (self.d_tables(q1, q2) + self.d_conj(q1.cnf, q2.cnf))

    # -- components -----------------------------------------------------------

    def d_tables(self, q1: AccessArea, q2: AccessArea) -> float:
        """Jaccard distance of the FROM relation sets (Section 5.1)."""
        return jaccard_distance(q1.table_set, q2.table_set)

    def d_conj(self, b1: CNF, b2: CNF) -> float:
        """Symmetric best-match average over clauses (Section 5.2).

        The two directional sums accumulate separately so that swapping
        the arguments produces the bitwise-identical value (IEEE addition
        is commutative; a single running total would mix the summation
        orders and break exact symmetry).
        """
        n1, n2 = len(b1), len(b2)
        if n1 == 0 and n2 == 0:
            return 0.0
        if n1 == 0 or n2 == 0:
            return 1.0
        forward = 0.0
        for o1 in b1:
            forward += min(self.d_disj(o1, o2) for o2 in b2)
        backward = 0.0
        for o2 in b2:
            backward += min(self.d_disj(o1, o2) for o1 in b1)
        return (forward + backward) / (n1 + n2)

    def d_disj(self, o1: Clause, o2: Clause) -> float:
        """Symmetric best-match average over atomic predicates."""
        n1, n2 = len(o1), len(o2)
        if n1 == 1 and n2 == 1:
            # The dominant case (unit clauses): both direction sums
            # collapse to the single pairwise distance.
            return self._pred.distance(o1.predicates[0], o2.predicates[0])
        if n1 == 0 and n2 == 0:
            return 0.0
        if n1 == 0 or n2 == 0:
            return 1.0
        # Separate directional sums: see d_conj on exact symmetry.
        forward = 0.0
        for p1 in o1:
            forward += min(self._pred.distance(p1, p2) for p2 in o2)
        backward = 0.0
        for p2 in o2:
            backward += min(self._pred.distance(p1, p2) for p1 in o1)
        return (forward + backward) / (n1 + n2)

    def d_pred(self, p1, p2) -> float:
        return self._pred.distance(p1, p2)
