"""Block-sparse partitioned distance matrix: sub-quadratic memory.

The dense :class:`~repro.distance.DistanceMatrix` always allocates the
full ``n·(n−1)/2`` condensed triangle, even when the ``cutoff`` bound
skip leaves >95% of the entries holding nothing but their ``d_tables``
lower bound.  At SkyServer log scale (millions of statements, a handful
of hot table sets) that memory is the bottleneck, not the arithmetic.

:class:`BlockSparseDistanceMatrix` exploits the same structure the
partitioned clustering does, one level lower:

* areas are grouped by **canonical table set** (relation names are
  canonicalized once at extraction, so these are exactly the frozensets
  ``d_tables`` compares);
* exact condensed blocks are stored only *within* partitions, where
  ``d_tables == 0`` and the full metric collapses to ``d_conj``;
* every **cross-partition** lookup is answered from a memoized P×P table
  of ``d_tables`` values — the exact lower bound ``d ≥ d_tables``, which
  any threshold query at a radius below the partition exactness bound
  treats identically to the true distance (the same contract the dense
  ``cutoff`` skip documents).

Storage drops from ``n·(n−1)/2`` floats to ``Σ m_p·(m_p−1)/2 + P²`` —
quadratic only in the largest partition.  Validity: every entry is exact
except cross-partition ones, which are exact lower bounds no smaller
than :attr:`BlockSparseDistanceMatrix.exactness_bound` (the population's
minimum cross-partition ``d_tables``).  Any threshold query at
``radius < exactness_bound`` — DBSCAN/OPTICS neighbourhoods, linkage
thresholds — therefore gets exactly the answers the dense matrix gives;
:meth:`neighbors` enforces the precondition.

The lookup API (``value``/``row``/``neighbors``/``submatrix``/``stats``/
``__len__``) matches the dense matrix, so dbscan, optics, single-linkage
and partitioned DBSCAN accept either implementation unchanged.  Parallel
construction fans out partition-granular work units
(:func:`repro.distance.parallel.compute_blocks`) instead of flat pair
chunks: one predicate-cache warmup per partition.
"""

from __future__ import annotations

import math
import time
from typing import Optional, Sequence

import numpy as np

from ..obs import get_logger, metrics, trace
from .kernel import KernelUnsupported, PackedPartition
from .matrix import DistanceMatrix, MatrixStats, Metric
from .parallel import compute_blocks, resolve_n_jobs
from .query_distance import partition_exactness_bound

logger = get_logger(__name__)

#: ``_packs`` sentinel distinguishing "never attempted" from "retired to
#: the per-pair fallback".
_UNSET = object()


class _GrowableBlock:
    """Square in-partition distance block that accepts appended rows.

    Condensed storage cannot grow in place — every index depends on the
    item count — so the first :meth:`BlockSparseDistanceMatrix.insert_row`
    into a partition converts its block to this square capacity-doubled
    form.  Mirrors the :class:`DistanceMatrix` lookup API the clustering
    layer consumes (``value``/``row``/``neighbors``/``submatrix``).
    """

    def __init__(self, dense: DistanceMatrix) -> None:
        m = len(dense)
        cap = max(2 * m, 4)
        self._buf = np.zeros((cap, cap), dtype=float)
        self._buf[:m, :m] = dense.to_square()
        self.n = m

    def __len__(self) -> int:
        return self.n

    @property
    def condensed(self) -> np.ndarray:
        """The condensed upper triangle (copied from the square form)."""
        m = self.n
        return self._buf[:m, :m][np.triu_indices(m, k=1)]

    def append(self, row: np.ndarray) -> None:
        """Adopt the distances from a new item to every existing one."""
        m = self.n
        if len(row) != m:
            raise ValueError(f"row of {len(row)} distances does not "
                             f"match {m} items")
        if m >= self._buf.shape[0]:
            cap = 2 * self._buf.shape[0]
            buf = np.zeros((cap, cap), dtype=float)
            buf[:m, :m] = self._buf[:m, :m]
            self._buf = buf
        self._buf[m, :m] = row
        self._buf[:m, m] = row
        self._buf[m, m] = 0.0
        self.n = m + 1

    def value(self, i: int, j: int) -> float:
        return float(self._buf[i, j])

    def row(self, i: int) -> np.ndarray:
        return self._buf[i, :self.n].copy()

    def neighbors(self, i: int, eps: float) -> list[int]:
        return list(np.flatnonzero(self._buf[i, :self.n] <= eps))

    def submatrix(self, indices: Sequence[int]) -> DistanceMatrix:
        idx = np.asarray(indices, dtype=np.intp)
        return DistanceMatrix.from_square(self._buf[np.ix_(idx, idx)])

#: Modes accepted by :func:`compute_matrix`.  ``kernel`` is the
#: block-sparse layout with partition blocks produced by the vectorized
#: struct-of-arrays kernel (:mod:`repro.distance.kernel`) instead of
#: per-pair Python evaluation — bitwise-identical values, an order of
#: magnitude less interpreter time.
MATRIX_MODES = ("auto", "dense", "sparse", "kernel")

#: Neighbour-query backends accepted by :func:`compute_matrix`:
#: ``matrix`` materializes distance storage (dense or block-sparse),
#: ``vptree`` answers range queries through per-partition vantage-point
#: trees (:mod:`repro.distance.metric_index`) without materializing
#: blocks.
NEIGHBOR_BACKENDS = ("matrix", "vptree")


def is_decomposed(metric, items: Sequence) -> bool:
    """True when ``metric``/``items`` support the ``d_tables + d_conj``
    decomposition the block-sparse layout requires."""
    return (hasattr(metric, "d_tables") and hasattr(metric, "d_conj")
            and all(hasattr(item, "table_set") and hasattr(item, "cnf")
                    for item in items))


class BlockSparseDistanceMatrix:
    """Partitioned condensed distance matrix with bound-valued cross blocks.

    Obtain one via :meth:`compute`.  The constructor adopts existing
    storage: ``members`` lists the global item indices of each partition
    (covering ``0..n-1`` exactly once), ``blocks`` the matching condensed
    value arrays, and ``bounds`` the symmetric P×P ``d_tables`` table
    (zero diagonal).
    """

    def __init__(self, n: int, keys: Sequence[frozenset],
                 members: Sequence[Sequence[int]],
                 blocks: Sequence[np.ndarray],
                 bounds: np.ndarray,
                 stats: Optional[MatrixStats] = None) -> None:
        if not (len(keys) == len(members) == len(blocks)):
            raise ValueError(
                f"{len(keys)} keys, {len(members)} member lists and "
                f"{len(blocks)} blocks do not align")
        self.n = n
        self._keys = [frozenset(key) for key in keys]
        self._members = [np.asarray(m, dtype=np.intp) for m in members]
        self._blocks = [DistanceMatrix(len(m), block)
                        for m, block in zip(self._members, blocks)]
        bounds = np.asarray(bounds, dtype=float)
        p = len(self._keys)
        if bounds.shape != (p, p):
            raise ValueError(f"bounds shape {bounds.shape} does not "
                             f"match {p} partitions")
        self._bounds = bounds

        self._pids_buf = np.full(n, -1, dtype=np.intp)
        self._local_buf = np.zeros(n, dtype=np.intp)
        for pid, m in enumerate(self._members):
            self._pids_buf[m] = pid
            self._local_buf[m] = np.arange(len(m), dtype=np.intp)
        if n and int(self._pids_buf.min()) < 0:
            raise ValueError("partitions do not cover every item")

        if p >= 2:
            off_diagonal = bounds[~np.eye(p, dtype=bool)]
            self.exactness_bound = float(off_diagonal.min())
        else:
            self.exactness_bound = math.inf
        self.stats = stats or self._default_stats()
        self._key_to_pid = {key: pid
                            for pid, key in enumerate(self._keys)}
        #: retained by :meth:`compute` so :meth:`insert_row` can evaluate
        #: new intra-partition distances; ``None`` for constructor-adopted
        #: matrices, which therefore cannot grow.
        self._items: Optional[list] = None
        #: per-partition :class:`~.kernel.PackedPartition` cache for the
        #: insert fast path (``None`` = retired to the per-pair oracle).
        self._packs: dict[int, Optional[PackedPartition]] = {}

    @property
    def _pids(self) -> np.ndarray:
        return self._pids_buf[:self.n]

    @property
    def _local(self) -> np.ndarray:
        return self._local_buf[:self.n]

    def _default_stats(self) -> MatrixStats:
        n = self.n
        computed = sum(len(b.condensed) for b in self._blocks)
        return MatrixStats(
            n_items=n, pairs_total=n * (n - 1) // 2,
            pairs_computed=computed,
            pairs_skipped=n * (n - 1) // 2 - computed,
            n_blocks=len(self._blocks),
            largest_block=max((len(m) for m in self._members),
                              default=0),
            stored_floats=computed + len(self._blocks) ** 2)

    # -- construction -------------------------------------------------------

    @classmethod
    def compute(cls, items: Sequence, metric: Metric, *,
                n_jobs: int = 1, cutoff: Optional[float] = None,
                registry: Optional[metrics.MetricsRegistry] = None,
                engine: str = "python",
                store=None, store_token: Optional[str] = None,
                ) -> "BlockSparseDistanceMatrix":
        """Evaluate ``metric`` block-sparsely over ``items``.

        Requires a decomposed metric (``d_tables``/``d_conj``) and items
        with ``table_set``/``cnf`` — the structure the sparsity comes
        from.  ``cutoff`` — the radius later queries will use; it must
        lie strictly below the population's partition exactness bound or
        the sparse layout cannot answer threshold queries exactly
        (:meth:`compute` raises — use the dense matrix instead).
        ``n_jobs`` — worker processes for the partition-granular fan-out
        (1 = serial); ``registry`` — metrics sink (defaults to the
        process-wide registry).  ``engine`` — ``"python"`` (per-pair
        oracle evaluation, optionally parallel) or ``"kernel"`` (serial
        vectorized struct-of-arrays blocks, bitwise-identical values;
        partitions the kernel cannot replay fall back to the oracle,
        and the engine itself degrades to ``"python"`` when numpy is
        unavailable).

        ``store`` (an :class:`~repro.store.AreaStore`) spills every
        computed in-partition condensed block to an mmap-able file
        keyed by partition *content* (table set + ordered member
        fingerprint digests + ``store_token``) and reloads matching
        blocks on later runs instead of recomputing them.
        ``store_token`` must capture everything else that shapes the
        distance values (metric resolution, statistics provenance) so
        a parameter change misses the cache rather than serving stale
        distances.  The P×P ``d_tables`` bound table is always
        recomputed — it is O(P²) for a handful of partitions.
        """
        if not is_decomposed(metric, items):
            raise ValueError(
                "block-sparse matrix requires a decomposed metric "
                "(d_tables/d_conj) over items with table_set/cnf; "
                "use DistanceMatrix for arbitrary metrics")
        if engine not in ("python", "kernel"):
            raise ValueError(f"engine must be 'python' or 'kernel', "
                             f"got {engine!r}")
        if engine == "kernel":
            from .kernel import kernel_available
            if not kernel_available():  # pragma: no cover - env-specific
                logger.warning("kernel engine requires numpy; falling "
                               "back to the python engine")
                engine = "python"
        n = len(items)
        n_jobs = resolve_n_jobs(n_jobs)
        if registry is None:
            registry = metrics.get_registry()
        started = time.perf_counter()
        pred_info = getattr(metric, "pred_cache_info", None)
        before = pred_info() if pred_info is not None else None

        with trace.span("block_sparse_matrix", n_items=n,
                        n_jobs=n_jobs) as span:
            with trace.span("plan"):
                groups: dict[frozenset, list[int]] = {}
                for index, item in enumerate(items):
                    groups.setdefault(item.table_set, []).append(index)
                keys = sorted(groups, key=lambda k: (len(k), sorted(k)))
                members = [groups[key] for key in keys]
                p = len(keys)

                # Memoized d_tables per partition pair: one evaluation
                # answers every cross-partition lookup of that pair.
                bounds = np.zeros((p, p), dtype=float)
                reps = [items[m[0]] for m in members]
                for a in range(p):
                    for b in range(a + 1, p):
                        value = metric.d_tables(reps[a], reps[b])
                        bounds[a, b] = bounds[b, a] = value
                if p >= 2:
                    exactness = float(
                        bounds[~np.eye(p, dtype=bool)].min())
                else:
                    exactness = math.inf
                if cutoff is not None and cutoff >= exactness:
                    raise ValueError(
                        f"cutoff {cutoff:g} is not below the partition "
                        f"exactness bound {exactness:.4g}: cross-"
                        f"partition entries would no longer answer "
                        f"threshold queries exactly; use the dense "
                        f"DistanceMatrix")

            stats = MatrixStats(n_items=n, pairs_total=n * (n - 1) // 2,
                                n_jobs=n_jobs, cutoff=cutoff)
            mode = "serial" if n_jobs == 1 else "parallel"
            if engine == "kernel":
                mode = "kernel"
            chunk_seconds = registry.histogram(
                "repro_distance_chunk_seconds", mode=mode)
            worker_hits = worker_misses = 0

            # Store-backed reuse: a partition whose content key matches
            # a persisted block skips computation entirely.
            cached: dict[int, np.ndarray] = {}
            partition_keys: Optional[list[str]] = None
            if store is not None:
                from ..store.codec import block_key as content_key
                from ..store.codec import fingerprint_digest
                digest_memo: dict[int, bytes] = {}

                def digest_of(area) -> bytes:
                    got = digest_memo.get(id(area))
                    if got is None:
                        got = fingerprint_digest(area)
                        digest_memo[id(area)] = got
                    return got

                partition_keys = [
                    content_key(key, [digest_of(items[i]) for i in m],
                                store_token)
                    for key, m in zip(keys, members)]
                for bi, block_id in enumerate(partition_keys):
                    loaded = store.blocks.load(block_id)
                    m = len(members[bi])
                    if loaded is not None \
                            and len(loaded) == m * (m - 1) // 2:
                        cached[bi] = np.asarray(loaded, dtype=float)

            pending = [bi for bi in range(p) if bi not in cached]
            pending_members = [members[bi] for bi in pending]
            with trace.span("fill", partitions=p, mode=mode,
                            reloaded=len(cached)):
                if not pending:
                    raw_blocks = []
                elif engine == "kernel":
                    from .kernel import compute_kernel_blocks
                    raw_blocks, kernel_stats = compute_kernel_blocks(
                        items, metric, pending_members)
                    kernel_stats.record(registry)
                    chunk_seconds.observe(kernel_stats.pack_seconds
                                          + kernel_stats.block_seconds)
                else:
                    raw_blocks, infos = compute_blocks(
                        items, metric, pending_members, n_jobs)
                    for info in infos:
                        trace.attach(info.span)
                        chunk_seconds.observe(
                            info.seconds,
                            exemplar=info.span.get("span_id")
                            if info.span else None)
                        worker_hits += info.cache_hits
                        worker_misses += info.cache_misses
                    registry.merge_all(
                        info.metrics for info in infos)
                computed = {bi: np.asarray(raw, dtype=float)
                            for bi, raw in zip(pending, raw_blocks)}
                blocks = [cached[bi] if bi in cached else computed[bi]
                          for bi in range(p)]
            if store is not None:
                for bi in pending:
                    store.blocks.save(partition_keys[bi], blocks[bi])
                store.record(registry)

            stats.pairs_computed = sum(len(b) for b in blocks)
            stats.pairs_skipped = stats.pairs_total - stats.pairs_computed
            stats.table_pairs = p * (p - 1) // 2
            # Every cross-partition pair beyond the first per key pair is
            # served by the memo.
            stats.table_cache_hits = max(
                0, stats.pairs_skipped - stats.table_pairs)
            stats.n_blocks = p
            stats.largest_block = max((len(m) for m in members),
                                      default=0)
            stats.stored_floats = stats.pairs_computed + p * p
            if before is not None:
                after = pred_info()
                stats.predicate_cache_hits = (after.hits - before.hits
                                              + worker_hits)
                stats.predicate_cache_misses = (
                    after.misses - before.misses + worker_misses)
            stats.elapsed_seconds = time.perf_counter() - started
            span.set(partitions=p,
                     pairs_computed=stats.pairs_computed,
                     pairs_skipped=stats.pairs_skipped,
                     stored_floats=stats.stored_floats)

        stats.record(registry)
        logger.debug("block-sparse matrix: %s", stats.summary())
        matrix = cls(n, keys, members, blocks, bounds, stats)
        matrix._items = list(items)
        return matrix

    # -- incremental growth -------------------------------------------------

    def insert_row(self, item, metric: Metric, *,
                   engine: str = "kernel",
                   max_radius: Optional[float] = None) -> int:
        """Append one item, computing only intra-partition distances.

        The affected partition's block gains a row of exact ``d_conj``
        values (via the vectorized kernel when ``engine="kernel"`` —
        :meth:`~.kernel.PackedPartition.extend` plus one
        ``pair_rows`` gather, bitwise-equal to the per-pair oracle — or
        the per-pair metric otherwise); a previously unseen table set
        opens a fresh singleton partition, extending the ``d_tables``
        bound table by one representative evaluation per existing
        partition.  No cross-partition distance is ever computed, so the
        cost is ``O(c + m_p)`` in the affected partition, independent of
        the total population.

        Note a new partition can *lower* :attr:`exactness_bound`;
        :meth:`neighbors` keeps refusing radii at or beyond the current
        bound, so threshold queries stay exact.  Pass ``max_radius`` to
        reject such an insert *before* any mutation: if opening the new
        partition would drop the bound to ``max_radius`` or below, a
        ``ValueError`` is raised and the matrix is left untouched —
        callers that hold a fixed query radius (e.g. incremental DBSCAN
        with a fixed ``eps``) stay consistent instead of discovering a
        poisoned state on their next neighbourhood query.  Returns the
        item's new global index.  Only matrices built by
        :meth:`compute` retain the items this needs.
        """
        if self._items is None:
            raise ValueError(
                "insert_row requires a matrix built by compute(); "
                "constructor-adopted matrices do not retain their items")
        if engine not in ("python", "kernel"):
            raise ValueError(f"engine must be 'python' or 'kernel', "
                             f"got {engine!r}")
        index = self.n
        key = frozenset(item.table_set)
        pid = self._key_to_pid.get(key)
        row = None
        if pid is None:
            if max_radius is not None:
                self._check_radius(key, item, metric, max_radius)
            pid = self._open_partition(key, item, metric)
        else:
            row = self._partition_row(pid, item, metric, engine)
            block = self._blocks[pid]
            if not isinstance(block, _GrowableBlock):
                block = _GrowableBlock(block)
                self._blocks[pid] = block
            block.append(row)
            self._members[pid] = np.append(self._members[pid], index)
        self._items.append(item)
        if index >= len(self._pids_buf):
            cap = max(2 * len(self._pids_buf), 4)
            for name in ("_pids_buf", "_local_buf"):
                buf = np.zeros(cap, dtype=np.intp)
                buf[:index] = getattr(self, name)[:index]
                setattr(self, name, buf)
        self._pids_buf[index] = pid
        self._local_buf[index] = len(self._members[pid]) - 1
        self.n = index + 1

        st = self.stats
        st.n_items = self.n
        st.pairs_total = self.n * (self.n - 1) // 2
        if row is not None:
            st.pairs_computed += len(row)
            st.stored_floats += len(row)
        st.pairs_skipped = st.pairs_total - st.pairs_computed
        st.largest_block = max(st.largest_block,
                               len(self._members[pid]))
        return index

    def _check_radius(self, key: frozenset, item, metric: Metric,
                      max_radius: float) -> None:
        """Raise before mutation if opening a partition for ``item``'s
        unseen table set would invalidate queries at ``max_radius``."""
        bound = self.exactness_bound
        for members in self._members:
            bound = min(bound, metric.d_tables(
                self._items[int(members[0])], item))
        if max_radius >= bound:
            raise ValueError(
                f"inserting an item with unseen table set {sorted(key)} "
                f"would lower the partition exactness bound to "
                f"{bound:.4g}, at or below the reserved query radius "
                f"{max_radius:.4g}; neighbors() at that radius would no "
                f"longer be exact")

    def _open_partition(self, key: frozenset, item, metric: Metric) -> int:
        """Register a new singleton partition, extending the bound table
        with one ``d_tables`` evaluation per existing partition."""
        p = len(self._keys)
        bounds = np.zeros((p + 1, p + 1), dtype=float)
        bounds[:p, :p] = self._bounds
        for pid, members in enumerate(self._members):
            value = metric.d_tables(self._items[int(members[0])], item)
            bounds[pid, p] = bounds[p, pid] = value
        self._bounds = bounds
        self._keys.append(key)
        self._key_to_pid[key] = p
        self._members.append(np.array([self.n], dtype=np.intp))
        self._blocks.append(
            DistanceMatrix(1, np.zeros(0, dtype=float)))
        if p >= 1:
            off_diagonal = bounds[~np.eye(p + 1, dtype=bool)]
            self.exactness_bound = float(off_diagonal.min())
        self.stats.n_blocks = p + 1
        self.stats.stored_floats += 2 * p + 1
        return p

    def _partition_row(self, pid: int, item, metric: Metric,
                       engine: str) -> np.ndarray:
        """Distances from ``item`` to every current member of partition
        ``pid`` (equal table sets, so the metric collapses to
        ``d_conj``)."""
        members = self._members[pid]
        if engine == "kernel":
            pack = self._packs.get(pid, _UNSET)
            if pack is _UNSET or (pack is not None
                                  and pack.n_areas != len(members)):
                # First insert into this partition (or the pack went
                # stale through a python-engine insert): pack it once,
                # amortized over every later insert.
                try:
                    pack = PackedPartition(
                        [self._items[int(g)] for g in members], metric)
                except KernelUnsupported as exc:
                    logger.debug("insert_row pack fallback for "
                                 "partition %d: %s", pid, exc)
                    pack = None
                self._packs[pid] = pack
            if pack is not None:
                try:
                    pack.extend([item])
                    return pack.pair_rows(
                        pack.n_areas - 1,
                        np.arange(pack.n_areas - 1, dtype=np.intp))
                except KernelUnsupported as exc:
                    # The pack no longer covers the partition; retire it
                    # so later inserts go straight to the oracle.
                    logger.debug("insert_row extend fallback for "
                                 "partition %d: %s", pid, exc)
                    self._packs[pid] = None
        return np.array([metric(self._items[int(g)], item)
                         for g in members], dtype=float)

    # -- lookups ------------------------------------------------------------

    def __len__(self) -> int:
        return self.n

    @property
    def n_partitions(self) -> int:
        return len(self._keys)

    def partitions(self) -> list[tuple[frozenset, np.ndarray]]:
        """``(table_set, global indices)`` per stored block."""
        return [(key, members.copy())
                for key, members in zip(self._keys, self._members)]

    def value(self, i: int, j: int) -> float:
        """Exact distance within a partition; the ``d_tables`` lower
        bound across partitions (exact for threshold queries below
        :attr:`exactness_bound`)."""
        if i == j:
            return 0.0
        pi, pj = self._pids[i], self._pids[j]
        if pi == pj:
            return self._blocks[pi].value(int(self._local[i]),
                                          int(self._local[j]))
        return float(self._bounds[pi, pj])

    def __getitem__(self, pair: tuple[int, int]) -> float:
        return self.value(*pair)

    def row(self, i: int) -> np.ndarray:
        """Distances from item ``i`` to every item (length ``n``):
        exact inside ``i``'s partition, lower bounds elsewhere."""
        pid = int(self._pids[i])
        out = self._bounds[pid][self._pids]
        members = self._members[pid]
        out[members] = self._blocks[pid].row(int(self._local[i]))
        return out

    def neighbors(self, i: int, eps: float) -> list[int]:
        """Indices within radius ``eps`` of item ``i`` (including ``i``).

        Only valid below the partition exactness bound — beyond it,
        cross-partition entries are lower bounds that can no longer
        decide the threshold, so the query raises instead of silently
        under-reporting neighbours.
        """
        if eps >= self.exactness_bound:
            raise ValueError(
                f"radius {eps:g} is not below the partition exactness "
                f"bound {self.exactness_bound:.4g}; cross-partition "
                f"entries are d_tables lower bounds only — use the "
                f"dense DistanceMatrix for radii this large")
        # Below the bound every cross-partition entry exceeds eps, so
        # the scan confines itself to i's partition — O(m_p), the term
        # that keeps streaming label repair sublinear in the population.
        pid = int(self._pids[i])
        members = self._members[pid]
        block_row = self._blocks[pid].row(int(self._local[i]))
        return list(members[np.flatnonzero(block_row <= eps)])

    def to_square(self) -> np.ndarray:
        """Expand to the full ``(n, n)`` matrix (bounds off-block)."""
        out = np.empty((self.n, self.n), dtype=float)
        for i in range(self.n):
            out[i] = self.row(i)
        return out

    def submatrix(self, indices: Sequence[int]) -> DistanceMatrix:
        """The matrix restricted to ``indices`` (in the given order).

        Within one partition the result is fully exact — the form the
        partitioned clustering consumes.  Mixed-partition index sets
        inherit the lower-bound semantics of the cross entries.
        """
        pids = self._pids[np.asarray(indices, dtype=np.intp)]
        if len(indices) and (pids == pids[0]).all():
            # Fast path: slice the one block directly.
            local = [int(self._local[i]) for i in indices]
            return self._blocks[int(pids[0])].submatrix(local)
        m = len(indices)
        values = np.empty(m * (m - 1) // 2, dtype=float)
        pos = 0
        for a in range(m):
            for b in range(a + 1, m):
                values[pos] = self.value(indices[a], indices[b])
                pos += 1
        return DistanceMatrix(m, values)


def compute_matrix(items: Sequence, metric: Metric, *,
                   mode: str = "auto", eps: Optional[float] = None,
                   n_jobs: int = 1,
                   registry: Optional[metrics.MetricsRegistry] = None,
                   neighbor_backend: str = "matrix",
                   store=None, store_token: Optional[str] = None):
    """Build a distance matrix in the requested ``mode``.

    ``mode`` — ``"dense"``, ``"sparse"``, ``"kernel"``, or ``"auto"``
    (default): block-sparse whenever the metric decomposes and the
    query radius ``eps`` lies strictly below the population's partition
    exactness bound (conservatively ``1/(max |table-set union|)``, i.e.
    ``1/(k+1)`` for ``k``-table joins — see
    :func:`~repro.distance.query_distance.partition_exactness_bound`),
    dense otherwise.  ``"kernel"`` is the block-sparse layout with
    blocks produced by the vectorized kernel (bitwise-identical
    values).  ``eps`` doubles as the dense matrix's ``cutoff``.

    ``neighbor_backend`` — ``"matrix"`` (default; materialized storage)
    or ``"vptree"``: a :class:`~.metric_index.VPTreeIndex` whose range
    queries run through per-partition vantage-point trees.  The vptree
    backend has the same preconditions as the sparse layout (decomposed
    metric, ``eps`` strictly below the partition exactness bound plus
    numpy); when any fails it logs a warning and serves the requested
    matrix ``mode`` instead, so threshold queries keep their exact
    semantics — in particular ``partitioned_dbscan``'s
    ``on_inexact="fallback"`` whole-population rerun always lands on a
    matrix backend that can answer it.
    """
    if mode not in MATRIX_MODES:
        raise ValueError(f"mode must be one of {MATRIX_MODES}, "
                         f"got {mode!r}")
    if neighbor_backend not in NEIGHBOR_BACKENDS:
        raise ValueError(f"neighbor_backend must be one of "
                         f"{NEIGHBOR_BACKENDS}, got {neighbor_backend!r}")
    if neighbor_backend == "vptree":
        from .kernel import kernel_available
        from .metric_index import VPTreeIndex
        if (kernel_available() and eps is not None
                and is_decomposed(metric, items)
                and eps < partition_exactness_bound(
                    item.table_set for item in items)):
            return VPTreeIndex.compute(items, metric, cutoff=eps,
                                       registry=registry, store=store,
                                       store_token=store_token)
        logger.warning(
            "vptree backend requires numpy, a decomposed metric and a "
            "radius below the partition exactness bound; falling back "
            "to the %s matrix backend", mode)
    if mode == "kernel":
        return BlockSparseDistanceMatrix.compute(
            items, metric, n_jobs=n_jobs, cutoff=eps, registry=registry,
            engine="kernel", store=store, store_token=store_token)
    if mode == "sparse":
        return BlockSparseDistanceMatrix.compute(
            items, metric, n_jobs=n_jobs, cutoff=eps, registry=registry,
            store=store, store_token=store_token)
    if mode == "auto" and eps is not None and is_decomposed(metric, items):
        bound = partition_exactness_bound(
            item.table_set for item in items)
        if eps < bound:
            logger.debug(
                "auto matrix mode: eps %g < partition bound %.4g, "
                "using block-sparse", eps, bound)
            return BlockSparseDistanceMatrix.compute(
                items, metric, n_jobs=n_jobs, cutoff=eps,
                registry=registry, store=store,
                store_token=store_token)
        logger.debug(
            "auto matrix mode: eps %g >= partition bound %.4g, "
            "using dense", eps, bound)
    return DistanceMatrix.compute(items, metric, n_jobs=n_jobs,
                                  cutoff=eps, registry=registry)
