"""Atomic-predicate distance ``d_pred`` (Section 5.2).

The paper defines the *overlap* of two predicates:

* same numeric column — normalized interval overlap over ``access(a)``
  (worked example: ``a < 3`` vs ``a > 2`` with ``access(a) = [0, 5]``
  gives 0.2);
* same categorical column — common values over the ``access(a)``
  vocabulary;
* different columns — the fraction of the joint space occupied by both
  predicates (worked example: ``a1 < 3`` vs ``a2 > 2`` with both access
  ranges ``[0, 5]`` gives ``(3 × 3) / (5 × 5) = 0.36``).

:func:`paper_overlap` reproduces those numbers verbatim.  Because DBSCAN
needs a *dissimilarity* (the paper's ``min``-matching aggregation in
``d_disj``/``d_conj`` only makes sense for one), :func:`predicate_distance`
uses the complement ``1 − overlap``, with two engineering refinements
documented in DESIGN.md:

* same-column overlap is normalized by the footprint **union** instead of
  the full access width (plain Jaccard), so identical predicates get
  distance 0 — in the paper's worked example both normalizations
  coincide;
* every footprint is widened by a small **resolution** fraction of the
  access range (default 1%), so the point-lookup populations that dominate
  the SkyServer log (``Photoz.objid = c``) chain into DBSCAN clusters when
  their constants are dense in a hot range — the behaviour Table 1's
  Clusters 1–4 and the OLAPClus comparison (Section 6.4) rely on.
"""

from __future__ import annotations

import math
from collections import OrderedDict
from dataclasses import dataclass
from typing import NamedTuple, Optional

from ..algebra.intervals import Interval, IntervalSet
from ..algebra.predicates import (ColumnColumnPredicate,
                                  ColumnConstantPredicate, Op, Predicate)
from ..schema.statistics import StatisticsCatalog

#: Default footprint widening, as a fraction of ``access(a)``'s width.
DEFAULT_RESOLUTION = 0.01

#: Default bound of the pair-distance LRU.  A SkyServer-scale log repeats
#: a few thousand distinct predicates; the bound only exists so adversarial
#: workloads (millions of distinct constants) cannot grow memory forever.
DEFAULT_CACHE_SIZE = 262_144


class CacheInfo(NamedTuple):
    """Hit/miss counters of the predicate-pair LRU.

    ``footprint_size``/``footprint_max`` describe the per-predicate
    widened-footprint LRU, which is bounded by the same knob as the pair
    cache (both exist so adversarial workloads with millions of distinct
    constants cannot grow memory forever).
    """

    hits: int
    misses: int
    size: int
    max_size: Optional[int]
    footprint_size: int = 0
    footprint_max: Optional[int] = None

    @property
    def hit_rate(self) -> float:
        probes = self.hits + self.misses
        return self.hits / probes if probes else 0.0


@dataclass
class PredicateDistance:
    """Computes ``d_pred`` against a statistics catalog.

    Distances are memoized per *normalized* predicate pair — the
    clustering stage evaluates the same pairs many times — in an LRU
    bounded by ``max_cache_size`` (``None`` = unbounded).
    """

    stats: StatisticsCatalog
    resolution: float = DEFAULT_RESOLUTION
    max_cache_size: Optional[int] = DEFAULT_CACHE_SIZE

    def __post_init__(self) -> None:
        self._cache: OrderedDict[tuple[Predicate, Predicate], float] = \
            OrderedDict()
        # Bounded like the pair cache: one widened footprint per distinct
        # predicate would otherwise grow without limit on adversarial
        # workloads (millions of distinct constants).
        self._footprints: OrderedDict[ColumnConstantPredicate,
                                      IntervalSet] = OrderedDict()
        self._hits = 0
        self._misses = 0

    # -- public API --------------------------------------------------------

    def distance(self, p1: Predicate, p2: Predicate) -> float:
        """Memoized by predicate *value*: the clustering loop compares the
        same (predicate, predicate) pairs across many queries.

        The cache assumes the statistics catalog is frozen for the
        lifetime of this object (build it after observing the log).
        Lookups are order-normalized: ``(p1, p2)`` and ``(p2, p1)`` share
        one entry, stored under whichever order was seen first.
        """
        key = (p1, p2)
        cached = self._cache.get(key)
        if cached is None:
            key = (p2, p1)
            cached = self._cache.get(key)
        if cached is None:
            self._misses += 1
            cached = self._distance(p1, p2)
            self._cache[(p1, p2)] = cached
            if self.max_cache_size is not None \
                    and len(self._cache) > self.max_cache_size:
                self._cache.popitem(last=False)
        else:
            self._hits += 1
            self._cache.move_to_end(key)
        return cached

    def cache_info(self) -> CacheInfo:
        return CacheInfo(self._hits, self._misses, len(self._cache),
                         self.max_cache_size, len(self._footprints),
                         self.max_cache_size)

    def paper_overlap(self, p1: Predicate, p2: Predicate) -> float:
        """The overlap exactly as the paper's worked examples compute it.

        Same column: intersection width over ``access(a)`` width.
        Different columns: occupied fraction of the joint space.
        """
        if not isinstance(p1, ColumnConstantPredicate) or \
                not isinstance(p2, ColumnConstantPredicate):
            return 0.0
        if p1.ref == p2.ref and p1.is_numeric and p2.is_numeric:
            access = self.stats.access_interval(p1.ref)
            width = access.width
            if not math.isfinite(width) or width <= 0:
                return 1.0 if p1 == p2 else 0.0
            fp1 = _clamped(p1, access)
            fp2 = _clamped(p2, access)
            return fp1.intersect(fp2).total_width / width
        if p1.is_numeric and p2.is_numeric:
            return (self._coverage_fraction(p1)
                    * self._coverage_fraction(p2))
        return 0.0

    # -- internals -------------------------------------------------------------

    def _distance(self, p1: Predicate, p2: Predicate) -> float:
        if p1 == p2:
            return 0.0
        if isinstance(p1, ColumnColumnPredicate) or \
                isinstance(p2, ColumnColumnPredicate):
            return _column_column_distance(p1, p2)
        assert isinstance(p1, ColumnConstantPredicate)
        assert isinstance(p2, ColumnConstantPredicate)
        if p1.ref == p2.ref:
            if p1.is_numeric and p2.is_numeric:
                return self._same_column_numeric(p1, p2)
            if not p1.is_numeric and not p2.is_numeric:
                return self._same_column_categorical(p1, p2)
            return 1.0  # mixed-type comparison on one column
        if p1.is_numeric and p2.is_numeric:
            return 1.0 - (self._coverage_fraction(p1)
                          * self._coverage_fraction(p2))
        return 1.0

    def _same_column_numeric(self, p1: ColumnConstantPredicate,
                             p2: ColumnConstantPredicate) -> float:
        access = self.stats.access_interval(p1.ref)
        width = access.width
        if not math.isfinite(width):
            # No usable normalization (unknown or unbounded column):
            # only exact matches count as close.
            return 0.0 if (p1.op, p1.value) == (p2.op, p2.value) else 1.0
        if width <= 0:
            return 0.0 if p1.value == p2.value else 1.0
        fp1 = self._widened(p1, access)
        fp2 = self._widened(p2, access)
        inter = fp1.intersect(fp2).total_width
        union = fp1.total_width + fp2.total_width - inter
        if union <= 0:
            # Zero-width footprints (point predicates at resolution 0):
            # only structural equality counts as overlap.
            return 0.0 if fp1 == fp2 and not fp1.is_empty else 1.0
        # max() guards the metric range against last-ulp float error in
        # the width sums (the metric-law suite asserts d_pred ≥ 0 exactly).
        return max(0.0, 1.0 - inter / union)

    def _same_column_categorical(self, p1: ColumnConstantPredicate,
                                 p2: ColumnConstantPredicate) -> float:
        vocabulary = self.stats.access_values(p1.ref)
        set1 = _categorical_footprint(p1, vocabulary)
        set2 = _categorical_footprint(p2, vocabulary)
        union = set1 | set2
        if not union:
            return 0.0
        return 1.0 - len(set1 & set2) / len(union)

    def _coverage_fraction(self, pred: ColumnConstantPredicate) -> float:
        access = self.stats.access_interval(pred.ref)
        if not math.isfinite(access.width) or access.width <= 0:
            return 0.0
        return _clamped(pred, access).total_width / access.width

    def _widened(self, pred: ColumnConstantPredicate,
                 access: Interval) -> IntervalSet:
        cached = self._footprints.get(pred)
        if cached is not None:
            self._footprints.move_to_end(pred)
            return cached
        result = self._widened_uncached(pred, access)
        self._footprints[pred] = result
        if self.max_cache_size is not None \
                and len(self._footprints) > self.max_cache_size:
            self._footprints.popitem(last=False)
        return result

    def _widened_uncached(self, pred: ColumnConstantPredicate,
                          access: Interval) -> IntervalSet:
        footprint = _clamped(pred, access)
        margin = self.resolution * access.width / 2.0
        if margin <= 0:
            return footprint
        widened = [
            Interval(iv.lo - margin, iv.hi + margin)
            for iv in footprint
        ]
        if not widened and pred.op is Op.EQ and pred.is_numeric:
            # Point predicate outside access(a): keep a resolution-sized
            # footprint anyway so out-of-range lookups still compare.
            center = float(pred.value)
            widened = [Interval(center - margin, center + margin)]
        return IntervalSet(widened)


def _clamped(pred: ColumnConstantPredicate,
             access: Interval) -> IntervalSet:
    return pred.to_interval_set().intersect(access)


def _categorical_footprint(pred: ColumnConstantPredicate,
                           vocabulary: frozenset[str]) -> frozenset[str]:
    """Vocabulary values satisfying one categorical predicate.

    Inequalities use the ordered (lexicographic) vocabulary from
    ``access(a)`` rather than conflating every operator with equality:
    ``city < 'M'`` and ``city = 'M'`` are disjoint predicates and must
    get disjoint footprints (distance 1), not distance 0.  The inclusive
    operators (LE/GE/EQ) also admit the constant itself even when it is
    missing from the observed vocabulary, so identical point predicates
    keep distance 0 regardless of catalog coverage.
    """
    value = str(pred.value)
    if pred.op is Op.EQ:
        return frozenset({value})
    if pred.op is Op.NE:
        return vocabulary - {value}
    if pred.op is Op.LT:
        return frozenset(v for v in vocabulary if v < value)
    if pred.op is Op.LE:
        return frozenset(v for v in vocabulary if v <= value) | {value}
    if pred.op is Op.GT:
        return frozenset(v for v in vocabulary if v > value)
    if pred.op is Op.GE:
        return frozenset(v for v in vocabulary if v >= value) | {value}
    return frozenset({value})


def _column_column_distance(p1: Predicate, p2: Predicate) -> float:
    """Join-condition predicates compare structurally.

    Identical conditions are distance 0; the same column pair with a
    different operator is halfway; anything else is maximal.
    """
    if not isinstance(p1, ColumnColumnPredicate) or \
            not isinstance(p2, ColumnColumnPredicate):
        return 1.0
    if p1 == p2:
        return 0.0
    if {p1.left, p1.right} == {p2.left, p2.right}:
        return 0.5
    return 1.0
