"""A miniature SQL executor over the in-memory database.

Supports the query shapes the access-area study needs to *re-execute*
(the Section 6.6 baseline): selections, comma/CROSS/INNER/OUTER/NATURAL
joins, GROUP BY + HAVING aggregates, nested EXISTS / IN / ANY / ALL /
scalar subqueries with correlation, DISTINCT, TOP, and ORDER BY.

It also reproduces SkyServer's operational failure modes, which the paper
leans on (1.2M error queries): a strict-MSSQL dialect check that rejects
MySQL ``LIMIT``, and a result-row cap mirroring the "limit is top 500000"
server error.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Any, Optional

from ..algebra.coercion import compare_values
from ..sqlparser import ast, parse
from .database import Database
from .table import Row


class ExecutionError(Exception):
    """Base class of simulated server-side failures."""


class DialectError(ExecutionError):
    """MySQL-isms rejected by the MSSQL server (e.g. LIMIT)."""


class ResultLimitError(ExecutionError):
    """The SkyServer "limit is top 500000" error."""


class UnknownRelationError(ExecutionError):
    pass


class UnknownColumnError(ExecutionError):
    pass


@dataclass
class ResultSet:
    """Execution output: flat rows keyed by output-column label."""

    columns: list[str]
    rows: list[dict[str, Any]]

    def __len__(self) -> int:
        return len(self.rows)

    def column(self, name: str) -> list:
        return [row.get(name) for row in self.rows]


@dataclass
class _Env:
    """A binding scope: alias/table-binding → current row.

    Chained through ``parent`` for correlated subqueries.
    """

    bindings: dict[str, tuple[str, Row]]  # binding -> (relation, row)
    parent: Optional["_Env"] = None

    def resolve(self, table: Optional[str], column: str,
                executor: "QueryExecutor") -> Any:
        env: Optional[_Env] = self
        while env is not None:
            value = env._lookup(table, column, executor)
            if value is not _MISSING:
                return value
            env = env.parent
        raise UnknownColumnError(
            f"cannot resolve column {table + '.' if table else ''}{column}")

    def _lookup(self, table: Optional[str], column: str,
                executor: "QueryExecutor") -> Any:
        if table is not None:
            entry = _ci_get(self.bindings, table)
            if entry is None:
                return _MISSING
            relation, row = entry
            if not executor.db.table(relation).relation.has_column(column):
                return _MISSING
            return _row_get(row, column)
        for relation, row in self.bindings.values():
            if executor.db.table(relation).relation.has_column(column):
                return _row_get(row, column)
        return _MISSING


_MISSING = object()


def _ci_get(mapping: dict[str, Any], key: str) -> Any:
    lowered = key.lower()
    for k, v in mapping.items():
        if k.lower() == lowered:
            return v
    return None


def _row_get(row: Row, column: str) -> Any:
    lowered = column.lower()
    for k, v in row.items():
        if k.lower() == lowered:
            return v
    return None


_AGGREGATES = {"SUM", "COUNT", "MIN", "MAX", "AVG"}


@dataclass
class QueryExecutor:
    """Executes parsed SELECT statements against a :class:`Database`."""

    db: Database
    max_result_rows: int = 500_000
    strict_mssql: bool = True
    max_intermediate_rows: int = 5_000_000

    def execute_sql(self, sql: str) -> ResultSet:
        return self.execute(parse(sql))

    def execute(self, stmt: ast.SelectStatement,
                outer: Optional[_Env] = None) -> ResultSet:
        if self.strict_mssql and stmt.limit is not None:
            raise DialectError("LIMIT is not valid Transact-SQL")
        contexts = self._build_from(stmt, outer)
        if stmt.where is not None:
            contexts = [env for env in contexts
                        if self._eval_condition(stmt.where, env)]
        if stmt.group_by or self._has_aggregate(stmt):
            rows, columns = self._execute_grouped(stmt, contexts, outer)
        else:
            rows, columns = self._project(stmt, contexts)
        if stmt.distinct:
            rows = _distinct(rows)
        rows = self._order(stmt, rows)
        if stmt.top is not None:
            rows = rows[:stmt.top]
        if len(rows) > self.max_result_rows:
            raise ResultLimitError(
                f"limit is top {self.max_result_rows}")
        return ResultSet(columns, rows)

    # -- FROM ---------------------------------------------------------------

    def _build_from(self, stmt: ast.SelectStatement,
                    outer: Optional[_Env]) -> list[_Env]:
        if not stmt.from_items:
            return [_Env({}, outer)]
        contexts: list[dict[str, tuple[str, Row]]] = [{}]
        for item in stmt.from_items:
            item_rows = self._from_item_rows(item, outer)
            merged: list[dict[str, tuple[str, Row]]] = []
            for left in contexts:
                for right in item_rows:
                    merged.append({**left, **right})
                    if len(merged) > self.max_intermediate_rows:
                        raise ExecutionError("intermediate result too large")
            contexts = merged
        return [_Env(bindings, outer) for bindings in contexts]

    def _from_item_rows(
            self, item: ast.FromItem,
            outer: Optional[_Env]) -> list[dict[str, tuple[str, Row]]]:
        if isinstance(item, ast.TableRef):
            if not self.db.has_table(item.name):
                raise UnknownRelationError(f"unknown relation {item.name}")
            table = self.db.table(item.name)
            return [{item.binding: (table.name, row)} for row in table]
        return self._join_rows(item, outer)

    def _join_rows(
            self, join: ast.Join,
            outer: Optional[_Env]) -> list[dict[str, tuple[str, Row]]]:
        left_rows = self._from_item_rows(join.left, outer)
        right_rows = self._from_item_rows(join.right, outer)
        jt = join.join_type

        if jt is ast.JoinType.NATURAL:
            condition = None
            common = self._natural_common_columns(left_rows, right_rows)
        else:
            condition = join.condition
            common = []

        matched_right: set[int] = set()
        out: list[dict[str, tuple[str, Row]]] = []
        left_matched_flags: list[bool] = []
        for left in left_rows:
            matched = False
            for r_index, right in enumerate(right_rows):
                combined = {**left, **right}
                if self._join_match(condition, common, combined, outer):
                    out.append(combined)
                    matched = True
                    matched_right.add(r_index)
            left_matched_flags.append(matched)

        if jt in (ast.JoinType.LEFT, ast.JoinType.FULL):
            null_right = self._null_bindings(right_rows)
            for left, matched in zip(left_rows, left_matched_flags):
                if not matched:
                    out.append({**left, **null_right})
        if jt in (ast.JoinType.RIGHT, ast.JoinType.FULL):
            null_left = self._null_bindings(left_rows)
            for r_index, right in enumerate(right_rows):
                if r_index not in matched_right:
                    out.append({**null_left, **right})
        return out

    def _join_match(self, condition: Optional[ast.Condition],
                    common: list[str],
                    bindings: dict[str, tuple[str, Row]],
                    outer: Optional[_Env]) -> bool:
        env = _Env(bindings, outer)
        if condition is not None:
            return self._eval_condition(condition, env)
        if common:
            items = list(bindings.values())
            if len(items) < 2:
                return True
            for column in common:
                values = {_row_get(row, column) for _, row in items
                          if _row_get(row, column) is not None}
                if len(values) > 1:
                    return False
            return True
        return True  # CROSS JOIN

    @staticmethod
    def _natural_common_columns(left_rows, right_rows) -> list[str]:
        def columns_of(rows) -> set[str]:
            cols: set[str] = set()
            for bindings in rows[:1]:
                for _, row in bindings.values():
                    cols.update(k.lower() for k in row)
            return cols

        return sorted(columns_of(left_rows) & columns_of(right_rows))

    @staticmethod
    def _null_bindings(rows) -> dict[str, tuple[str, Row]]:
        if not rows:
            return {}
        template = rows[0]
        return {
            binding: (relation, {k: None for k in row})
            for binding, (relation, row) in template.items()
        }

    # -- projection ----------------------------------------------------------

    def _project(self, stmt: ast.SelectStatement,
                 contexts: list[_Env]) -> tuple[list[dict], list[str]]:
        columns = self._output_columns(stmt, contexts)
        rows: list[dict] = []
        for env in contexts:
            out: dict[str, Any] = {}
            for item in stmt.select_items:
                if isinstance(item.expr, ast.Star):
                    out.update(self._expand_star(item.expr, env))
                else:
                    label = item.alias or str(item.expr)
                    out[label] = self._eval_expr(item.expr, env)
            rows.append(out)
        return rows, columns

    def _output_columns(self, stmt: ast.SelectStatement,
                        contexts: list[_Env]) -> list[str]:
        columns: list[str] = []
        sample = contexts[0] if contexts else None
        for item in stmt.select_items:
            if isinstance(item.expr, ast.Star):
                if sample is not None:
                    columns.extend(self._expand_star(item.expr, sample))
            else:
                columns.append(item.alias or str(item.expr))
        return columns

    def _expand_star(self, star: ast.Star, env: _Env) -> dict[str, Any]:
        out: dict[str, Any] = {}
        for binding, (relation, row) in env.bindings.items():
            if star.table is not None and \
                    binding.lower() != star.table.lower():
                continue
            for key, value in row.items():
                out[f"{binding}.{key}"] = value
        return out

    # -- grouping ------------------------------------------------------------

    def _has_aggregate(self, stmt: ast.SelectStatement) -> bool:
        def is_agg(expr: ast.Expr) -> bool:
            return (isinstance(expr, ast.FunctionCall)
                    and expr.upper_name in _AGGREGATES)

        return any(is_agg(item.expr) for item in stmt.select_items
                   if not isinstance(item.expr, ast.Star))

    def _execute_grouped(
            self, stmt: ast.SelectStatement, contexts: list[_Env],
            outer: Optional[_Env]) -> tuple[list[dict], list[str]]:
        groups: dict[tuple, list[_Env]] = {}
        for env in contexts:
            key = tuple(
                _hashable(self._eval_expr(g, env)) for g in stmt.group_by)
            groups.setdefault(key, []).append(env)
        if not stmt.group_by and not groups:
            groups[()] = []  # aggregates over an empty input: one group

        rows: list[dict] = []
        for key, members in groups.items():
            if stmt.having is not None and not self._eval_condition(
                    stmt.having, members[0] if members else _Env({}, outer),
                    group=members):
                continue
            out: dict[str, Any] = {}
            representative = members[0] if members else _Env({}, outer)
            for item in stmt.select_items:
                if isinstance(item.expr, ast.Star):
                    out.update(self._expand_star(item.expr, representative))
                    continue
                label = item.alias or str(item.expr)
                out[label] = self._eval_expr(
                    item.expr, representative, group=members)
            rows.append(out)
        columns = [item.alias or str(item.expr)
                   for item in stmt.select_items
                   if not isinstance(item.expr, ast.Star)]
        return rows, columns

    # -- ORDER BY --------------------------------------------------------------

    def _order(self, stmt: ast.SelectStatement,
               rows: list[dict]) -> list[dict]:
        if not stmt.order_by:
            return rows

        def sort_key(row: dict):
            key = []
            for item in stmt.order_by:
                label = str(item.expr)
                value = row.get(label)
                if value is None and isinstance(item.expr, ast.ColumnExpr):
                    value = _row_get(row, item.expr.name)
                key.append(_SortValue(value, item.descending))
            return key

        return sorted(rows, key=sort_key)

    # -- conditions ---------------------------------------------------------------

    def _eval_condition(self, cond: ast.Condition, env: _Env,
                        group: Optional[list[_Env]] = None) -> bool:
        if isinstance(cond, ast.AndCondition):
            return all(self._eval_condition(c, env, group)
                       for c in cond.children)
        if isinstance(cond, ast.OrCondition):
            return any(self._eval_condition(c, env, group)
                       for c in cond.children)
        if isinstance(cond, ast.NotCondition):
            return not self._eval_condition(cond.child, env, group)
        if isinstance(cond, ast.Comparison):
            left = self._eval_expr(cond.left, env, group)
            right = self._eval_expr(cond.right, env, group)
            return _compare(left, cond.op, right)
        if isinstance(cond, ast.Between):
            value = self._eval_expr(cond.expr, env, group)
            low = self._eval_expr(cond.low, env, group)
            high = self._eval_expr(cond.high, env, group)
            if value is None or low is None or high is None:
                return False
            result = (compare_values(low, "<=", value)
                      and compare_values(value, "<=", high))
            return not result if cond.negated else result
        if isinstance(cond, ast.InList):
            value = self._eval_expr(cond.expr, env, group)
            members = [self._eval_expr(v, env, group) for v in cond.values]
            result = any(compare_values(value, "=", m) for m in members)
            return not result if cond.negated else result
        if isinstance(cond, ast.InSubquery):
            value = self._eval_expr(cond.expr, env, group)
            result_set = self.execute(cond.query, outer=env)
            members = {next(iter(row.values()), None)
                       for row in result_set.rows}
            result = any(compare_values(value, "=", m) for m in members)
            return not result if cond.negated else result
        if isinstance(cond, ast.Exists):
            result_set = self.execute(cond.query, outer=env)
            result = len(result_set) > 0
            return not result if cond.negated else result
        if isinstance(cond, ast.QuantifiedComparison):
            value = self._eval_expr(cond.expr, env, group)
            result_set = self.execute(cond.query, outer=env)
            members = [next(iter(row.values()), None)
                       for row in result_set.rows]
            comparisons = [_compare(value, cond.op, m) for m in members]
            if cond.quantifier == "ANY":
                return any(comparisons)
            return all(comparisons)
        if isinstance(cond, ast.Like):
            value = self._eval_expr(cond.expr, env, group)
            result = isinstance(value, str) and \
                _like_match(value, cond.pattern)
            return not result if cond.negated else result
        if isinstance(cond, ast.IsNull):
            value = self._eval_expr(cond.expr, env, group)
            result = value is None
            return not result if cond.negated else result
        raise ExecutionError(f"unsupported condition {type(cond).__name__}")

    # -- scalar expressions ----------------------------------------------------------

    def _eval_expr(self, expr: ast.Expr, env: _Env,
                   group: Optional[list[_Env]] = None) -> Any:
        if isinstance(expr, ast.Literal):
            return expr.value
        if isinstance(expr, ast.ColumnExpr):
            return env.resolve(expr.table, expr.name, self)
        if isinstance(expr, ast.FunctionCall):
            if expr.upper_name in _AGGREGATES:
                return self._eval_aggregate(expr, env, group)
            raise ExecutionError(f"unknown function {expr.name}")
        if isinstance(expr, ast.Arithmetic):
            left = self._eval_expr(expr.left, env, group)
            right = self._eval_expr(expr.right, env, group)
            if left is None or right is None:
                return None
            return _arith(expr.op, left, right)
        if isinstance(expr, ast.UnaryMinus):
            value = self._eval_expr(expr.operand, env, group)
            return None if value is None else -value
        if isinstance(expr, ast.ScalarSubquery):
            result_set = self.execute(expr.query, outer=env)
            if not result_set.rows:
                return None
            return next(iter(result_set.rows[0].values()), None)
        if isinstance(expr, ast.Star):
            return None
        raise ExecutionError(f"unsupported expression {type(expr).__name__}")

    def _eval_aggregate(self, call: ast.FunctionCall, env: _Env,
                        group: Optional[list[_Env]]) -> Any:
        members = group if group is not None else [env]
        name = call.upper_name
        if name == "COUNT" and (not call.args
                                or isinstance(call.args[0], ast.Star)):
            return len(members)
        if not call.args:
            raise ExecutionError(f"{name} requires an argument")
        values = [self._eval_expr(call.args[0], member) for member in members]
        values = [v for v in values if v is not None]
        if name == "COUNT":
            return len(values)
        if not values:
            return None
        if name == "SUM":
            return sum(values)
        if name == "MIN":
            return min(values)
        if name == "MAX":
            return max(values)
        if name == "AVG":
            return sum(values) / len(values)
        raise ExecutionError(f"unknown aggregate {name}")


@dataclass(frozen=True)
class _SortValue:
    """Total-order wrapper tolerating None and mixed types."""

    value: Any
    descending: bool

    def __lt__(self, other: "_SortValue") -> bool:
        a, b = self.value, other.value
        if a is None:
            return not self.descending
        if b is None:
            return self.descending
        try:
            less = a < b
        except TypeError:
            less = str(a) < str(b)
        return bool(less) != self.descending


def _compare(left: Any, op: str, right: Any) -> bool:
    # One shared comparison rule with the algebra's predicate evaluator
    # (NULL rejection + numeric coercion of mixed operands): the
    # differential oracle requires both sides to agree bit for bit.
    try:
        return compare_values(left, op, right)
    except ValueError as exc:
        raise ExecutionError(str(exc)) from None


def _arith(op: str, left: Any, right: Any) -> Any:
    if op == "+":
        return left + right
    if op == "-":
        return left - right
    if op == "*":
        return left * right
    if op == "/":
        if right == 0:
            return None if isinstance(right, int) else math.inf
        return left / right
    if op == "%":
        return left % right if right != 0 else None
    raise ExecutionError(f"unknown arithmetic operator {op}")


def _like_match(value: str, pattern: str) -> bool:
    """SQL LIKE with % and _ wildcards (case-insensitive, MSSQL-style)."""
    import re

    regex = re.escape(pattern).replace("%", ".*").replace("_", ".")
    return re.fullmatch(regex, value, re.IGNORECASE) is not None


def _distinct(rows: list[dict]) -> list[dict]:
    seen: set = set()
    out: list[dict] = []
    for row in rows:
        key = tuple(sorted((k, _hashable(v)) for k, v in row.items()))
        if key not in seen:
            seen.add(key)
            out.append(row)
    return out


def _hashable(value: Any) -> Any:
    if isinstance(value, (list, dict, set)):
        return str(value)
    return value
