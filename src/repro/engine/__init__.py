"""In-memory relational engine (the synthetic SkyServer substrate).

Provides the two capabilities the original study obtained from the live
CasJobs database: sampling column values to estimate ``content(a)``
(Section 5.3), and re-executing logged queries for the re-query baseline
(Section 6.6) — including SkyServer's dialect and result-size errors.
"""

from .database import Database
from .executor import (DialectError, ExecutionError, QueryExecutor,
                       ResultLimitError, ResultSet, UnknownColumnError,
                       UnknownRelationError)
from .table import Row, Table

__all__ = [
    "Database", "Table", "Row",
    "QueryExecutor", "ResultSet", "ExecutionError", "DialectError",
    "ResultLimitError", "UnknownColumnError", "UnknownRelationError",
]
