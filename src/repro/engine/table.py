"""In-memory tables backing the synthetic SkyServer database."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Iterable, Iterator, Mapping

from ..schema.relation import Relation

Row = dict[str, Any]


@dataclass
class Table:
    """Rows of one relation, stored as dictionaries keyed by column name.

    Column names in rows use the relation's declared capitalization;
    lookups through :meth:`get_value` are case-insensitive.
    """

    relation: Relation
    rows: list[Row] = field(default_factory=list)

    def __post_init__(self) -> None:
        self._canonical = {c.name.lower(): c.name for c in self.relation}

    @property
    def name(self) -> str:
        return self.relation.name

    def insert(self, row: Mapping[str, Any]) -> None:
        normalized: Row = {}
        for key, value in row.items():
            canonical = self._canonical.get(key.lower())
            if canonical is None:
                raise KeyError(
                    f"no column {key!r} in relation {self.name}")
            normalized[canonical] = value
        self.rows.append(normalized)

    def insert_many(self, rows: Iterable[Mapping[str, Any]]) -> None:
        for row in rows:
            self.insert(row)

    def get_value(self, row: Row, column: str) -> Any:
        canonical = self._canonical.get(column.lower())
        if canonical is None:
            raise KeyError(
                f"no column {column!r} in relation {self.name}")
        return row.get(canonical)

    def column_values(self, column: str) -> list:
        canonical = self._canonical.get(column.lower())
        if canonical is None:
            raise KeyError(
                f"no column {column!r} in relation {self.name}")
        return [row.get(canonical) for row in self.rows]

    def __len__(self) -> int:
        return len(self.rows)

    def __iter__(self) -> Iterator[Row]:
        return iter(self.rows)
