"""The in-memory database: schema + tables + sampling.

Plays the role of the live SkyServer CasJobs database in the original
study: it provides the content sample used to estimate ``content(a)``
(Section 5.3) and the state against which the re-query baseline executes
(Section 6.6).
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Iterable, Mapping

from ..schema.database import Schema
from .table import Row, Table


@dataclass
class Database:
    """Schema-validated collection of in-memory tables."""

    schema: Schema
    seed: int = 0
    _tables: dict[str, Table] = field(default_factory=dict)

    def __post_init__(self) -> None:
        for relation in self.schema:
            self._tables[relation.name.lower()] = Table(relation)
        self._rng = random.Random(self.seed)

    def table(self, name: str) -> Table:
        try:
            return self._tables[name.lower()]
        except KeyError:
            raise KeyError(f"no table {name!r}") from None

    def has_table(self, name: str) -> bool:
        return name.lower() in self._tables

    def insert(self, relation: str, rows: Iterable[Mapping]) -> None:
        self.table(relation).insert_many(rows)

    def row_count(self, relation: str) -> int:
        return len(self.table(relation))

    def rows(self, relation: str) -> list[Row]:
        return self.table(relation).rows

    def sample_column(self, relation: str, column: str,
                      size: int = 100) -> list:
        """A uniform random sample of a column's values.

        This is the "querying a sample of its data, e.g., 100 rows"
        primitive of Section 5.3.  Deterministic given the database seed.
        """
        values = self.table(relation).column_values(column)
        if len(values) <= size:
            return list(values)
        return self._rng.sample(values, size)

    @property
    def tables(self) -> tuple[Table, ...]:
        return tuple(self._tables.values())
