"""Relation (table) metadata."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator

from .column import Column


@dataclass(frozen=True)
class Relation:
    """A named relation with an ordered set of columns.

    Column lookup is case-insensitive, matching SQL Server's default
    collation behaviour that SkyServer users rely on (``photoobjall.RA``
    and ``PhotoObjAll.ra`` are the same column).
    """

    name: str
    columns: tuple[Column, ...]

    def __post_init__(self) -> None:
        lowered = [c.name.lower() for c in self.columns]
        if len(set(lowered)) != len(lowered):
            raise ValueError(f"duplicate column names in {self.name}")

    @property
    def column_names(self) -> tuple[str, ...]:
        return tuple(c.name for c in self.columns)

    def has_column(self, name: str) -> bool:
        return self.find_column(name) is not None

    def find_column(self, name: str) -> Column | None:
        lowered = name.lower()
        for column in self.columns:
            if column.name.lower() == lowered:
                return column
        return None

    def column(self, name: str) -> Column:
        found = self.find_column(name)
        if found is None:
            raise KeyError(f"no column {name!r} in relation {self.name}")
        return found

    def __iter__(self) -> Iterator[Column]:
        return iter(self.columns)

    def __len__(self) -> int:
        return len(self.columns)

    def __str__(self) -> str:
        cols = ", ".join(str(c) for c in self.columns)
        return f"{self.name}({cols})"
