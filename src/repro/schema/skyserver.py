"""A DR9-like SkyServer schema and its content footprint.

Defines the relations that appear in Table 1 of the paper, with column
types and semantically bounded domains (angles, probabilities).  The
module also exports :data:`CONTENT_BOUNDS` — the minimum bounding box of
the *synthetic* database content per numeric column — which the content
generator (:mod:`repro.workload.content`) and the Figure-1 analysis use as
one source of truth.

The numbers mirror the real DR9 footprint closely enough for every paper
observation to reproduce:

* ``objid`` / ``specobjid`` content occupies a narrow band of the huge
  BIGINT domain, so Table 1's id-range clusters have small area coverage
  and the specobjid ranges of Clusters 19-21 fall in empty space;
* ``SpecObjAll`` content spans plate ``[266, 5141]`` × mjd
  ``[51578, 55752]`` (Figure 1(a) / Example 1);
* the photometric survey footprint leaves the far southern sky
  (``dec < -30``) empty, making Cluster 18's area empty (Figure 1(b));
* ``zooSpec`` coverage is a northern stripe, so Cluster 22's southern
  window is empty and non-contiguous with content (Figure 1(c));
* ``Photoz.z`` content lies in ``[0, 1]``: Clusters 23 (negative z) and
  24 (z in [3, 6.5]) are empty areas.
"""

from __future__ import annotations

from ..algebra.intervals import Interval
from .column import Column, ColumnType
from .database import Schema
from .relation import Relation

# -- Content footprint constants (minimum bounding boxes) --------------------

#: First DR9 photometric object id (real SDSS skyVersion/rerun encoding
#: puts DR8/9 objids at ~1.2376e18).
OBJID_LO = 1_237_645_879_551_000_000
OBJID_HI = 1_237_680_000_000_000_000

#: DR9 spectroscopic ids: legacy plates up to ~3.3e18.  Clusters 19-21
#: query [3.52e18, 5.79e18], which is *empty* under this bound.
SPECOBJID_LO = 299_489_677_444_933_632
SPECOBJID_HI = 3_300_000_000_000_000_000

PLATE_LO, PLATE_HI = 266, 5141
MJD_LO, MJD_HI = 51578, 55752

#: Photometric footprint: full RA circle, but no far-southern coverage.
PHOTO_DEC_LO, PHOTO_DEC_HI = -25.0, 85.0

#: Galaxy-Zoo (zooSpec) footprint: the SDSS Legacy northern stripe.
ZOO_DEC_LO, ZOO_DEC_HI = -11.0, 70.0

#: Photometric-redshift estimates: non-negative and below ~1.
PHOTOZ_LO, PHOTOZ_HI = 0.0, 1.0

#: Spectroscopic redshift content range.
SPECZ_LO, SPECZ_HI = -0.011, 7.1


def skyserver_schema() -> Schema:
    """Build the DR9-like schema used throughout the case study."""
    schema = Schema("SkyServerDR9")

    ra = Column("ra", ColumnType.FLOAT, Interval(0.0, 360.0))
    dec = Column("dec", ColumnType.FLOAT, Interval(-90.0, 90.0))

    schema.add(Relation("PhotoObjAll", (
        Column("objid", ColumnType.BIGINT),
        ra, dec,
        Column("type", ColumnType.INT, Interval(0, 9)),
        Column("mode", ColumnType.INT, Interval(1, 3)),
        Column("u", ColumnType.REAL, Interval(-10.0, 40.0)),
        Column("g", ColumnType.REAL, Interval(-10.0, 40.0)),
        Column("r", ColumnType.REAL, Interval(-10.0, 40.0)),
        Column("i", ColumnType.REAL, Interval(-10.0, 40.0)),
        Column("z", ColumnType.REAL, Interval(-10.0, 40.0)),
    )))

    schema.add(Relation("SpecObjAll", (
        Column("specobjid", ColumnType.BIGINT),
        Column("bestobjid", ColumnType.BIGINT),
        Column("plate", ColumnType.INT, Interval(1, 20_000)),
        Column("mjd", ColumnType.INT, Interval(40_000, 80_000)),
        Column("fiberid", ColumnType.INT, Interval(1, 1000)),
        ra, dec,
        Column("z", ColumnType.REAL, Interval(-1.0, 10.0)),
        Column("zerr", ColumnType.REAL, Interval(0.0, 10.0)),
        Column("class", ColumnType.VARCHAR,
               categories=("star", "galaxy", "qso")),
    )))

    schema.add(Relation("SpecPhotoAll", (
        Column("objid", ColumnType.BIGINT),
        Column("specobjid", ColumnType.BIGINT),
        ra, dec,
        Column("z", ColumnType.REAL, Interval(-1.0, 10.0)),
        Column("class", ColumnType.VARCHAR,
               categories=("star", "galaxy", "qso")),
    )))

    schema.add(Relation("Photoz", (
        Column("objid", ColumnType.BIGINT),
        Column("z", ColumnType.REAL, Interval(-1.0, 10.0)),
        Column("zerr", ColumnType.REAL, Interval(0.0, 10.0)),
        Column("photoerrorclass", ColumnType.INT, Interval(-10, 10)),
    )))

    schema.add(Relation("galSpecLine", (
        Column("specobjid", ColumnType.BIGINT),
        Column("h_alpha_flux", ColumnType.REAL),
        Column("h_beta_flux", ColumnType.REAL),
        Column("oiii_5007_flux", ColumnType.REAL),
    )))

    schema.add(Relation("galSpecInfo", (
        Column("specobjid", ColumnType.BIGINT),
        ra, dec,
        Column("targettype", ColumnType.VARCHAR,
               categories=("galaxy", "qa", "sky")),
    )))

    schema.add(Relation("galSpecExtra", (
        Column("specobjid", ColumnType.BIGINT),
        Column("bptclass", ColumnType.INT, Interval(-1, 4)),
        Column("lgm_tot_p50", ColumnType.REAL, Interval(0.0, 15.0)),
    )))

    schema.add(Relation("galSpecIndx", (
        Column("specObjID", ColumnType.BIGINT),
        Column("lick_hd_a", ColumnType.REAL),
    )))

    schema.add(Relation("sppLines", (
        Column("specobjid", ColumnType.BIGINT),
        Column("gwholemask", ColumnType.INT, Interval(0, 1023)),
        Column("gwholeside", ColumnType.REAL, Interval(0.0, 400.0)),
        Column("caiikside", ColumnType.REAL, Interval(0.0, 400.0)),
    )))

    schema.add(Relation("sppParams", (
        Column("specobjid", ColumnType.BIGINT),
        Column("fehadop", ColumnType.REAL, Interval(-5.0, 1.0)),
        Column("loggadop", ColumnType.REAL, Interval(0.0, 5.0)),
        Column("teffadop", ColumnType.REAL, Interval(3000.0, 10_000.0)),
    )))

    schema.add(Relation("zooSpec", (
        Column("specobjid", ColumnType.BIGINT),
        Column("objid", ColumnType.BIGINT),
        ra, dec,
        Column("p_el", ColumnType.REAL, Interval(0.0, 1.0)),
        Column("p_cs", ColumnType.REAL, Interval(0.0, 1.0)),
    )))

    schema.add(Relation("emissionLinesPort", (
        Column("specObjID", ColumnType.BIGINT),
        ra, dec,
        Column("bpt", ColumnType.VARCHAR,
               categories=("Star Forming", "Seyfert", "LINER",
                           "Composite", "BLANK")),
    )))

    schema.add(Relation("stellarMassPCAWisc", (
        Column("specObjID", ColumnType.BIGINT),
        ra, dec,
        Column("mstellar_median", ColumnType.REAL, Interval(0.0, 15.0)),
    )))

    schema.add(Relation("AtlasOutline", (
        Column("objid", ColumnType.BIGINT),
        Column("span", ColumnType.INT, Interval(0, 10_000)),
    )))

    schema.add(Relation("DBObjects", (
        Column("name", ColumnType.VARCHAR),
        Column("type", ColumnType.VARCHAR,
               categories=("U", "V", "P", "F", "S")),
        Column("access", ColumnType.VARCHAR, categories=("U", "A")),
    )))

    return schema


#: Minimum bounding box of the synthetic content per (relation, column).
#: Only numeric columns that matter for Table 1 / Figure 1 are listed;
#: the content generator fills the rest from the declared domains.
CONTENT_BOUNDS: dict[tuple[str, str], Interval] = {
    ("PhotoObjAll", "objid"): Interval(OBJID_LO, OBJID_HI),
    ("PhotoObjAll", "ra"): Interval(0.0, 360.0),
    ("PhotoObjAll", "dec"): Interval(PHOTO_DEC_LO, PHOTO_DEC_HI),
    ("SpecObjAll", "specobjid"): Interval(SPECOBJID_LO, SPECOBJID_HI),
    ("SpecObjAll", "bestobjid"): Interval(OBJID_LO, OBJID_HI),
    ("SpecObjAll", "plate"): Interval(PLATE_LO, PLATE_HI),
    ("SpecObjAll", "mjd"): Interval(MJD_LO, MJD_HI),
    ("SpecObjAll", "ra"): Interval(0.0, 360.0),
    ("SpecObjAll", "dec"): Interval(PHOTO_DEC_LO, PHOTO_DEC_HI),
    ("SpecObjAll", "z"): Interval(SPECZ_LO, SPECZ_HI),
    ("SpecPhotoAll", "objid"): Interval(OBJID_LO, OBJID_HI),
    ("SpecPhotoAll", "specobjid"): Interval(SPECOBJID_LO, SPECOBJID_HI),
    ("SpecPhotoAll", "ra"): Interval(0.0, 360.0),
    ("SpecPhotoAll", "dec"): Interval(PHOTO_DEC_LO, PHOTO_DEC_HI),
    ("SpecPhotoAll", "z"): Interval(SPECZ_LO, SPECZ_HI),
    ("Photoz", "objid"): Interval(OBJID_LO, OBJID_HI),
    ("Photoz", "z"): Interval(PHOTOZ_LO, PHOTOZ_HI),
    ("galSpecLine", "specobjid"): Interval(SPECOBJID_LO, SPECOBJID_HI),
    ("galSpecInfo", "specobjid"): Interval(SPECOBJID_LO, SPECOBJID_HI),
    ("galSpecInfo", "ra"): Interval(0.0, 360.0),
    ("galSpecInfo", "dec"): Interval(PHOTO_DEC_LO, PHOTO_DEC_HI),
    ("galSpecExtra", "specobjid"): Interval(SPECOBJID_LO, SPECOBJID_HI),
    ("galSpecExtra", "bptclass"): Interval(-1, 4),
    ("galSpecIndx", "specObjID"): Interval(SPECOBJID_LO, SPECOBJID_HI),
    ("sppLines", "specobjid"): Interval(SPECOBJID_LO, SPECOBJID_HI),
    ("sppLines", "gwholemask"): Interval(0, 1023),
    ("sppLines", "gwholeside"): Interval(0.0, 400.0),
    ("sppParams", "specobjid"): Interval(SPECOBJID_LO, SPECOBJID_HI),
    ("sppParams", "fehadop"): Interval(-4.0, 0.6),
    ("sppParams", "loggadop"): Interval(0.2, 5.0),
    ("zooSpec", "specobjid"): Interval(SPECOBJID_LO, SPECOBJID_HI),
    ("zooSpec", "objid"): Interval(OBJID_LO, OBJID_HI),
    ("zooSpec", "ra"): Interval(0.0, 360.0),
    ("zooSpec", "dec"): Interval(ZOO_DEC_LO, ZOO_DEC_HI),
    ("emissionLinesPort", "specObjID"): Interval(SPECOBJID_LO, SPECOBJID_HI),
    ("emissionLinesPort", "ra"): Interval(0.0, 360.0),
    ("emissionLinesPort", "dec"): Interval(PHOTO_DEC_LO, PHOTO_DEC_HI),
    ("stellarMassPCAWisc", "specObjID"):
        Interval(SPECOBJID_LO, SPECOBJID_HI),
    ("stellarMassPCAWisc", "ra"): Interval(0.0, 360.0),
    ("stellarMassPCAWisc", "dec"): Interval(PHOTO_DEC_LO, PHOTO_DEC_HI),
    ("AtlasOutline", "objid"): Interval(OBJID_LO, OBJID_HI),
    ("AtlasOutline", "span"): Interval(0, 3000),
}


def content_bounds(relation: str, column: str) -> Interval | None:
    """Case-insensitive lookup into :data:`CONTENT_BOUNDS`."""
    target = (relation.lower(), column.lower())
    for (rel, col), interval in CONTENT_BOUNDS.items():
        if (rel.lower(), col.lower()) == target:
            return interval
    return None
