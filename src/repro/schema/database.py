"""Schema registry: the set of relations forming the data space."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterator

from .column import Column
from .relation import Relation


@dataclass
class Schema:
    """A database schema — the object that *defines* the data space.

    Relation lookup is case-insensitive and also resolves through aliases
    registered during query analysis.  The schema intentionally knows
    nothing about content; content lives in :mod:`repro.engine`.
    """

    name: str = "DB"
    _relations: dict[str, Relation] = field(default_factory=dict)

    def add(self, relation: Relation) -> None:
        key = relation.name.lower()
        if key in self._relations:
            raise ValueError(f"duplicate relation {relation.name}")
        self._relations[key] = relation

    def has_relation(self, name: str) -> bool:
        return name.lower() in self._relations

    def relation(self, name: str) -> Relation:
        try:
            return self._relations[name.lower()]
        except KeyError:
            raise KeyError(f"no relation {name!r} in schema {self.name}") \
                from None

    def canonical_name(self, name: str) -> str:
        """The declared capitalization of a relation name."""
        return self.relation(name).name

    def column(self, relation_name: str, column_name: str) -> Column:
        return self.relation(relation_name).column(column_name)

    @property
    def relations(self) -> tuple[Relation, ...]:
        return tuple(self._relations.values())

    def __iter__(self) -> Iterator[Relation]:
        return iter(self._relations.values())

    def __len__(self) -> int:
        return len(self._relations)

    def __contains__(self, name: object) -> bool:
        return isinstance(name, str) and self.has_relation(name)
