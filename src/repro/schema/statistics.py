"""Content and access statistics per column (Section 5.3).

The distance function needs ``access(a) = content(a) ∪ MBR(a)`` for every
column: the normalization denominator of ``d_pred``.  The paper estimates
``content(a)`` by sampling ~100 rows per column and **doubling** the
sampled range (to be robust against the sample missing the tails), then
widens ``access(a)`` whenever a logged query's predicate refers to values
outside the current estimate.

Notably, access ranges may exceed the *declared* domain — the paper's
domain experts spotted ``zooSpec.dec = -100`` queries even though
declination cannot go below -90; we intentionally do not clamp, so the
same observation falls out of the reproduction.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Protocol

from ..algebra.cnf import CNF
from ..algebra.intervals import Interval
from ..algebra.predicates import (ColumnConstantPredicate, ColumnRef)
from .database import Schema


class SamplingSource(Protocol):
    """Anything that can hand out a sample of a column's values.

    Implemented by :class:`repro.engine.Database`; tests may supply plain
    stubs.
    """

    def sample_column(self, relation: str, column: str,
                      size: int) -> list:  # pragma: no cover - protocol
        ...


@dataclass
class NumericColumnStats:
    """Access range of one numeric column."""

    access: Interval
    content: Interval

    def observe(self, value: float) -> None:
        """Widen the access range to include a queried constant."""
        if value < self.access.lo:
            self.access = Interval(float(value), self.access.hi,
                                   False, self.access.hi_open)
        elif value > self.access.hi:
            self.access = Interval(self.access.lo, float(value),
                                   self.access.lo_open, False)


@dataclass
class CategoricalColumnStats:
    """Access vocabulary of one categorical column."""

    access: set[str] = field(default_factory=set)
    content: frozenset[str] = frozenset()

    def observe(self, value: str) -> None:
        self.access.add(value)


@dataclass
class StatisticsCatalog:
    """Per-column ``content(a)`` / ``access(a)`` registry.

    Column keys are case-insensitive ``(relation, column)`` pairs.
    """

    schema: Schema
    _numeric: dict[tuple[str, str], NumericColumnStats] = \
        field(default_factory=dict)
    _categorical: dict[tuple[str, str], CategoricalColumnStats] = \
        field(default_factory=dict)

    # -- construction --------------------------------------------------------

    @staticmethod
    def estimate(schema: Schema, source: SamplingSource,
                 sample_size: int = 100) -> "StatisticsCatalog":
        """The paper's estimation scheme: sample rows, double the range."""
        catalog = StatisticsCatalog(schema)
        for relation in schema:
            for column in relation:
                values = source.sample_column(
                    relation.name, column.name, sample_size)
                values = [v for v in values if v is not None]
                if column.is_numeric:
                    access = _doubled_range(values) or \
                        column.effective_domain
                    # The doubled range is the robust *access* normalizer;
                    # the sampled MBR itself is the content estimate used
                    # by the coverage metrics (an empty-area cluster must
                    # report 0.0 area coverage, Table 1 Clusters 18-24).
                    content = _sampled_range(values) or \
                        column.effective_domain
                    catalog._numeric[_key(relation.name, column.name)] = \
                        NumericColumnStats(access=access, content=content)
                else:
                    vocab = frozenset(str(v) for v in values) or \
                        frozenset(column.categories)
                    catalog._categorical[_key(relation.name, column.name)] = \
                        CategoricalColumnStats(access=set(vocab),
                                               content=vocab)
        return catalog

    @staticmethod
    def from_exact_content(
            schema: Schema,
            bounds: dict[tuple[str, str], Interval]) -> "StatisticsCatalog":
        """Exact-content alternative (the ablation of Section 5.3's choice).

        Columns missing from ``bounds`` fall back to their declared domain.
        """
        catalog = StatisticsCatalog(schema)
        lowered = {(r.lower(), c.lower()): iv for (r, c), iv in bounds.items()}
        for relation in schema:
            for column in relation:
                key = _key(relation.name, column.name)
                if column.is_numeric:
                    interval = lowered.get(key, column.effective_domain)
                    catalog._numeric[key] = NumericColumnStats(
                        access=interval, content=interval)
                else:
                    vocab = frozenset(column.categories)
                    catalog._categorical[key] = CategoricalColumnStats(
                        access=set(vocab), content=vocab)
        return catalog

    # -- updates from the query log -------------------------------------------

    def observe_predicate(self, predicate: ColumnConstantPredicate) -> None:
        """Widen access statistics with a constant seen in the log."""
        key = _key(predicate.ref.relation, predicate.ref.column)
        if predicate.is_numeric:
            stats = self._numeric.get(key)
            if stats is not None:
                stats.observe(float(predicate.value))
        elif isinstance(predicate.value, str):
            stats = self._categorical.get(key)
            if stats is not None:
                stats.observe(predicate.value)

    def observe_cnf(self, cnf: CNF) -> None:
        for pred in cnf.predicates():
            if isinstance(pred, ColumnConstantPredicate):
                self.observe_predicate(pred)

    def observe_many(self, cnfs: Iterable[CNF]) -> None:
        for cnf in cnfs:
            self.observe_cnf(cnf)

    # -- lookups ------------------------------------------------------------

    def access_interval(self, ref: ColumnRef) -> Interval:
        """``access(a)`` of a numeric column."""
        key = _key(ref.relation, ref.column)
        if key in self._numeric:
            return self._numeric[key].access
        # Unknown column (e.g. typo in a logged query): fall back to the
        # declared domain when resolvable, else the widest float range.
        try:
            return self.schema.column(ref.relation, ref.column) \
                .effective_domain
        except (KeyError, TypeError):
            return Interval(-1.7e308, 1.7e308)

    def content_interval(self, ref: ColumnRef) -> Interval:
        key = _key(ref.relation, ref.column)
        if key in self._numeric:
            return self._numeric[key].content
        return self.access_interval(ref)

    def access_values(self, ref: ColumnRef) -> frozenset[str]:
        """``access(a)`` of a categorical column."""
        key = _key(ref.relation, ref.column)
        if key in self._categorical:
            return frozenset(self._categorical[key].access)
        try:
            column = self.schema.column(ref.relation, ref.column)
            return frozenset(column.categories)
        except KeyError:
            return frozenset()

    def is_numeric(self, ref: ColumnRef) -> bool:
        key = _key(ref.relation, ref.column)
        if key in self._numeric:
            return True
        if key in self._categorical:
            return False
        try:
            return self.schema.column(ref.relation, ref.column).is_numeric
        except KeyError:
            return True  # assume numeric for unknown columns


def _key(relation: str, column: str) -> tuple[str, str]:
    return relation.lower(), column.lower()


def _doubled_range(values: list) -> Interval | None:
    """The paper's sampling estimate: double the sampled [m, M] range."""
    numeric = [float(v) for v in values]
    if not numeric:
        return None
    lo, hi = min(numeric), max(numeric)
    half = (hi - lo) / 2.0
    return Interval(lo - half, hi + half)


def _sampled_range(values: list) -> Interval | None:
    """The raw sampled [m, M] range (content MBR estimate)."""
    numeric = [float(v) for v in values]
    if not numeric:
        return None
    return Interval(min(numeric), max(numeric))
