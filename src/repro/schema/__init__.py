"""Schema metadata: relations, columns, domains, and column statistics."""

from .column import Column, ColumnType
from .database import Schema
from .relation import Relation
from .skyserver import (CONTENT_BOUNDS, content_bounds, skyserver_schema)
from .statistics import (CategoricalColumnStats, NumericColumnStats,
                         StatisticsCatalog)

__all__ = [
    "Column", "ColumnType", "Schema", "Relation",
    "CONTENT_BOUNDS", "content_bounds", "skyserver_schema",
    "CategoricalColumnStats", "NumericColumnStats", "StatisticsCatalog",
]
