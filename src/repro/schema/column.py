"""Column metadata: types and domains.

The paper's data space (Section 2.1) is the Cartesian product of column
*domains* — determined by the schema, not by the content.  Numeric columns
carry an interval domain derived from their SQL type; categorical columns
carry a (possibly open-ended) value vocabulary.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Optional

from ..algebra.intervals import Interval


class ColumnType(enum.Enum):
    """SQL types occurring in the SkyServer tables we model."""

    BIGINT = "bigint"
    INT = "int"
    SMALLINT = "smallint"
    REAL = "real"
    FLOAT = "float"
    VARCHAR = "varchar"

    @property
    def is_numeric(self) -> bool:
        return self is not ColumnType.VARCHAR


#: Type-level domains, per Section 5.2: "since a typically has a data type,
#: dom(a) and hence access(a) are intervals with finite bounds".
_TYPE_DOMAINS = {
    ColumnType.BIGINT: Interval(-(2 ** 63), 2 ** 63 - 1),
    ColumnType.INT: Interval(-(2 ** 31), 2 ** 31 - 1),
    ColumnType.SMALLINT: Interval(-(2 ** 15), 2 ** 15 - 1),
    ColumnType.REAL: Interval(-3.4e38, 3.4e38),
    ColumnType.FLOAT: Interval(-1.7e308, 1.7e308),
}


@dataclass(frozen=True)
class Column:
    """One column of a relation.

    ``domain`` may *narrow* the type-level domain for semantically bounded
    columns (e.g. ``ra`` in ``[0, 360]``); when omitted, the SQL type's
    full range applies.  ``categories`` is the closed vocabulary of a
    categorical column, when known.
    """

    name: str
    ctype: ColumnType
    domain: Optional[Interval] = None
    categories: tuple[str, ...] = field(default=())

    @property
    def is_numeric(self) -> bool:
        return self.ctype.is_numeric

    @property
    def effective_domain(self) -> Interval:
        """The numeric domain (declared narrowing or full type range)."""
        if not self.is_numeric:
            raise TypeError(f"column {self.name} is categorical")
        if self.domain is not None:
            return self.domain
        return _TYPE_DOMAINS[self.ctype]

    def __str__(self) -> str:
        return f"{self.name} {self.ctype.value}"
