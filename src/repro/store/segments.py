"""Append-only record segments with crash-safe recovery.

A :class:`SegmentLog` is a directory of numbered segment files::

    segments/
        seg-000000.log      (sealed — immutable once published)
        seg-000001.log      (sealed)
        seg-000002.log      (active — appended in place)

Records use the framing of :mod:`repro.store.codec` (magic + lengths +
CRC32), so every byte on disk is self-validating.  The write
discipline:

* appends go to the **active** segment only, record-at-a-time, flushed
  per append (``fsync`` optional via ``durable=True``);
* when the active segment exceeds ``roll_bytes`` it is **sealed**:
  written to ``<name>.tmp`` and published with an atomic
  ``os.replace`` — a reader never observes a half-sealed file;
* on open, sealed segments are trusted as published; the **active**
  segment is scanned and any torn tail (a writer killed mid-append)
  is **truncated** to the last valid record boundary.

Reads of sealed segments go through the shared
:class:`~repro.store.pager.BufferPool`; the active segment's pages are
invalidated on every append so the pool can cache it too.
"""

from __future__ import annotations

import os
import re
from dataclasses import dataclass
from typing import Iterator, Optional

from ..obs import get_logger
from .codec import pack_record, scan_records
from .pager import BufferPool, fsync_dir, fsync_file

logger = get_logger(__name__)

_SEGMENT_RE = re.compile(r"^seg-(\d{6})\.log$")

DEFAULT_ROLL_BYTES = 4 * 1024 * 1024


def _segment_name(segment_id: int) -> str:
    return f"seg-{segment_id:06d}.log"


@dataclass(frozen=True)
class RecordLocation:
    """Where one record lives: segment id + byte offset + total size."""

    segment_id: int
    offset: int
    length: int


class SegmentLog:
    """The append-only record store behind areas and the ingest journal."""

    def __init__(self, directory: str, pool: BufferPool, *,
                 roll_bytes: int = DEFAULT_ROLL_BYTES,
                 durable: bool = False) -> None:
        self.directory = directory
        self.pool = pool
        self.roll_bytes = roll_bytes
        self.durable = durable
        os.makedirs(directory, exist_ok=True)
        self.truncated_tail_bytes = 0
        self._segment_ids = self._discover()
        if not self._segment_ids:
            self._segment_ids = [0]
            self._create_segment(0)
        self.active_id = self._segment_ids[-1]
        self._recover_active()
        self._active_size = os.path.getsize(
            self._path(self.active_id))
        self.appended_records = 0
        self.appended_bytes = 0

    # -- layout -------------------------------------------------------

    def _path(self, segment_id: int) -> str:
        return os.path.join(self.directory, _segment_name(segment_id))

    def _token(self, segment_id: int) -> str:
        return f"{self.directory}:{segment_id}"

    def _discover(self) -> list[int]:
        ids = []
        for name in os.listdir(self.directory):
            match = _SEGMENT_RE.match(name)
            if match:
                ids.append(int(match.group(1)))
        return sorted(ids)

    def _create_segment(self, segment_id: int) -> None:
        # Publish even the empty active segment atomically, so a crash
        # between roll and first append leaves a valid (empty) file.
        tmp = self._path(segment_id) + ".tmp"
        with open(tmp, "wb"):
            pass
        os.replace(tmp, self._path(segment_id))
        fsync_dir(self.directory)

    def _recover_active(self) -> None:
        """Truncate a torn tail off the active segment (crash repair)."""
        path = self._path(self.active_id)
        with open(path, "rb") as handle:
            buf = handle.read()
        _, valid = scan_records(buf)
        if valid < len(buf):
            self.truncated_tail_bytes = len(buf) - valid
            logger.warning(
                "segment %s: truncating %d torn tail byte(s) left by "
                "an interrupted append", _segment_name(self.active_id),
                self.truncated_tail_bytes)
            with open(path, "r+b") as handle:
                handle.truncate(valid)
            if self.durable:
                fsync_file(path)
            self.pool.invalidate(self._token(self.active_id))

    @property
    def segment_ids(self) -> list[int]:
        return list(self._segment_ids)

    # -- writes -------------------------------------------------------

    def append(self, kind: int, key: bytes,
               payload: bytes) -> RecordLocation:
        """Append one record to the active segment; returns its
        location.  Rolls to a fresh segment past ``roll_bytes``."""
        if self._active_size >= self.roll_bytes:
            self._roll()
        record = pack_record(kind, key, payload)
        path = self._path(self.active_id)
        with open(path, "ab") as handle:
            offset = handle.tell()
            handle.write(record)
            handle.flush()
            if self.durable:
                os.fsync(handle.fileno())
        self._active_size = offset + len(record)
        self.appended_records += 1
        self.appended_bytes += len(record)
        self.pool.invalidate(self._token(self.active_id))
        return RecordLocation(self.active_id, offset, len(record))

    def _roll(self) -> None:
        """Seal the active segment and open the next one.

        The sealed bytes are re-published through ``<name>.tmp`` +
        atomic ``os.replace`` so the durable rename is the publication
        point, then the next active segment is created.
        """
        path = self._path(self.active_id)
        tmp = path + ".tmp"
        with open(path, "rb") as handle:
            data = handle.read()
        with open(tmp, "wb") as handle:
            handle.write(data)
            handle.flush()
            os.fsync(handle.fileno())
        os.replace(tmp, path)
        fsync_dir(self.directory)
        next_id = self.active_id + 1
        self._create_segment(next_id)
        self._segment_ids.append(next_id)
        self.active_id = next_id
        self._active_size = 0

    # -- reads --------------------------------------------------------

    def read(self, location: RecordLocation
             ) -> Optional[tuple[int, bytes, bytes]]:
        """The ``(kind, key, payload)`` at ``location`` (pool-cached),
        or ``None`` when the bytes are missing/torn."""
        raw = self.pool.read(self._token(location.segment_id),
                             self._path(location.segment_id),
                             location.offset, location.length)
        if raw is None:
            return None
        records, _ = scan_records(raw)
        if not records:
            return None
        kind, key, payload, _ = records[0]
        return kind, key, payload

    def scan(self) -> Iterator[tuple[int, bytes, bytes,
                                     RecordLocation]]:
        """Every valid record across all segments, in append order."""
        for segment_id in self._segment_ids:
            yield from self.scan_segment(segment_id)

    def scan_segment(self, segment_id: int, start_offset: int = 0
                     ) -> Iterator[tuple[int, bytes, bytes,
                                         RecordLocation]]:
        """Valid records of one segment from ``start_offset`` onward."""
        path = self._path(segment_id)
        try:
            with open(path, "rb") as handle:
                handle.seek(start_offset)
                buf = handle.read()
        except OSError:
            return
        records, _ = scan_records(buf)
        for kind, key, payload, offset in records:
            length = len(pack_record(kind, key, payload))
            yield kind, key, payload, RecordLocation(
                segment_id, start_offset + offset, length)

    def end_position(self) -> tuple[int, int]:
        """``(active segment id, its byte length)`` — the log frontier."""
        return self.active_id, self._active_size

    def total_bytes(self) -> int:
        return sum(os.path.getsize(self._path(segment_id))
                   for segment_id in self._segment_ids
                   if os.path.exists(self._path(segment_id)))
