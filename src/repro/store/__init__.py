"""Persistent area store: crash-safe segments, paged index, blocks.

See :mod:`repro.store.store` for the facade and the on-disk layout,
and ``docs/architecture.md`` for the recovery protocol and the
shard-key story (canonical table-set partitions as shard keys).
"""

from .blocks import BlockStore
from .codec import (CodecError, KIND_AREA, KIND_JOURNAL, KIND_META,
                    block_key, decode_area, encode_area,
                    encode_fingerprint, fingerprint_digest,
                    iter_records, pack_record, scan_records)
from .index import FingerprintIndex
from .pager import BufferPool, PoolStats
from .segments import RecordLocation, SegmentLog
from .store import AreaStore, open_store

__all__ = [
    "AreaStore", "open_store",
    "BlockStore", "BufferPool", "PoolStats",
    "FingerprintIndex", "SegmentLog", "RecordLocation",
    "CodecError", "KIND_AREA", "KIND_JOURNAL", "KIND_META",
    "block_key", "decode_area", "encode_area", "encode_fingerprint",
    "fingerprint_digest", "iter_records", "pack_record",
    "scan_records",
]
