"""Persistent fingerprint → record-location index.

Ordered-segment style (the ``mini_db`` snippet's index idiom, flattened
from a B+-tree to its leaf level): a **snapshot** file of fixed-width
entries sorted by digest, binary-searched page-by-page through the
shared :class:`~repro.store.pager.BufferPool`, plus an in-memory
**delta** dict of entries appended since the last checkpoint.

Entry layout (48 bytes)::

    digest      32 bytes    SHA-256 fingerprint digest (sort key)
    segment_id   4 bytes    u32 little-endian
    offset       8 bytes    u64 little-endian
    length       4 bytes    u32 little-endian

Snapshots are published via tmp-write + atomic ``os.replace`` with a
sidecar watermark recording how far into the segment log the snapshot
covers, so the recovery invariant is **index ⊆ segments**: on open,
any segment records past the watermark are re-scanned and folded into
the delta — an index entry can never point at bytes a crash threw
away, and bytes the crash kept are always re-indexed.
"""

from __future__ import annotations

import json
import os
import struct
from typing import Iterator, Optional

from .pager import BufferPool, fsync_dir
from .segments import RecordLocation

_ENTRY = struct.Struct("<32sIQI")
ENTRY_SIZE = _ENTRY.size

SNAPSHOT_NAME = "index.snap"
WATERMARK_NAME = "index.meta.json"


class FingerprintIndex:
    """Digest → :class:`RecordLocation` map with a paged on-disk run."""

    def __init__(self, directory: str, pool: BufferPool) -> None:
        self.directory = directory
        self.pool = pool
        os.makedirs(directory, exist_ok=True)
        self._delta: dict[bytes, RecordLocation] = {}
        self._snapshot_path = os.path.join(directory, SNAPSHOT_NAME)
        self._watermark_path = os.path.join(directory, WATERMARK_NAME)
        self._generation = 0
        self._snapshot_count = 0
        self._load_snapshot_meta()

    # -- snapshot bookkeeping -----------------------------------------

    def _snapshot_token(self) -> str:
        # Generation-stamped: os.replace swaps content under the same
        # path, so the pool must key on (path, generation).
        return f"{self._snapshot_path}:{self._generation}"

    def _load_snapshot_meta(self) -> None:
        try:
            with open(self._watermark_path, "r", encoding="utf-8") as fh:
                meta = json.load(fh)
        except (OSError, ValueError):
            meta = {}
        self._generation = int(meta.get("generation", 0))
        self.watermark = (int(meta.get("segment_id", 0)),
                          int(meta.get("end_offset", 0)))
        try:
            size = os.path.getsize(self._snapshot_path)
        except OSError:
            size = 0
        self._snapshot_count = size // ENTRY_SIZE

    # -- lookups ------------------------------------------------------

    def __len__(self) -> int:
        # Delta may shadow snapshot entries (re-append after reopen);
        # subtract the overlap so len() is the unique-digest count.
        if not self._delta or not self._snapshot_count:
            return self._snapshot_count + len(self._delta)
        shadowed = sum(1 for digest in self._delta
                       if self._search_snapshot(digest) is not None)
        return self._snapshot_count + len(self._delta) - shadowed

    def __contains__(self, digest: bytes) -> bool:
        return self.get(digest) is not None

    def get(self, digest: bytes) -> Optional[RecordLocation]:
        hit = self._delta.get(digest)
        if hit is not None:
            return hit
        return self._search_snapshot(digest)

    def _entry_at(self, position: int) -> Optional[tuple]:
        raw = self.pool.read(self._snapshot_token(),
                             self._snapshot_path,
                             position * ENTRY_SIZE, ENTRY_SIZE)
        if raw is None or len(raw) < ENTRY_SIZE:
            return None
        return _ENTRY.unpack(raw)

    def _search_snapshot(self, digest: bytes
                         ) -> Optional[RecordLocation]:
        lo, hi = 0, self._snapshot_count
        while lo < hi:
            mid = (lo + hi) // 2
            entry = self._entry_at(mid)
            if entry is None:
                return None
            if entry[0] < digest:
                lo = mid + 1
            elif entry[0] > digest:
                hi = mid
            else:
                return RecordLocation(entry[1], entry[2], entry[3])
        return None

    def put(self, digest: bytes, location: RecordLocation) -> None:
        self._delta[digest] = location

    @property
    def dirty(self) -> int:
        """Entries not yet captured by a snapshot."""
        return len(self._delta)

    # -- checkpoint ---------------------------------------------------

    def checkpoint(self, watermark: tuple[int, int]) -> None:
        """Merge the delta into a fresh sorted snapshot and publish it.

        ``watermark`` is ``(segment_id, end_offset)``: the log position
        every entry in this snapshot is guaranteed to be at-or-before.
        Written to a tmp file, fsynced, then ``os.replace``d — a crash
        at any point leaves either the old snapshot or the new one,
        never a mix.
        """
        merged: dict[bytes, RecordLocation] = {}
        for entry in self._iter_snapshot_entries():
            merged[entry[0]] = RecordLocation(entry[1], entry[2],
                                              entry[3])
        merged.update(self._delta)
        tmp = self._snapshot_path + ".tmp"
        with open(tmp, "wb") as fh:
            for digest in sorted(merged):
                loc = merged[digest]
                fh.write(_ENTRY.pack(digest, loc.segment_id,
                                     loc.offset, loc.length))
            fh.flush()
            os.fsync(fh.fileno())
        os.replace(tmp, self._snapshot_path)
        # Publish the watermark only after the snapshot it describes.
        next_generation = self._generation + 1
        meta = {"generation": next_generation,
                "segment_id": watermark[0],
                "end_offset": watermark[1],
                "entries": len(merged)}
        meta_tmp = self._watermark_path + ".tmp"
        with open(meta_tmp, "w", encoding="utf-8") as fh:
            json.dump(meta, fh)
            fh.flush()
            os.fsync(fh.fileno())
        os.replace(meta_tmp, self._watermark_path)
        fsync_dir(self.directory)
        self.pool.invalidate(self._snapshot_token())
        self._generation = next_generation
        self._snapshot_count = len(merged)
        self.watermark = watermark
        self._delta.clear()

    def _iter_snapshot_entries(self) -> Iterator[tuple]:
        for position in range(self._snapshot_count):
            entry = self._entry_at(position)
            if entry is None:  # pragma: no cover - snapshot vanished
                return
            yield entry

    def iter_digests(self) -> Iterator[bytes]:
        """Every indexed digest (snapshot order, then fresh deltas)."""
        seen = set()
        for entry in self._iter_snapshot_entries():
            seen.add(entry[0])
            yield entry[0]
        for digest in self._delta:
            if digest not in seen:
                yield digest
