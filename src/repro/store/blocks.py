"""mmap-able condensed distance blocks, one file per partition.

Each partition of the block-sparse matrix owns one file,
``blocks/<content-key>.blk``::

    RPBK header (magic, version, count u64, crc32 of data)
    raw little-endian float64 condensed distances (count values)

The name is a **content key** (:func:`repro.store.codec.block_key`):
a hash of the partition's table set, its ordered member fingerprint
digests, and the metric token.  Any drift in partition population or
metric parameters changes the key and misses the cache — stale
distances are unreachable by construction, so no invalidation
protocol is needed.

Files are published via tmp-write + fsync + atomic ``os.replace``.
Loads go through :func:`numpy.memmap`, so a reload maps the float
payload without copying; the CRC in the header is verified on first
load (cheap relative to the distance computation it replaces) and the
result is returned as a read-only array view.
"""

from __future__ import annotations

import os
import re
import zlib
from typing import Optional

import numpy as np

from .codec import (BLOCK_HEADER_SIZE, CodecError, pack_block_header,
                    unpack_block_header)
from .pager import fsync_dir

_KEY_RE = re.compile(r"^[0-9a-f]{64}$")


class BlockStore:
    """Condensed-block cache keyed by partition content hash."""

    def __init__(self, directory: str) -> None:
        self.directory = directory
        os.makedirs(directory, exist_ok=True)
        self.saves = 0
        self.loads = 0
        self.load_misses = 0

    def _path(self, key: str) -> str:
        if not _KEY_RE.match(key):
            raise CodecError(f"malformed block key {key!r}")
        return os.path.join(self.directory, f"{key}.blk")

    def contains(self, key: str) -> bool:
        return os.path.exists(self._path(key))

    def save(self, key: str, condensed: np.ndarray) -> None:
        """Publish one condensed block atomically (idempotent)."""
        data = np.ascontiguousarray(condensed,
                                    dtype="<f8").tobytes()
        crc = zlib.crc32(data) & 0xFFFFFFFF
        path = self._path(key)
        tmp = path + ".tmp"
        with open(tmp, "wb") as fh:
            fh.write(pack_block_header(condensed.size, crc))
            fh.write(data)
            fh.flush()
            os.fsync(fh.fileno())
        os.replace(tmp, path)
        fsync_dir(self.directory)
        self.saves += 1

    def load(self, key: str, *, verify: bool = True
             ) -> Optional[np.ndarray]:
        """The condensed block for ``key`` as a read-only memmap view,
        or ``None`` when absent/corrupt (caller recomputes)."""
        path = self._path(key)
        try:
            with open(path, "rb") as fh:
                header = fh.read(BLOCK_HEADER_SIZE)
            count, crc = unpack_block_header(header)
            expected = BLOCK_HEADER_SIZE + 8 * count
            if os.path.getsize(path) < expected:
                raise CodecError("block file shorter than its header")
            values = np.memmap(path, dtype="<f8", mode="r",
                               offset=BLOCK_HEADER_SIZE, shape=(count,))
            if verify and zlib.crc32(values.tobytes()) \
                    & 0xFFFFFFFF != crc:
                raise CodecError("block data CRC mismatch")
        except (OSError, CodecError):
            self.load_misses += 1
            return None
        self.loads += 1
        view = values.view()
        view.flags.writeable = False
        return view

    def total_bytes(self) -> int:
        total = 0
        for name in os.listdir(self.directory):
            if name.endswith(".blk"):
                try:
                    total += os.path.getsize(
                        os.path.join(self.directory, name))
                except OSError:
                    continue
        return total

    def count(self) -> int:
        return sum(1 for name in os.listdir(self.directory)
                   if name.endswith(".blk"))
