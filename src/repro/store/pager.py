"""Page-granular buffer pool over the store's read path.

Every random read of a segment or index file goes through one
:class:`BufferPool` — the ``mini_db`` idiom (page cache shared across
statements, ``\\bpstat``-style observability) adapted to the area
store.  Pages are fixed-size byte slices keyed by ``(file token,
page number)`` with LRU replacement; the pool never writes (the store's
write path is append-only + atomic replace, so cached pages of
immutable published bytes can never go stale — the one mutable file,
the active segment, is invalidated explicitly on append).

Stats are cumulative over the pool's lifetime and fold into the
metrics registry **delta-based** (see :meth:`BufferPool.record`): a
resident service can re-record every scrape without double-counting.
"""

from __future__ import annotations

import os
from collections import OrderedDict
from dataclasses import dataclass
from typing import Optional

DEFAULT_PAGE_SIZE = 4096
DEFAULT_CAPACITY = 256


@dataclass
class PoolStats:
    """Cumulative buffer-pool counters (``\\bpstat`` equivalent)."""

    hits: int = 0
    misses: int = 0
    evictions: int = 0
    read_bytes: int = 0

    @property
    def probes(self) -> int:
        return self.hits + self.misses

    @property
    def hit_rate(self) -> float:
        if not self.probes:
            return 0.0
        return self.hits / self.probes


class BufferPool:
    """LRU page cache over the store's files.

    ``capacity`` is in pages; resident bytes are therefore bounded by
    ``capacity * page_size`` regardless of how many areas the store
    holds — the eviction backstop the resident service relies on.
    """

    def __init__(self, capacity: int = DEFAULT_CAPACITY,
                 page_size: int = DEFAULT_PAGE_SIZE) -> None:
        if capacity < 1:
            raise ValueError(f"capacity must be >= 1, got {capacity}")
        if page_size < 64:
            raise ValueError(f"page_size must be >= 64, got {page_size}")
        self.capacity = capacity
        self.page_size = page_size
        self._pages: OrderedDict[tuple[str, int], bytes] = OrderedDict()
        self.stats = PoolStats()
        self._recorded: dict[str, float] = {}

    # -- cache --------------------------------------------------------

    def __len__(self) -> int:
        return len(self._pages)

    @property
    def resident_bytes(self) -> int:
        return sum(len(page) for page in self._pages.values())

    def _get_page(self, token: str, path: str, page_no: int
                  ) -> Optional[bytes]:
        key = (token, page_no)
        cached = self._pages.get(key)
        if cached is not None:
            self._pages.move_to_end(key)
            self.stats.hits += 1
            return cached
        self.stats.misses += 1
        try:
            with open(path, "rb") as handle:
                handle.seek(page_no * self.page_size)
                page = handle.read(self.page_size)
        except OSError:
            return None
        self.stats.read_bytes += len(page)
        self._pages[key] = page
        while len(self._pages) > self.capacity:
            self._pages.popitem(last=False)
            self.stats.evictions += 1
        return page

    def read(self, token: str, path: str, offset: int,
             length: int) -> Optional[bytes]:
        """``length`` bytes of ``path`` at ``offset``, page-cached.

        ``token`` identifies the file's *content* (include a
        generation stamp for files that are replaced in place via
        ``os.replace``).  Returns ``None`` when the file is shorter
        than requested — the caller treats that as a missing record.
        """
        if length <= 0:
            return b""
        first = offset // self.page_size
        last = (offset + length - 1) // self.page_size
        chunks: list[bytes] = []
        for page_no in range(first, last + 1):
            page = self._get_page(token, path, page_no)
            if page is None:
                return None
            chunks.append(page)
        blob = b"".join(chunks)
        start = offset - first * self.page_size
        if start + length > len(blob):
            return None
        return blob[start:start + length]

    def invalidate(self, token: str) -> None:
        """Drop every cached page of ``token`` (active-segment append)."""
        stale = [key for key in self._pages if key[0] == token]
        for key in stale:
            del self._pages[key]

    def clear(self) -> None:
        self._pages.clear()

    # -- observability ------------------------------------------------

    def record(self, registry) -> None:
        """Fold pool counters into a registry (``repro_store_pool_*``).

        Delta-based: only the movement since the previous call is added
        to each counter, so a resident process may call this on every
        scrape (the ``repro serve`` lifecycle) without double-counting.
        """
        from ..obs.metrics import record_counter_deltas
        record_counter_deltas(registry, self._recorded, (
            ("repro_store_pool_hits_total", self.stats.hits),
            ("repro_store_pool_misses_total", self.stats.misses),
            ("repro_store_pool_evictions_total", self.stats.evictions),
            ("repro_store_pool_read_bytes_total",
             self.stats.read_bytes)))
        registry.gauge("repro_store_pool_pages").set(len(self._pages))
        registry.gauge("repro_store_pool_capacity").set(self.capacity)
        registry.gauge("repro_store_pool_hit_rate").set(
            self.stats.hit_rate)


def fsync_file(path: str) -> None:
    """Durably flush ``path`` (best-effort on filesystems without it)."""
    fd = os.open(path, os.O_RDONLY)
    try:
        os.fsync(fd)
    finally:
        os.close(fd)


def fsync_dir(path: str) -> None:
    """Durably flush directory metadata after an ``os.replace``."""
    try:
        fd = os.open(path, os.O_RDONLY)
    except OSError:  # pragma: no cover - platform-specific
        return
    try:
        os.fsync(fd)
    except OSError:  # pragma: no cover - not all fs support dir fsync
        pass
    finally:
        os.close(fd)
