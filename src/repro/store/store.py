"""The :class:`AreaStore` facade — everything under one ``--store-dir``.

Layout::

    <store_dir>/
        segments/seg-NNNNNN.log     append-only records (areas, journal)
        index/index.snap            sorted digest → location run
        index/index.meta.json       snapshot watermark + generation
        blocks/<key>.blk            mmap-able condensed distance blocks
        meta/<name>.json            atomic JSON documents (manifests)

One :class:`~repro.store.pager.BufferPool` fronts every random read
(segment record fetches, index binary-search probes) and its hit-rate
stats flow to the registry under ``repro_store_pool_*``; the facade
adds the ``repro_store_*`` families for segments, index, blocks and
the journal.  All recording is delta-based — safe to call every scrape
from a resident process.

Crash story: segment appends are framed + CRC'd (torn tail truncated
on open); the index snapshot carries a log watermark and open() folds
any segment records past it back into the index (invariant:
index ⊆ segments); blocks and meta documents are tmp + ``os.replace``
published.  Opening after ``kill -9`` at any instant therefore yields
exactly the prefix of successfully appended records.
"""

from __future__ import annotations

import json
import os
from typing import Iterator, Optional

from ..obs import get_logger
from .blocks import BlockStore
from .codec import (KIND_AREA, KIND_JOURNAL, decode_area, encode_area,
                    fingerprint_digest)
from .index import FingerprintIndex
from .pager import (BufferPool, DEFAULT_CAPACITY, DEFAULT_PAGE_SIZE,
                    fsync_dir)
from .segments import DEFAULT_ROLL_BYTES, SegmentLog

logger = get_logger(__name__)

#: index deltas tolerated before an automatic checkpoint
CHECKPOINT_EVERY = 1024


class AreaStore:
    """Persistent home of interned areas, the ingest journal, and
    condensed distance blocks."""

    def __init__(self, store_dir: str, *,
                 pool_pages: int = DEFAULT_CAPACITY,
                 page_size: int = DEFAULT_PAGE_SIZE,
                 roll_bytes: int = DEFAULT_ROLL_BYTES,
                 durable: bool = False) -> None:
        self.store_dir = store_dir
        os.makedirs(store_dir, exist_ok=True)
        self.pool = BufferPool(pool_pages, page_size)
        self.segments = SegmentLog(
            os.path.join(store_dir, "segments"), self.pool,
            roll_bytes=roll_bytes, durable=durable)
        self.index = FingerprintIndex(
            os.path.join(store_dir, "index"), self.pool)
        self.blocks = BlockStore(os.path.join(store_dir, "blocks"))
        self._meta_dir = os.path.join(store_dir, "meta")
        os.makedirs(self._meta_dir, exist_ok=True)
        self._recorded: dict[str, float] = {}
        self._journal_appends = 0
        self._area_appends = 0
        self._area_hits = 0
        self._recover_index()

    # -- recovery -----------------------------------------------------

    def _recover_index(self) -> None:
        """Re-index segment records past the snapshot watermark.

        The snapshot only ever describes published log bytes, so the
        only possible gap after a crash is *missing* entries for
        records appended since the last checkpoint — never dangling
        entries.  Folding the post-watermark suffix into the delta
        restores index ⊆ segments = equality.
        """
        mark_segment, mark_offset = self.index.watermark
        reindexed = 0
        for segment_id in self.segments.segment_ids:
            if segment_id < mark_segment:
                continue
            start = mark_offset if segment_id == mark_segment else 0
            for kind, key, _payload, location in \
                    self.segments.scan_segment(segment_id, start):
                if kind == KIND_AREA and key not in self.index:
                    self.index.put(key, location)
                    reindexed += 1
        if reindexed:
            logger.info("store %s: re-indexed %d area record(s) past "
                        "the snapshot watermark", self.store_dir,
                        reindexed)

    # -- areas --------------------------------------------------------

    def __len__(self) -> int:
        return len(self.index)

    def __contains__(self, digest: bytes) -> bool:
        return digest in self.index

    def append_area(self, area) -> bytes:
        """Persist ``area`` (idempotent by fingerprint digest) and
        return its 32-byte digest key."""
        digest = fingerprint_digest(area)
        if digest in self.index:
            self._area_hits += 1
            return digest
        location = self.segments.append(KIND_AREA, digest,
                                        encode_area(area))
        self.index.put(digest, location)
        self._area_appends += 1
        if self.index.dirty >= CHECKPOINT_EVERY:
            self.checkpoint()
        return digest

    def get_area(self, digest: bytes):
        """The stored area for ``digest``, or ``None``."""
        location = self.index.get(digest)
        if location is None:
            return None
        record = self.segments.read(location)
        if record is None:  # pragma: no cover - index ⊆ segments
            return None
        _kind, _key, payload = record
        return decode_area(payload)

    def iter_areas(self) -> Iterator[tuple[bytes, object]]:
        """``(digest, area)`` pairs in first-appended order."""
        seen = set()
        for kind, key, payload, _location in self.segments.scan():
            if kind != KIND_AREA or key in seen:
                continue
            seen.add(key)
            yield key, decode_area(payload)

    # -- journal ------------------------------------------------------

    def append_journal(self, entry: dict) -> None:
        """Append one ingest-journal entry (JSON-serializable)."""
        payload = json.dumps(entry, sort_keys=True,
                             separators=(",", ":")).encode("utf-8")
        self.segments.append(KIND_JOURNAL, b"", payload)
        self._journal_appends += 1

    def iter_journal(self) -> Iterator[dict]:
        """Every journal entry across all segments, in append order."""
        for kind, _key, payload, _location in self.segments.scan():
            if kind != KIND_JOURNAL:
                continue
            try:
                yield json.loads(payload.decode("utf-8"))
            except ValueError:  # pragma: no cover - CRC already passed
                continue

    @property
    def journal_length(self) -> int:
        return sum(1 for _ in self.iter_journal())

    # -- meta documents -----------------------------------------------

    def save_meta(self, name: str, document: dict) -> None:
        """Atomically publish one JSON document under ``meta/``."""
        path = os.path.join(self._meta_dir, f"{name}.json")
        tmp = path + ".tmp"
        with open(tmp, "w", encoding="utf-8") as fh:
            json.dump(document, fh, sort_keys=True)
            fh.flush()
            os.fsync(fh.fileno())
        os.replace(tmp, path)
        fsync_dir(self._meta_dir)

    def load_meta(self, name: str) -> Optional[dict]:
        path = os.path.join(self._meta_dir, f"{name}.json")
        try:
            with open(path, "r", encoding="utf-8") as fh:
                return json.load(fh)
        except (OSError, ValueError):
            return None

    # -- lifecycle ----------------------------------------------------

    def checkpoint(self) -> None:
        """Publish an index snapshot covering the current log frontier."""
        self.index.checkpoint(self.segments.end_position())

    def close(self) -> None:
        if self.index.dirty:
            self.checkpoint()
        self.pool.clear()

    def __enter__(self) -> "AreaStore":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    # -- observability ------------------------------------------------

    def record(self, registry) -> None:
        """Fold store stats into ``registry`` (``repro_store_*``).

        Delta-based for counters; gauges are set to current values.
        """
        if registry is None:
            return
        from ..obs.metrics import record_counter_deltas
        record_counter_deltas(registry, self._recorded, (
            ("repro_store_area_appends_total", self._area_appends),
            ("repro_store_area_rehits_total", self._area_hits),
            ("repro_store_journal_appends_total",
             self._journal_appends),
            ("repro_store_segment_appended_bytes_total",
             self.segments.appended_bytes),
            ("repro_store_block_saves_total", self.blocks.saves),
            ("repro_store_block_loads_total", self.blocks.loads),
            ("repro_store_block_load_misses_total",
             self.blocks.load_misses),
            ("repro_store_recovered_tail_bytes_total",
             self.segments.truncated_tail_bytes)))
        registry.gauge("repro_store_segments").set(
            len(self.segments.segment_ids))
        registry.gauge("repro_store_segment_bytes").set(
            self.segments.total_bytes())
        registry.gauge("repro_store_index_entries").set(len(self.index))
        registry.gauge("repro_store_index_dirty").set(self.index.dirty)
        registry.gauge("repro_store_blocks").set(self.blocks.count())
        registry.gauge("repro_store_block_bytes").set(
            self.blocks.total_bytes())
        self.pool.record(registry)


def open_store(store_dir: Optional[str], **kwargs
               ) -> Optional[AreaStore]:
    """``AreaStore(store_dir)`` when a directory is configured, else
    ``None`` — the one-liner call sites use to stay store-optional."""
    if not store_dir:
        return None
    return AreaStore(store_dir, **kwargs)
