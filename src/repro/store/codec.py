"""Serialization and record framing for the persistent area store.

Three concerns live here, shared by every store file format:

* **Fingerprint digests.**  The canonical :class:`~repro.core.area.
  AccessArea` fingerprint is a nested tuple of primitives (strings,
  type-tagged constants) — exactly the order-insensitive identity the
  intern pool keys by.  :func:`fingerprint_digest` encodes it through a
  deterministic, type-tagged byte encoder (NOT pickle, whose output may
  vary across protocol/interpreter details) and hashes it with SHA-256.
  Equal areas — regardless of clause order or literal spelling — map to
  one 32-byte key, which doubles as the segment-log and index key.

* **Payload encoding.**  Areas are pickled (they already travel through
  ``multiprocessing`` pickling for the parallel distance fan-out, so
  the full algebra object graph round-trips); condensed distance
  blocks are raw little-endian float64 — the layout :mod:`numpy` can
  ``memmap`` straight from disk.

* **Record framing.**  Every append-only file is a sequence of
  self-delimiting records::

      magic u16 | kind u8 | key_len u16 | payload_len u32 | crc32 u32
      key bytes | payload bytes

  The CRC covers kind+key+payload, so a torn tail (a writer killed
  mid-append) is detected as either a short header/body or a CRC
  mismatch; :func:`scan_records` stops at the first invalid record and
  reports the byte length of the valid prefix — the truncation point of
  crash recovery.
"""

from __future__ import annotations

import io
import pickle
import struct
import zlib
from hashlib import sha256
from typing import Iterator, Optional

RECORD_MAGIC = 0xA5D1
_HEADER = struct.Struct("<HBHII")

#: record kinds
KIND_AREA = 1
KIND_JOURNAL = 2
KIND_META = 3

#: pickle protocol pinned for stable on-disk bytes across sessions
PICKLE_PROTOCOL = 4


class CodecError(ValueError):
    """A payload failed to encode or decode."""


# -- canonical fingerprint encoding -----------------------------------------

def _encode_canonical(value, out: io.BytesIO) -> None:
    """Type-tagged deterministic encoding of a fingerprint component.

    Only the types that actually occur in canonical fingerprints are
    accepted (tuples, strings, bools, ints, floats, None); anything
    else is a hard error rather than a silently unstable key.
    """
    if isinstance(value, tuple):
        out.write(b"T")
        out.write(struct.pack("<I", len(value)))
        for item in value:
            _encode_canonical(item, out)
    elif isinstance(value, bool):
        # before int: bool is an int subclass
        out.write(b"B1" if value else b"B0")
    elif isinstance(value, str):
        raw = value.encode("utf-8")
        out.write(b"S")
        out.write(struct.pack("<I", len(raw)))
        out.write(raw)
    elif isinstance(value, int):
        raw = str(value).encode("ascii")
        out.write(b"I")
        out.write(struct.pack("<I", len(raw)))
        out.write(raw)
    elif isinstance(value, float):
        # repr round-trips float64 exactly and is stable across runs
        raw = repr(value).encode("ascii")
        out.write(b"F")
        out.write(struct.pack("<I", len(raw)))
        out.write(raw)
    elif value is None:
        out.write(b"N")
    else:
        raise CodecError(
            f"fingerprint component {value!r} of type "
            f"{type(value).__name__} has no canonical encoding")


def encode_fingerprint(fingerprint: tuple) -> bytes:
    """Deterministic byte encoding of a canonical fingerprint tuple."""
    out = io.BytesIO()
    _encode_canonical(fingerprint, out)
    return out.getvalue()


def fingerprint_digest(area_or_fingerprint) -> bytes:
    """32-byte SHA-256 key of an area (or raw fingerprint tuple)."""
    fingerprint = getattr(area_or_fingerprint, "fingerprint",
                          area_or_fingerprint)
    return sha256(encode_fingerprint(fingerprint)).digest()


# -- area payloads ----------------------------------------------------------

def encode_area(area) -> bytes:
    """Serialize one :class:`~repro.core.area.AccessArea`."""
    return pickle.dumps(area, protocol=PICKLE_PROTOCOL)


def decode_area(payload: bytes):
    """Inverse of :func:`encode_area`."""
    try:
        return pickle.loads(payload)
    except Exception as exc:  # corrupt payload despite a valid CRC
        raise CodecError(f"cannot decode area payload: {exc}") from exc


# -- record framing ---------------------------------------------------------

def pack_record(kind: int, key: bytes, payload: bytes) -> bytes:
    """One framed record (header + key + payload)."""
    if not 0 <= kind <= 0xFF:
        raise CodecError(f"record kind {kind} out of range")
    if len(key) > 0xFFFF:
        raise CodecError(f"record key of {len(key)} bytes is too long")
    crc = zlib.crc32(bytes((kind,)) + key + payload) & 0xFFFFFFFF
    header = _HEADER.pack(RECORD_MAGIC, kind, len(key), len(payload),
                          crc)
    return header + key + payload


def scan_records(buf: bytes) -> tuple[list[tuple[int, bytes, bytes,
                                                 int]], int]:
    """Parse ``buf`` into records, stopping at the first torn one.

    Returns ``(records, valid_length)`` where each record is
    ``(kind, key, payload, offset)`` and ``valid_length`` is the byte
    length of the longest valid record prefix — the crash-recovery
    truncation point.  A partial header, short body, wrong magic, or
    CRC mismatch all end the scan (they are what a killed writer
    leaves behind); data before the tear is always served.
    """
    records: list[tuple[int, bytes, bytes, int]] = []
    pos = 0
    total = len(buf)
    while pos + _HEADER.size <= total:
        magic, kind, key_len, payload_len, crc = _HEADER.unpack_from(
            buf, pos)
        if magic != RECORD_MAGIC:
            break
        body_end = pos + _HEADER.size + key_len + payload_len
        if body_end > total:
            break
        key = buf[pos + _HEADER.size:pos + _HEADER.size + key_len]
        payload = buf[pos + _HEADER.size + key_len:body_end]
        if zlib.crc32(bytes((kind,)) + key + payload) \
                & 0xFFFFFFFF != crc:
            break
        records.append((kind, key, payload, pos))
        pos = body_end
    return records, pos


def iter_records(buf: bytes) -> Iterator[tuple[int, bytes, bytes, int]]:
    """The valid record prefix of ``buf`` (see :func:`scan_records`)."""
    records, _ = scan_records(buf)
    return iter(records)


# -- condensed block payloads ----------------------------------------------

BLOCK_MAGIC = b"RPBK"
BLOCK_VERSION = 1
_BLOCK_HEADER = struct.Struct("<4sHHQI")  # magic, version, pad, count, crc


def pack_block_header(count: int, data_crc: int) -> bytes:
    return _BLOCK_HEADER.pack(BLOCK_MAGIC, BLOCK_VERSION, 0, count,
                              data_crc & 0xFFFFFFFF)


def unpack_block_header(raw: bytes) -> tuple[int, int]:
    """``(count, data_crc)`` of a block file header, validating magic
    and version."""
    if len(raw) < _BLOCK_HEADER.size:
        raise CodecError("block header truncated")
    magic, version, _, count, crc = _BLOCK_HEADER.unpack_from(raw)
    if magic != BLOCK_MAGIC:
        raise CodecError(f"bad block magic {magic!r}")
    if version != BLOCK_VERSION:
        raise CodecError(f"unsupported block version {version}")
    return count, crc


BLOCK_HEADER_SIZE = _BLOCK_HEADER.size


def block_key(partition_key, member_digests: list[bytes],
              token: Optional[str] = None) -> str:
    """Content key of one partition's condensed block.

    Hashes the canonical partition key (sorted table names), the
    *ordered* member fingerprint digests (condensed layout depends on
    order), and the caller's metric ``token`` (anything that changes
    distance values — resolution, statistics provenance).  Any drift in
    population or metric therefore misses the cache instead of serving
    stale distances.
    """
    h = sha256()
    for name in sorted(partition_key):
        h.update(b"k")
        h.update(str(name).encode("utf-8"))
    for digest in member_digests:
        h.update(b"m")
        h.update(digest)
    if token:
        h.update(b"t")
        h.update(token.encode("utf-8"))
    return h.hexdigest()
