"""A minimal ASGI 3 micro-framework (the service's stdlib fallback).

The container image ships no FastAPI/Starlette, so the service layer
carries its own dependency-free routing core: an :class:`App` is a
plain ASGI callable — ``await app(scope, receive, send)`` — that any
compliant server (uvicorn, hypercorn, the in-repo
:mod:`~repro.service.server`) can host, plus the few pieces six
endpoints actually need:

* :class:`Request` — lazily parsed query string, headers, JSON body;
* :class:`Response` / :class:`JSONResponse` — status, headers, body;
* ``{param}`` path templates matched segment-wise;
* :class:`HTTPError` — raise anywhere in a handler to return a JSON
  error envelope (``404``/``405`` fall out of routing the same way).

Handlers are ``async def handler(request) -> Response | dict``; a bare
dict is wrapped in a 200 :class:`JSONResponse`.  The app never leaks
exceptions to the server: unexpected failures become a 500 envelope
and a logged traceback, so one poisoned request cannot take the
resident pipeline down with it.
"""

from __future__ import annotations

import json
import re
import time
from typing import Awaitable, Callable, Iterable, Optional
from urllib.parse import parse_qsl, unquote

from ..obs import get_logger

logger = get_logger(__name__)

_PARAM = re.compile(r"^\{([a-zA-Z_][a-zA-Z0-9_]*)\}$")


class HTTPError(Exception):
    """Raise inside a handler to produce a JSON error response."""

    def __init__(self, status: int, detail: str) -> None:
        super().__init__(detail)
        self.status = status
        self.detail = detail


class Request:
    """One HTTP request, parsed on demand."""

    def __init__(self, scope: dict, body: bytes) -> None:
        self.scope = scope
        self.method: str = scope.get("method", "GET").upper()
        self.path: str = scope.get("path", "/")
        self.path_params: dict[str, str] = {}
        self._body = body
        self._query: Optional[dict[str, str]] = None

    @property
    def query(self) -> dict[str, str]:
        """Query parameters (last occurrence wins)."""
        if self._query is None:
            raw = self.scope.get("query_string", b"")
            if isinstance(raw, bytes):
                raw = raw.decode("latin-1")
            self._query = dict(parse_qsl(raw, keep_blank_values=True))
        return self._query

    @property
    def body(self) -> bytes:
        return self._body

    def json(self) -> dict:
        """The request body as a JSON object (400 on anything else)."""
        if not self._body:
            raise HTTPError(400, "request body must be a JSON object")
        try:
            data = json.loads(self._body.decode("utf-8"))
        except (UnicodeDecodeError, json.JSONDecodeError) as exc:
            raise HTTPError(400, f"invalid JSON body: {exc}") from exc
        if not isinstance(data, dict):
            raise HTTPError(400, "request body must be a JSON object")
        return data


class Response:
    """Status + headers + body, ready for the ASGI send channel."""

    def __init__(self, body: bytes | str = b"", status: int = 200,
                 content_type: str = "text/plain; charset=utf-8",
                 headers: Optional[Iterable[tuple[str, str]]] = None
                 ) -> None:
        if isinstance(body, str):
            body = body.encode("utf-8")
        self.body = body
        self.status = status
        self.headers: list[tuple[str, str]] = [
            ("content-type", content_type),
            ("content-length", str(len(body))),
        ]
        if headers:
            self.headers.extend(headers)

    async def send(self, send: Callable[[dict], Awaitable[None]]) -> None:
        await send({
            "type": "http.response.start",
            "status": self.status,
            "headers": [(k.encode("latin-1"), v.encode("latin-1"))
                        for k, v in self.headers],
        })
        await send({"type": "http.response.body", "body": self.body})


class JSONResponse(Response):
    def __init__(self, data, status: int = 200) -> None:
        super().__init__(json.dumps(data, sort_keys=True), status,
                         content_type="application/json")


class _Route:
    """One method + path template, matched segment-wise."""

    def __init__(self, method: str, template: str, handler) -> None:
        self.method = method.upper()
        self.template = template
        self.handler = handler
        self.segments = [s for s in template.strip("/").split("/") if s]

    def match(self, path: str) -> Optional[dict[str, str]]:
        parts = [s for s in path.strip("/").split("/") if s]
        if len(parts) != len(self.segments):
            return None
        params: dict[str, str] = {}
        for pattern, part in zip(self.segments, parts):
            named = _PARAM.match(pattern)
            if named:
                params[named.group(1)] = unquote(part)
            elif pattern != part:
                return None
        return params


Handler = Callable[[Request], Awaitable["Response | dict"]]
Observer = Callable[[str, str, int, float], None]


class App:
    """An ASGI 3 application with template routing.

    ``observer(route_template, method, status, seconds)`` is invoked
    after every handled request — the hook the service uses for its
    per-route latency histograms without the framework knowing about
    metrics.
    """

    def __init__(self, observer: Optional[Observer] = None) -> None:
        self._routes: list[_Route] = []
        self.observer = observer

    def route(self, method: str, template: str):
        def register(handler: Handler) -> Handler:
            self._routes.append(_Route(method, template, handler))
            return handler
        return register

    def get(self, template: str):
        return self.route("GET", template)

    def post(self, template: str):
        return self.route("POST", template)

    # -- ASGI ----------------------------------------------------------

    async def __call__(self, scope: dict, receive, send) -> None:
        if scope["type"] == "lifespan":
            await self._lifespan(receive, send)
            return
        if scope["type"] != "http":  # pragma: no cover - ws etc.
            raise RuntimeError(f"unsupported scope {scope['type']!r}")
        started = time.perf_counter()
        body = await self._read_body(receive)
        request = Request(scope, body)
        route, response = await self._dispatch(request)
        await response.send(send)
        if self.observer is not None:
            template = route.template if route else request.path
            self.observer(template, request.method, response.status,
                          time.perf_counter() - started)

    async def _dispatch(self, request: Request
                        ) -> tuple[Optional[_Route], Response]:
        matched_path = False
        for route in self._routes:
            params = route.match(request.path)
            if params is None:
                continue
            matched_path = True
            if route.method != request.method:
                continue
            request.path_params = params
            try:
                result = await route.handler(request)
            except HTTPError as exc:
                return route, JSONResponse({"error": exc.detail},
                                           status=exc.status)
            except Exception:
                logger.exception("handler %s %s failed",
                                 route.method, route.template)
                return route, JSONResponse(
                    {"error": "internal server error"}, status=500)
            if isinstance(result, Response):
                return route, result
            return route, JSONResponse(result)
        if matched_path:
            return None, JSONResponse({"error": "method not allowed"},
                                      status=405)
        return None, JSONResponse({"error": "not found"}, status=404)

    async def _read_body(self, receive) -> bytes:
        chunks: list[bytes] = []
        while True:
            message = await receive()
            if message["type"] == "http.disconnect":
                break
            chunks.append(message.get("body", b""))
            if not message.get("more_body", False):
                break
        return b"".join(chunks)

    async def _lifespan(self, receive, send) -> None:
        while True:
            message = await receive()
            if message["type"] == "lifespan.startup":
                await send({"type": "lifespan.startup.complete"})
            elif message["type"] == "lifespan.shutdown":
                await send({"type": "lifespan.shutdown.complete"})
                return
