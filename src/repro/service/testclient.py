"""An in-process ASGI client for tests and benchmarks.

Drives the application object directly — no socket, no serialization
of the HTTP framing beyond what ASGI itself requires — so service
tests measure the application, and latency benchmarks measure the
request path without kernel networking noise.

Two surfaces:

* the async methods (:meth:`TestClient.arequest` / ``aget`` /
  ``apost``) for use *inside* an event loop — this is how the
  concurrency tests interleave readers with the single writer;
* sync wrappers (:meth:`TestClient.get` / :meth:`TestClient.post`)
  that spin a private loop per call for plain assertions.
"""

from __future__ import annotations

import asyncio
import json as jsonlib
from dataclasses import dataclass, field
from typing import Optional
from urllib.parse import urlencode


@dataclass
class ClientResponse:
    status: int
    headers: dict[str, str]
    body: bytes
    _json: object = field(default=None, repr=False)

    @property
    def text(self) -> str:
        return self.body.decode("utf-8")

    def json(self):
        if self._json is None:
            self._json = jsonlib.loads(self.body.decode("utf-8"))
        return self._json


class TestClient:
    """Call an ASGI app as if over HTTP, without a server."""

    __test__ = False  # "Test" prefix, but not a pytest collectable

    def __init__(self, app) -> None:
        self.app = app

    # -- async surface -------------------------------------------------

    async def arequest(self, method: str, path: str, *,
                       json: Optional[dict] = None,
                       params: Optional[dict] = None,
                       body: bytes = b"") -> ClientResponse:
        if json is not None:
            body = jsonlib.dumps(json).encode("utf-8")
        query = urlencode(params or {})
        scope = {
            "type": "http",
            "asgi": {"version": "3.0"},
            "http_version": "1.1",
            "method": method.upper(),
            "path": path,
            "raw_path": path.encode("latin-1"),
            "query_string": query.encode("latin-1"),
            "headers": [(b"content-length",
                         str(len(body)).encode("latin-1"))],
            "client": ("testclient", 0),
            "server": ("testserver", 80),
            "scheme": "http",
        }
        messages = [{"type": "http.request", "body": body,
                     "more_body": False}]

        async def receive() -> dict:
            if messages:
                return messages.pop(0)
            return {"type": "http.disconnect"}

        collected = {"status": 500, "headers": [], "chunks": []}

        async def send(message: dict) -> None:
            if message["type"] == "http.response.start":
                collected["status"] = message["status"]
                collected["headers"] = message.get("headers", [])
            elif message["type"] == "http.response.body":
                collected["chunks"].append(message.get("body", b""))

        await self.app(scope, receive, send)
        headers = {
            bytes(name).decode("latin-1"): bytes(value).decode("latin-1")
            for name, value in collected["headers"]
        }
        return ClientResponse(collected["status"], headers,
                              b"".join(collected["chunks"]))

    async def aget(self, path: str, *,
                   params: Optional[dict] = None) -> ClientResponse:
        return await self.arequest("GET", path, params=params)

    async def apost(self, path: str, *,
                    json: Optional[dict] = None,
                    body: bytes = b"") -> ClientResponse:
        return await self.arequest("POST", path, json=json, body=body)

    # -- sync wrappers -------------------------------------------------

    def request(self, method: str, path: str, *,
                json: Optional[dict] = None,
                params: Optional[dict] = None,
                body: bytes = b"") -> ClientResponse:
        return asyncio.run(self.arequest(method, path, json=json,
                                         params=params, body=body))

    def get(self, path: str, *,
            params: Optional[dict] = None) -> ClientResponse:
        return self.request("GET", path, params=params)

    def post(self, path: str, *, json: Optional[dict] = None,
             body: bytes = b"") -> ClientResponse:
        return self.request("POST", path, json=json, body=body)
