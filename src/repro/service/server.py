"""A dependency-free ``asyncio`` HTTP/1.1 host for the ASGI app.

The container ships no uvicorn, so ``repro serve`` needs its own way
of putting the application on a socket.  This is a deliberately small
HTTP/1.1 server — request line + headers, ``Content-Length`` bodies,
keep-alive — that bridges each request into one ASGI ``http`` scope.
It is not meant to outperform uvicorn; it is meant to exist on a bare
Python install and to exercise exactly the same application object the
in-process :class:`~repro.service.testclient.TestClient` and any real
ASGI server would.
"""

from __future__ import annotations

import asyncio
from typing import Optional
from urllib.parse import unquote, urlsplit

from ..obs import get_logger

logger = get_logger(__name__)

#: Refuse request bodies above this size (64 MiB) — the service only
#: ever receives single SQL statements.
MAX_BODY = 64 * 1024 * 1024
_MAX_HEADER_LINES = 200


class HTTPServer:
    """Serve one ASGI application over ``asyncio`` streams."""

    def __init__(self, app, host: str = "127.0.0.1",
                 port: int = 0) -> None:
        self.app = app
        self.host = host
        self.port = port
        self._server: Optional[asyncio.AbstractServer] = None

    async def start(self) -> int:
        """Bind and start accepting; returns the actual port."""
        self._server = await asyncio.start_server(
            self._handle_connection, self.host, self.port)
        self.port = self._server.sockets[0].getsockname()[1]
        logger.info("interest service listening on http://%s:%d",
                    self.host, self.port)
        return self.port

    async def serve_forever(self) -> None:
        assert self._server is not None, "call start() first"
        async with self._server:
            await self._server.serve_forever()

    async def stop(self) -> None:
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None

    # -- one connection ------------------------------------------------

    async def _handle_connection(self, reader: asyncio.StreamReader,
                                 writer: asyncio.StreamWriter) -> None:
        try:
            while True:
                keep_alive = await self._handle_request(reader, writer)
                if not keep_alive:
                    break
        except (ConnectionError, asyncio.IncompleteReadError):
            pass  # client went away mid-request
        except Exception:  # pragma: no cover - defensive
            logger.exception("connection handler failed")
        finally:
            writer.close()
            try:
                await writer.wait_closed()
            except ConnectionError:  # pragma: no cover
                pass

    async def _handle_request(self, reader: asyncio.StreamReader,
                              writer: asyncio.StreamWriter) -> bool:
        request_line = await reader.readline()
        if not request_line.strip():
            return False
        try:
            method, target, version = \
                request_line.decode("latin-1").split(" ", 2)
        except ValueError:
            await self._bare_response(writer, 400, b"bad request line")
            return False
        headers: list[tuple[bytes, bytes]] = []
        for _ in range(_MAX_HEADER_LINES):
            line = await reader.readline()
            if line in (b"\r\n", b"\n", b""):
                break
            name, _, value = line.partition(b":")
            headers.append((name.strip().lower(), value.strip()))
        else:
            await self._bare_response(writer, 431,
                                      b"too many header fields")
            return False

        length = 0
        keep_alive = version.strip().upper() != "HTTP/1.0"
        for name, value in headers:
            if name == b"content-length":
                try:
                    length = int(value)
                except ValueError:
                    await self._bare_response(writer, 400,
                                              b"bad content-length")
                    return False
            elif name == b"connection":
                keep_alive = value.lower() != b"close"
        if length > MAX_BODY:
            await self._bare_response(writer, 413, b"body too large")
            return False
        body = await reader.readexactly(length) if length else b""

        split = urlsplit(target)
        scope = {
            "type": "http",
            "asgi": {"version": "3.0", "spec_version": "2.3"},
            "http_version": "1.1",
            "method": method.upper(),
            "path": unquote(split.path) or "/",
            "raw_path": split.path.encode("latin-1"),
            "query_string": split.query.encode("latin-1"),
            "headers": headers,
            "server": (self.host, self.port),
            "client": writer.get_extra_info("peername"),
            "scheme": "http",
        }

        messages = [{"type": "http.request", "body": body,
                     "more_body": False}]

        async def receive() -> dict:
            if messages:
                return messages.pop(0)
            return {"type": "http.disconnect"}

        state = {"status": 500, "headers": [], "chunks": []}

        async def send(message: dict) -> None:
            if message["type"] == "http.response.start":
                state["status"] = message["status"]
                state["headers"] = message.get("headers", [])
            elif message["type"] == "http.response.body":
                state["chunks"].append(message.get("body", b""))

        await self.app(scope, receive, send)

        payload = b"".join(state["chunks"])
        head = [f"HTTP/1.1 {state['status']} "
                f"{_REASONS.get(state['status'], 'OK')}".encode("latin-1")]
        names = set()
        for name, value in state["headers"]:
            names.add(bytes(name).lower())
            head.append(bytes(name) + b": " + bytes(value))
        if b"content-length" not in names:
            head.append(b"content-length: "
                        + str(len(payload)).encode("latin-1"))
        head.append(b"connection: "
                    + (b"keep-alive" if keep_alive else b"close"))
        writer.write(b"\r\n".join(head) + b"\r\n\r\n" + payload)
        await writer.drain()
        return keep_alive

    async def _bare_response(self, writer: asyncio.StreamWriter,
                             status: int, body: bytes) -> None:
        reason = _REASONS.get(status, "Error")
        writer.write(
            f"HTTP/1.1 {status} {reason}\r\n"
            f"content-type: text/plain\r\n"
            f"content-length: {len(body)}\r\n"
            f"connection: close\r\n\r\n".encode("latin-1") + body)
        await writer.drain()


_REASONS = {
    200: "OK", 400: "Bad Request", 404: "Not Found",
    405: "Method Not Allowed", 413: "Payload Too Large",
    422: "Unprocessable Entity", 431: "Request Header Fields Too Large",
    500: "Internal Server Error",
}


async def run_server(app, host: str = "127.0.0.1", port: int = 8080,
                     ready: Optional[asyncio.Event] = None) -> None:
    """Start an :class:`HTTPServer` and serve until cancelled.

    ``ready`` (when given) is set once the socket is bound — the hook
    tests use to start talking to an ephemeral port.
    """
    server = HTTPServer(app, host, port)
    await server.start()
    if ready is not None:
        ready.set()
    try:
        await server.serve_forever()
    except asyncio.CancelledError:
        pass
    finally:
        await server.stop()
