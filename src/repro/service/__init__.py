"""The interest service: an async HTTP API over the resident pipeline.

The paper frames mined interest areas as something that "help[s] to
explore the database" and "offer[s] orientation" to users; QueRIE (its
related work) shows the natural delivery vehicle is a recommendation
service over the live query log.  This package is that service: one
long-lived :class:`~repro.service.state.AppState` keeps the intern
pool, distance backend, incremental clusterer, stream monitor, and a
fitted recommender resident, and a small ASGI application
(:func:`~repro.service.app.create_app`) faces the traffic.

The application is a plain ASGI 3 callable built on the in-repo
micro-framework in :mod:`.asgi` (the "stdlib fallback": the container
ships no FastAPI/Starlette, and the routing needs of six endpoints do
not justify one).  It runs under any ASGI server; :mod:`.server`
provides a dependency-free ``asyncio`` HTTP/1.1 server for
``repro serve``, and :mod:`.testclient` an in-process client for tests
and benchmarks.
"""

from .app import create_app
from .asgi import App, HTTPError, JSONResponse, Request, Response
from .server import HTTPServer, run_server
from .state import AppState, IngestOutcome, ServiceConfig
from .testclient import TestClient

__all__ = [
    "App", "AppState", "HTTPError", "HTTPServer", "IngestOutcome",
    "JSONResponse", "Request", "Response", "ServiceConfig",
    "TestClient", "create_app", "run_server",
]
