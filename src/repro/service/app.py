"""The interest service's HTTP surface.

``create_app`` wires an :class:`~repro.service.asgi.App` over one
:class:`~repro.service.state.AppState`:

====== ========================== =====================================
Method Path                       What it serves
====== ========================== =====================================
POST   /queries                   ingest one SQL statement (single
                                  writer; graceful degradation)
GET    /users/{id}/interests      the user's aggregated interest areas
GET    /clusters                  live clusters with weighted sizes
GET    /clusters/{id}             bounds, describing expression,
                                  coverage of one cluster
GET    /recommend                 k nearest interest areas for ``sql``
                                  (popular areas without ``sql``)
GET    /metrics                   Prometheus exposition of the process
                                  registry
GET    /healthz                   liveness + resident-state summary
====== ========================== =====================================

Ingestion is serialized through a single ``asyncio.Lock`` — the
incremental clusterer repairs labels under a one-arrival-at-a-time
invariant — while every read endpoint works off the immutable
:class:`~repro.service.state.ClusterSnapshot`, so reads never block
the writer and never see a half-applied update.

Every request lands in ``repro_service_requests_total{route,method,
code}`` and ``repro_service_request_seconds{route}`` via the app's
observer hook.
"""

from __future__ import annotations

import asyncio
from typing import Optional

from ..clustering.dbscan import NOISE
from ..obs import export, metrics
from ..sqlparser import SqlError
from .asgi import App, HTTPError, JSONResponse, Request, Response
from .state import AppState, ServiceConfig


def create_app(config: Optional[ServiceConfig] = None,
               state: Optional[AppState] = None,
               registry: Optional[metrics.MetricsRegistry] = None) -> App:
    """Build the ASGI application (and its resident state)."""
    if state is None:
        state = AppState(config, registry=registry)
    reg = state.registry

    def observe(route: str, method: str, status: int,
                seconds: float) -> None:
        reg.counter("repro_service_requests_total", route=route,
                    method=method, code=str(status)).inc()
        reg.histogram("repro_service_request_seconds",
                      route=route).observe(seconds)

    app = App(observer=observe)
    app.state = state
    write_lock = asyncio.Lock()

    @app.post("/queries")
    async def post_query(request: Request):
        payload = request.json()
        sql = payload.get("sql")
        if not isinstance(sql, str) or not sql.strip():
            raise HTTPError(400, "field 'sql' must be a non-empty "
                                 "string")
        user = payload.get("user")
        if user is not None and not isinstance(user, str):
            raise HTTPError(400, "field 'user' must be a string")
        async with write_lock:
            outcome = state.ingest(sql, user=user)
        body = {
            "status": outcome.status,
            "index": outcome.index,
            "label": outcome.label,
            "unique_index": outcome.unique_index,
            "n_clusters": state.clusterer.n_clusters,
            "events": list(outcome.events),
        }
        if outcome.error is not None:
            body["error"] = outcome.error
        # Degradation is not an HTTP failure: a refused insert or an
        # unparseable statement leaves the resident state healthy, so
        # both report 200 with an explicit status field.
        return JSONResponse(body, status=200)

    @app.get("/users/{user}/interests")
    async def user_interests(request: Request):
        user = request.path_params["user"]
        if user not in state.users and \
                user not in state.user_unclustered:
            raise HTTPError(404, f"unknown user {user!r}")
        interests = state.user_interests(user)
        return {
            "user": user,
            "interests": [row for row in interests
                          if row["cluster"] != NOISE],
            "noise": next((row for row in interests
                           if row["cluster"] == NOISE), None),
            "unclustered": state.user_unclustered.get(user, 0),
        }

    @app.get("/clusters")
    async def clusters(request: Request):
        snapshot = state.snapshot()
        sizes = snapshot.sizes()
        unique_counts: dict[int, int] = {}
        for label in snapshot.labels:
            unique_counts[label] = unique_counts.get(label, 0) + 1
        rows = [
            {"id": label, "weighted_size": sizes[label],
             "unique_areas": unique_counts[label]}
            for label in sorted(sizes) if label >= 0
        ]
        return {
            "version": snapshot.version,
            "n_clusters": snapshot.n_clusters,
            "clusters": rows,
            "noise": {"weighted_size": sizes.get(NOISE, 0.0),
                      "unique_areas": unique_counts.get(NOISE, 0)},
        }

    @app.get("/clusters/{id}")
    async def cluster_detail(request: Request):
        raw = request.path_params["id"]
        try:
            cluster_id = int(raw)
        except ValueError:
            raise HTTPError(400, f"cluster id must be an integer, "
                                 f"got {raw!r}") from None
        aggregated = state.aggregate(cluster_id)
        if aggregated is None:
            raise HTTPError(404, f"no cluster {cluster_id}")
        return {
            "id": cluster_id,
            "weighted_size": aggregated.cardinality,
            "relations": list(aggregated.relations),
            "bounds": [
                {"column": str(bound.ref),
                 "lo": bound.interval.lo, "hi": bound.interval.hi,
                 "lower_bounded": bound.lower_bounded,
                 "upper_bounded": bound.upper_bounded,
                 "support": bound.support}
                for bound in aggregated.bounds
            ],
            "categorical": [
                {"column": str(cat.ref),
                 "values": sorted(cat.values),
                 "support": cat.support}
                for cat in aggregated.categorical
            ],
            "joins": [str(join) for join in aggregated.joins],
            "description": aggregated.describe(),
            "suggested_sql": aggregated.to_sql(),
            "area_coverage": state.cluster_coverage(aggregated),
        }

    @app.get("/recommend")
    async def recommend(request: Request):
        sql = request.query.get("sql")
        k = _parse_k(request.query.get("k"), state.config.max_k)
        recommender = state.recommender()
        if sql is None:
            recommendations = recommender.popular(k=k)
        else:
            try:
                recommendations = recommender.recommend_for_sql(sql, k=k)
            except SqlError as exc:
                raise HTTPError(422, f"cannot extract an access area: "
                                     f"{exc}") from exc
        return {
            "k": k,
            "sql": sql,
            "n_clusters": recommender.n_clusters,
            "recommendations": [
                {"cluster": rec.aggregated.cluster_id,
                 "distance": rec.distance,
                 "popularity": rec.popularity,
                 "description": rec.aggregated.describe(),
                 "suggested_sql": rec.suggested_sql}
                for rec in recommendations
            ],
        }

    @app.get("/metrics")
    async def prometheus(request: Request):
        return Response(export.to_prometheus(reg.snapshot()),
                        content_type="text/plain; version=0.0.4; "
                                     "charset=utf-8")

    @app.get("/healthz")
    async def healthz(request: Request):
        monitor = state.monitor
        body = {
            "status": "ok",
            # Monotonic, so NTP slews and clock changes can't make a
            # healthy process report negative (or absurd) uptime.
            "uptime_seconds": round(state.uptime, 3),
            "started_at": state.started,
            "backend": state.config.resolved_backend(),
            "eps": state.config.eps,
            "min_pts": state.config.min_pts,
            "ingested": monitor.state.processed,
            "extracted": monitor.state.extracted,
            "failures": monitor.state.failures,
            "intern_pool": len(state.interner),
            "intern_resident": state.interner.resident,
            "unique_areas": state.clusterer.n_unique,
            "n_clusters": state.clusterer.n_clusters,
            "structure_version": state.structure_version,
        }
        if state.store is not None:
            pool = state.store.pool.stats
            body["store"] = {
                "dir": state.config.store_dir,
                "backing": state.interner.backing,
                "max_resident": state.config.max_resident,
                "replayed": state.replayed,
                "journal_length": state.store.journal_length,
                "segment_bytes": state.store.segments.total_bytes(),
                "buffer_pool": {
                    "hit_rate": round(pool.hit_rate, 4),
                    "hits": pool.hits,
                    "misses": pool.misses,
                    "resident_bytes": state.store.pool.resident_bytes,
                },
            }
        return body

    return app


def _parse_k(raw: Optional[str], max_k: int) -> int:
    if raw is None:
        return 5
    try:
        k = int(raw)
    except ValueError:
        raise HTTPError(400, f"k must be an integer, got {raw!r}") \
            from None
    if not 1 <= k <= max_k:
        raise HTTPError(400, f"k must be in [1, {max_k}]")
    return k
