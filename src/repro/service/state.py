"""The service's resident pipeline state.

One :class:`AppState` lives for the whole process and owns everything
the endpoints read or write:

* the :class:`~repro.core.pipeline.AccessAreaInterner` pool (shared,
  immutable area objects with warmed footprint caches);
* a :class:`~repro.core.stream.StreamMonitor` with
  ``cluster_incrementally=True`` — which itself owns the
  :class:`~repro.clustering.incremental.IncrementalDBSCAN` and its
  distance backend (block-sparse / VP-tree / dense, chosen like
  ``compute_matrix``'s auto mode);
* a fitted :class:`~repro.recommend.InterestRecommender`, refreshed
  lazily after ``CLUSTER_CHANGED`` events;
* the per-user ledger behind ``GET /users/{id}/interests``.

**Writer serialization.**  All mutation goes through :meth:`ingest`,
and the application calls it under a single ``asyncio.Lock`` — the
incremental clusterer's repair invariants assume one arrival at a
time.  Reads never take that lock: they work off
:class:`ClusterSnapshot`, an immutable copy of the label state that is
rebuilt at most once per mutation (version-stamped) and swapped in
atomically, so a burst of ``GET /clusters`` during heavy ingest serves
consistent answers without stalling the writer.
"""

from __future__ import annotations

import copy
import time
from dataclasses import dataclass
from typing import Optional

from ..clustering.aggregation import AggregatedArea, aggregate_cluster
from ..clustering.coverage import area_coverage
from ..core.area import AccessArea
from ..core.extractor import AccessAreaExtractor
from ..core.pipeline import AccessAreaInterner
from ..core.stream import EventKind, StreamEvent, StreamMonitor
from ..obs import get_logger, metrics
from ..recommend import InterestRecommender, fit_recommender
from ..schema import StatisticsCatalog, skyserver_schema
from ..schema.skyserver import CONTENT_BOUNDS
from ..store import open_store
from ..store.codec import fingerprint_digest

logger = get_logger(__name__)

BACKENDS = ("auto", "sparse", "vptree", "dense")


@dataclass(frozen=True)
class ServiceConfig:
    """Knobs of one service process (CLI: ``repro serve``)."""

    eps: float = 0.12
    min_pts: int = 5
    #: neighbourhood backend for the incremental clusterer; ``auto``
    #: mirrors ``compute_matrix``: block-sparse when ``eps`` lies below
    #: the conservative single-table partition exactness bound (1/2),
    #: dense otherwise.  The sparse/vptree backends additionally refuse
    #: (pre-mutation) any arrival whose table set would drop the live
    #: bound to ``eps`` — ingest degrades to ``unclustered`` statements
    #: instead of serving under-reported neighbourhoods.
    backend: str = "auto"
    warmup: int = 100
    resolution: float = 0.05
    min_cluster_size: int = 5
    #: cap on ``GET /recommend``'s ``k``.
    max_k: int = 50
    #: directory of the persistent :class:`~repro.store.AreaStore`
    #: (``--store-dir``).  When set, every ingest is journalled and the
    #: resident state is rebuilt from the journal on restart — the same
    #: areas re-enter the clusterer in arrival order, with zero SQL
    #: re-extraction, reproducing the pre-restart labels bitwise.
    #: ``None`` = in-memory only; state dies with the process.
    store_dir: Optional[str] = None
    #: cap on areas held resident by the intern pool (``--max-resident``,
    #: requires ``store_dir``).  Least-recently-interned areas are
    #: evicted to the store; uniqueness accounting is unaffected because
    #: it is judged against the persistent fingerprint index.
    max_resident: Optional[int] = None

    def resolved_backend(self) -> str:
        if self.backend not in BACKENDS:
            raise ValueError(f"backend must be one of {BACKENDS}, "
                             f"got {self.backend!r}")
        if self.backend == "auto":
            return "sparse" if self.eps < 0.5 else "dense"
        return self.backend

    def __post_init__(self) -> None:
        if self.max_resident is not None and not self.store_dir:
            raise ValueError("max_resident requires store_dir: evicted "
                             "areas must have a store to come back from")


@dataclass(frozen=True)
class ClusterSnapshot:
    """An immutable view of the label state at one version.

    Read endpoints hold a reference while they render; the writer never
    mutates a published snapshot, it publishes a new one.
    """

    version: int
    areas: tuple[AccessArea, ...]
    weights: tuple[float, ...]
    labels: tuple[int, ...]

    @property
    def n_clusters(self) -> int:
        return len({label for label in self.labels if label >= 0})

    def sizes(self) -> dict[int, float]:
        """Weighted cardinality per cluster label (noise = -1)."""
        out: dict[int, float] = {}
        for label, weight in zip(self.labels, self.weights):
            out[label] = out.get(label, 0.0) + weight
        return out

    def members(self, cluster_id: int
                ) -> tuple[list[AccessArea], list[int]]:
        members: list[AccessArea] = []
        weights: list[int] = []
        for area, weight, label in zip(self.areas, self.weights,
                                       self.labels):
            if label == cluster_id:
                members.append(area)
                weights.append(int(weight))
        return members, weights


@dataclass(frozen=True)
class IngestOutcome:
    """What one ``POST /queries`` did.

    ``status`` mirrors the stream path's graceful degradation:
    ``"clustered"`` (extracted, live label assigned),
    ``"unclustered"`` (extracted, but the backend's max-radius
    reservation refused the insert pre-mutation), or ``"failed"``
    (the statement did not extract — tallied, never an HTTP error).
    """

    status: str
    index: int
    label: Optional[int] = None
    unique_index: Optional[int] = None
    error: Optional[str] = None
    events: tuple[str, ...] = ()


class AppState:
    """Everything resident; see the module docstring."""

    def __init__(self, config: Optional[ServiceConfig] = None,
                 schema=None,
                 registry: Optional[metrics.MetricsRegistry] = None
                 ) -> None:
        self.config = config or ServiceConfig()
        self.schema = schema or skyserver_schema()
        self.registry = registry or metrics.get_registry()
        #: wall-clock birth stamp — display only.  Uptime is computed
        #: from the monotonic stamp below: ``time.time()`` jumps under
        #: NTP slews and manual clock changes, so a wall-clock
        #: difference can report negative or wildly wrong uptime.
        self.started = time.time()
        self._started_monotonic = time.monotonic()
        stats = StatisticsCatalog.from_exact_content(
            self.schema, CONTENT_BOUNDS if schema is None else {})
        # The recommender must measure with the same normalization the
        # clusterer does, so it gets the same frozen catalog the
        # monitor hands its clusterer (the monitor's own copy keeps
        # widening for out-of-range novelty detection).
        self.frozen_stats = copy.deepcopy(stats)
        self.extractor = AccessAreaExtractor(self.schema)
        self.store = open_store(self.config.store_dir)
        if self.store is not None:
            self.interner = AccessAreaInterner(
                store=self.store,
                max_resident=self.config.max_resident)
        else:
            self.interner = AccessAreaInterner()
        self._pending_events: list[StreamEvent] = []
        self.monitor = StreamMonitor(
            self.extractor, stats=stats,
            on_event=self._pending_events.append,
            warmup=self.config.warmup,
            cluster_incrementally=True,
            cluster_eps=self.config.eps,
            cluster_min_pts=self.config.min_pts,
            cluster_backend=self.config.resolved_backend(),
            registry=self.registry)
        self.clusterer = self.monitor.clusterer
        self.users: dict[str, dict[AccessArea, int]] = {}
        self.user_unclustered: dict[str, int] = {}
        #: bumped on every mutation; read paths rebuild their snapshot
        #: lazily when it moved.
        self.version = 0
        #: bumped only on CLUSTER_CHANGED — the recommender refresh
        #: trigger (weight-only arrivals keep the fitted model).
        self.structure_version = 0
        self._snapshot = ClusterSnapshot(0, (), (), ())
        self._recommender: Optional[InterestRecommender] = None
        self._recommender_version = -1
        self._ingest_seconds = self.registry.histogram(
            "repro_service_ingest_seconds")
        self._ingest_total = {
            status: self.registry.counter(
                "repro_service_ingested_total", status=status)
            for status in ("clustered", "unclustered", "failed")
        }
        #: arrivals restored from the store's journal at startup.
        self.replayed = 0
        if self.store is not None:
            self._replay_journal()

    def _replay_journal(self) -> None:
        """Rebuild the resident state from the store's ingest journal.

        Each entry re-enters the monitor through
        :meth:`StreamMonitor.replay` — the persisted area is fetched by
        fingerprint digest and fed to the incremental clusterer in the
        original arrival order, so the restored labels are bitwise
        identical to the pre-restart state without parsing a single
        statement.  Failed arrivals replay as counter bumps only.
        """
        for entry in self.store.iter_journal():
            digest_hex = entry.get("digest")
            area = None
            if digest_hex:
                area = self.store.get_area(bytes.fromhex(digest_hex))
                if area is None:
                    # Journal entry without its area record: the index
                    # recovery invariant (index ⊆ segments) means this
                    # cannot happen for a record that was durably
                    # published; treat it like a failed arrival rather
                    # than poisoning the whole replay.
                    logger.warning("journal references missing area %s; "
                                   "replaying as failure", digest_hex)
            label = self.monitor.replay(area)
            self.version += 1
            self.replayed += 1
            if area is None:
                continue
            pooled = self.interner.intern(area)
            user = entry.get("user")
            if user:
                if label is None:
                    self.user_unclustered[user] = \
                        self.user_unclustered.get(user, 0) + 1
                else:
                    ledger = self.users.setdefault(user, {})
                    ledger[pooled] = ledger.get(pooled, 0) + 1
        if self.replayed:
            self.structure_version += 1
            logger.info("replayed %d journalled arrivals from %s "
                        "(%d live clusters)", self.replayed,
                        self.config.store_dir,
                        self.clusterer.n_clusters)

    @property
    def uptime(self) -> float:
        """Seconds since construction, immune to wall-clock jumps."""
        return time.monotonic() - self._started_monotonic

    def close(self) -> None:
        """Checkpoint and release the store (no-op when memory-only)."""
        if self.store is not None:
            self.store.close()

    # -- ingestion (the single writer) --------------------------------

    def ingest(self, sql: str, user: Optional[str] = None
               ) -> IngestOutcome:
        """Extract → intern → incremental cluster one statement.

        Must run serialized (the app holds its writer lock around this
        call): the clusterer's local-repair invariants assume arrivals
        mutate one at a time.
        """
        started = time.perf_counter()
        index = self.monitor.state.processed
        self._pending_events.clear()
        area = self.monitor.process(sql)
        events = tuple(str(event) for event in self._pending_events)
        if any(event.kind is EventKind.CLUSTER_CHANGED
               for event in self._pending_events):
            self.structure_version += 1
        self.version += 1
        digest: Optional[bytes] = None
        if area is None:
            outcome = IngestOutcome(
                status="failed", index=index, events=events,
                error=_last_failure_detail(self.monitor, sql)
                or "statement did not extract")
        else:
            pooled = self.interner.intern(area)
            digest = fingerprint_digest(pooled)
            label = self.monitor.statement_labels[-1]
            if label is None:
                outcome = IngestOutcome(status="unclustered",
                                        index=index, events=events)
            else:
                outcome = IngestOutcome(
                    status="clustered", index=index, label=label,
                    unique_index=self.clusterer.index_of(pooled),
                    events=events)
            if user:
                ledger = self.users.setdefault(user, {})
                if label is None:
                    self.user_unclustered[user] = \
                        self.user_unclustered.get(user, 0) + 1
                else:
                    ledger[pooled] = ledger.get(pooled, 0) + 1
        if self.store is not None:
            # The journal is the restart contract: one entry per
            # arrival, in order.  Failed statements are journalled too
            # (digest None) so replay reproduces the processed/failure
            # counters, not just the happy path.
            self.store.append_journal({
                "digest": digest.hex() if digest else None,
                "user": user,
            })
            self.store.record(self.registry)
        self._ingest_total[outcome.status].inc()
        self._ingest_seconds.observe(time.perf_counter() - started)
        self.registry.gauge("repro_service_intern_pool").set(
            len(self.interner))
        self.interner.record(self.registry)
        return outcome

    # -- lock-free reads ----------------------------------------------

    def snapshot(self) -> ClusterSnapshot:
        """The current immutable label state (rebuilt lazily)."""
        if self._snapshot.version != self.version:
            clusterer = self.clusterer
            self._snapshot = ClusterSnapshot(
                version=self.version,
                areas=tuple(clusterer.areas()),
                weights=tuple(clusterer.weights()),
                labels=tuple(clusterer.labels()),
            )
        return self._snapshot

    def recommender(self) -> InterestRecommender:
        """The fitted recommender, refreshed after CLUSTER_CHANGED."""
        if (self._recommender is None
                or self._recommender_version != self.structure_version):
            snapshot = self.snapshot()
            self._recommender = fit_recommender(
                snapshot.areas, [int(w) for w in snapshot.weights],
                snapshot.labels, self.frozen_stats, self.extractor,
                resolution=self.config.resolution,
                min_cluster_size=self.config.min_cluster_size)
            self._recommender_version = self.structure_version
            self.registry.counter(
                "repro_service_recommender_refreshes_total").inc()
        return self._recommender

    def aggregate(self, cluster_id: int) -> Optional[AggregatedArea]:
        """The aggregated access area of one live cluster."""
        members, weights = self.snapshot().members(cluster_id)
        if not members:
            return None
        return aggregate_cluster(cluster_id, members,
                                 self.frozen_stats, weights=weights)

    def cluster_coverage(self, aggregated: AggregatedArea) -> float:
        return area_coverage(aggregated, self.frozen_stats)

    def user_interests(self, user: str) -> list[dict]:
        """Per-user aggregated areas, grouped by current live label."""
        ledger = self.users.get(user, {})
        by_label: dict[int, tuple[list[AccessArea], list[int]]] = {}
        labels = self.snapshot().labels
        for area, count in ledger.items():
            unique_index = self.clusterer.index_of(area)
            label = (labels[unique_index]
                     if unique_index is not None else -1)
            members, weights = by_label.setdefault(label, ([], []))
            members.append(area)
            weights.append(count)
        out = []
        for label in sorted(by_label):
            members, weights = by_label[label]
            aggregated = aggregate_cluster(label, members,
                                           self.frozen_stats,
                                           weights=weights)
            out.append({
                "cluster": label,
                "queries": sum(weights),
                "description": aggregated.describe(),
                "suggested_sql": aggregated.to_sql(),
            })
        out.sort(key=lambda row: row["queries"], reverse=True)
        return out


def _last_failure_detail(monitor: StreamMonitor,
                         sql: str) -> Optional[str]:
    """The monitor logs failure kinds through counters, not a list;
    re-extract cheaply to report the exception text to the caller."""
    from ..algebra.cnf import CNFConversionError
    from ..sqlparser import SqlError
    try:
        monitor.extractor.extract(sql)
    except (SqlError, CNFConversionError) as exc:
        return f"{type(exc).__name__}: {exc}"
    return None
