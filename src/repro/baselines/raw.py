"""Raw-query predicate extraction (the Section 6.5 baseline).

Equation (1) suggests the overlap distance could be computed on raw
queries directly, skipping the intermediate-format transformation.  This
module implements that shortcut: predicates are collected **as they appear
syntactically** —

* NOT is *not* pushed down (``NOT (v < a OR v > b)`` contributes the
  complement's atoms, a misleading area);
* HAVING aggregate comparisons are kept as pseudo-column atoms
  (``SUM(v) > c``) instead of the Lemma mappings;
* nested subquery predicates are collected but their relations are *not*
  added to the FROM set;
* outer-join conditions are taken as-is.

The paper shows this "breaks Clusters 2, 5, 8, 9, 11, 12, 18, 19, 20, and
22" and yields clusters whose members' Boolean expressions are too
heterogeneous to aggregate (Section 6.5).
"""

from __future__ import annotations

from typing import Optional

from ..algebra.cnf import CNF, Clause
from ..algebra.predicates import (ColumnColumnPredicate,
                                  ColumnConstantPredicate, ColumnRef, Op,
                                  Predicate)
from ..core.area import AccessArea
from ..core.context import ExtractionContext
from ..schema.database import Schema
from ..sqlparser import ast, parse

_OPS = {"<": Op.LT, "<=": Op.LE, "=": Op.EQ,
        ">": Op.GT, ">=": Op.GE, "<>": Op.NE}


def raw_access_area(sql: str, schema: Optional[Schema] = None) -> AccessArea:
    """Parse ``sql`` and collect its predicates without transformation."""
    statement = parse(sql)
    return raw_area_of_statement(statement, schema)


def raw_area_of_statement(statement: ast.SelectStatement,
                          schema: Optional[Schema] = None) -> AccessArea:
    ctx = ExtractionContext(schema)
    predicates: list[Predicate] = []
    for ref in statement.table_refs():
        ctx.register_table(ref.name, ref.alias)
    from_relations = tuple(ctx.relations)
    _collect_from(statement.from_items, ctx, predicates)
    if statement.where is not None:
        _collect(statement.where, ctx, predicates)
    if statement.having is not None:
        _collect_having(statement.having, ctx, predicates)
    cnf = CNF.of(Clause.of([pred]) for pred in predicates)
    return AccessArea(from_relations, cnf, notes=("raw",))


def _collect_from(items, ctx: ExtractionContext,
                  out: list[Predicate]) -> None:
    for item in items:
        if isinstance(item, ast.Join):
            _collect_from((item.left, item.right), ctx, out)
            if item.condition is not None:
                _collect(item.condition, ctx, out)


def _collect(cond: ast.Condition, ctx: ExtractionContext,
             out: list[Predicate]) -> None:
    if isinstance(cond, (ast.AndCondition, ast.OrCondition)):
        for child in cond.children:
            _collect(child, ctx, out)
        return
    if isinstance(cond, ast.NotCondition):
        # As-is: descend without inverting — the defining raw behaviour.
        _collect(cond.child, ctx, out)
        return
    if isinstance(cond, ast.Comparison):
        pred = _comparison_predicate(cond, ctx)
        if pred is not None:
            out.append(pred)
        if isinstance(cond.right, ast.ScalarSubquery):
            _collect_subquery(cond.right.query, ctx, out)
        if isinstance(cond.left, ast.ScalarSubquery):
            _collect_subquery(cond.left.query, ctx, out)
        return
    if isinstance(cond, ast.Between):
        ref = _ref(cond.expr, ctx)
        low = _const(cond.low)
        high = _const(cond.high)
        if ref is not None and low is not None:
            out.append(ColumnConstantPredicate(ref, Op.GE, low))
        if ref is not None and high is not None:
            out.append(ColumnConstantPredicate(ref, Op.LE, high))
        return
    if isinstance(cond, ast.InList):
        ref = _ref(cond.expr, ctx)
        if ref is not None:
            for value in cond.values:
                constant = _const(value)
                if constant is not None:
                    out.append(
                        ColumnConstantPredicate(ref, Op.EQ, constant))
        return
    if isinstance(cond, ast.InSubquery):
        _collect_subquery(cond.query, ctx, out)
        return
    if isinstance(cond, ast.Exists):
        _collect_subquery(cond.query, ctx, out)
        return
    if isinstance(cond, ast.QuantifiedComparison):
        _collect_subquery(cond.query, ctx, out)
        return
    if isinstance(cond, ast.Like):
        ref = _ref(cond.expr, ctx)
        if ref is not None and "%" not in cond.pattern \
                and "_" not in cond.pattern:
            out.append(ColumnConstantPredicate(ref, Op.EQ, cond.pattern))
        return
    # IS NULL and anything else contributes nothing.


def _collect_subquery(stmt: ast.SelectStatement, ctx: ExtractionContext,
                      out: list[Predicate]) -> None:
    """Collect subquery predicates WITHOUT enlarging the FROM set."""
    sub = ctx.child()
    for ref in stmt.table_refs():
        sub.aliases[(ref.alias or ref.name).lower()] = \
            sub.canonical_relation(ref.name)
    _collect_from(stmt.from_items, sub, out)
    if stmt.where is not None:
        _collect(stmt.where, sub, out)
    if stmt.having is not None:
        _collect_having(stmt.having, sub, out)


def _collect_having(cond: ast.Condition, ctx: ExtractionContext,
                    out: list[Predicate]) -> None:
    if isinstance(cond, (ast.AndCondition, ast.OrCondition)):
        for child in cond.children:
            _collect_having(child, ctx, out)
        return
    if isinstance(cond, ast.NotCondition):
        _collect_having(cond.child, ctx, out)
        return
    if isinstance(cond, ast.Comparison):
        pseudo = _aggregate_pseudo_predicate(cond, ctx)
        if pseudo is not None:
            out.append(pseudo)
            return
    _collect(cond, ctx, out)


def _aggregate_pseudo_predicate(
        cond: ast.Comparison,
        ctx: ExtractionContext) -> Predicate | None:
    """``SUM(v) > c`` as-is: an atom on the pseudo column ``SUM(v)``."""
    call, other, op_text = cond.left, cond.right, cond.op
    if not isinstance(call, ast.FunctionCall):
        call, other = cond.right, cond.left
        op_text = {"<": ">", "<=": ">=", ">": "<", ">=": "<="}.get(
            op_text, op_text)
    if not isinstance(call, ast.FunctionCall):
        return None
    constant = _const(other)
    op = _OPS.get(op_text)
    if constant is None or op is None:
        return None
    relation = "(aggregate)"
    column = str(call)
    if call.args and isinstance(call.args[0], ast.ColumnExpr):
        arg = call.args[0]
        inner = ctx.resolve_column(arg.table, arg.name)
        if inner is not None:
            relation = inner.relation
            column = f"{call.upper_name}({inner.column})"
    return ColumnConstantPredicate(ColumnRef(relation, column), op, constant)


def _comparison_predicate(cond: ast.Comparison,
                          ctx: ExtractionContext) -> Predicate | None:
    left_ref = _ref(cond.left, ctx)
    right_ref = _ref(cond.right, ctx)
    op = _OPS.get(cond.op)
    if op is None:
        return None
    if left_ref is not None and right_ref is not None:
        return ColumnColumnPredicate(left_ref, op, right_ref)
    if left_ref is not None:
        constant = _const(cond.right)
        if constant is not None:
            return ColumnConstantPredicate(left_ref, op, constant)
        return None
    if right_ref is not None:
        constant = _const(cond.left)
        if constant is not None:
            return ColumnConstantPredicate(right_ref, op.flip(), constant)
    return None


def _ref(expr: ast.Expr, ctx: ExtractionContext) -> ColumnRef | None:
    if isinstance(expr, ast.ColumnExpr):
        return ctx.resolve_column(expr.table, expr.name)
    return None


def _const(expr: ast.Expr):
    if isinstance(expr, ast.Literal) and expr.value is not None:
        return expr.value
    if isinstance(expr, ast.UnaryMinus) and \
            isinstance(expr.operand, ast.Literal) and \
            isinstance(expr.operand.value, (int, float)):
        return -expr.operand.value
    return None
