"""Comparison baselines of Sections 6.4–6.6."""

from .olapclus import ExactMatchDistance, fragmentation, olapclus_cluster
from .raw import raw_access_area, raw_area_of_statement
from .requery import (RequeryBaseline, RequeryOutcome, RequeryReport,
                      requery_log)
from .signatures import area_signature

__all__ = [
    "ExactMatchDistance", "fragmentation", "olapclus_cluster",
    "raw_access_area", "raw_area_of_statement",
    "RequeryBaseline", "RequeryOutcome", "RequeryReport", "requery_log",
    "area_signature",
]
