"""OLAPClus baseline (Section 6.4) — structure distance, exact matching.

OLAPClus [Aligon et al., Similarity measures for OLAP sessions] compares
queries by structure and "requires exact matching of two atomic predicates
and not their overlapping in access areas".  Two point lookups
``Photoz.objid = c1`` and ``Photoz.objid = c2`` therefore never match for
``c1 ≠ c2`` — which is exactly why the paper reports ~100,000 OLAPClus
clusters where the overlap-based method finds one.

We implement the distance faithfully (Jaccard on tables + symmetric
best-match over clauses with 0/1 predicate distance) plus an equivalent
fast path: under exact matching, DBSCAN neighbourhoods at ``eps < 1``
collapse to signature-equality groups, so the clustering reduces to
grouping by the (tables, predicate multiset) signature.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..algebra.cnf import CNF, Clause
from ..clustering.dbscan import NOISE, DBSCANResult
from ..core.area import AccessArea
from .signatures import area_signature


@dataclass
class ExactMatchDistance:
    """The OLAPClus-style distance on intermediate-format queries.

    Identical to :class:`~repro.distance.QueryDistance` structurally, but
    ``d_pred`` is 0 for syntactically identical predicates and 1
    otherwise.
    """

    def __call__(self, q1: AccessArea, q2: AccessArea) -> float:
        return self.distance(q1, q2)

    def distance(self, q1: AccessArea, q2: AccessArea) -> float:
        union = q1.table_set | q2.table_set
        if union:
            d_tables = 1.0 - len(q1.table_set & q2.table_set) / len(union)
        else:
            d_tables = 0.0
        return d_tables + self.d_conj(q1.cnf, q2.cnf)

    def d_conj(self, b1: CNF, b2: CNF) -> float:
        n1, n2 = len(b1), len(b2)
        if n1 == 0 and n2 == 0:
            return 0.0
        if n1 == 0 or n2 == 0:
            return 1.0
        total = 0.0
        for o1 in b1:
            total += min(self.d_disj(o1, o2) for o2 in b2)
        for o2 in b2:
            total += min(self.d_disj(o1, o2) for o1 in b1)
        return total / (n1 + n2)

    def d_disj(self, o1: Clause, o2: Clause) -> float:
        n1, n2 = len(o1), len(o2)
        if n1 == 0 and n2 == 0:
            return 0.0
        if n1 == 0 or n2 == 0:
            return 1.0
        set1 = {str(p) for p in o1}
        set2 = {str(p) for p in o2}
        total = sum(0.0 if p in set2 else 1.0 for p in set1)
        total += sum(0.0 if p in set1 else 1.0 for p in set2)
        return total / (n1 + n2)


def olapclus_cluster(areas: list[AccessArea],
                     min_pts: int = 2) -> DBSCANResult:
    """Exact-match DBSCAN via the signature fast path.

    With ``eps`` below the smallest non-zero distance, a point's
    neighbourhood is exactly its signature-equality class, so groups of at
    least ``min_pts`` identical queries become clusters and everything
    else is noise.  This matches ``DBSCAN(eps≈0).fit(areas,
    ExactMatchDistance())`` and is what the fragmentation experiment runs
    at scale.
    """
    groups: dict[str, list[int]] = {}
    for index, area in enumerate(areas):
        groups.setdefault(area_signature(area), []).append(index)
    labels = [NOISE] * len(areas)
    cluster_id = 0
    for signature in sorted(groups):
        members = groups[signature]
        if len(members) >= min_pts:
            for index in members:
                labels[index] = cluster_id
            cluster_id += 1
    return DBSCANResult(labels)


def fragmentation(areas: list[AccessArea], min_pts: int = 2) -> int:
    """Number of distinct groups OLAPClus shatters ``areas`` into.

    Counts clusters plus noise points — the paper's "approximately
    100,000 clusters" for Cluster 1 counts every distinct predicate
    signature.
    """
    result = olapclus_cluster(areas, min_pts)
    return result.n_clusters + result.noise_count
