"""Canonical string signatures of access areas (exact-match helpers)."""

from __future__ import annotations

from ..core.area import AccessArea


def area_signature(area: AccessArea) -> str:
    """A canonical form: equal signatures ⇔ exact-match distance 0."""
    tables = ",".join(sorted(t.lower() for t in area.relations))
    clauses = sorted(str(clause) for clause in area.cnf)
    return tables + "|" + "&".join(clauses)
