"""The re-querying baseline (Sections 2.2 Option (a) and 6.6).

Instead of analysing the SQL text, re-issue each query against a database
state and take the minimum bounding box of its result set as the "access
area".  The paper uses this strawman to demonstrate two failures of
result-based definitions:

* queries over **empty areas** return no rows, so Clusters 18–24 are
  invisible to this approach;
* the 1.2M queries that **error** on the server (dialect, result cap)
  yield nothing at all;

plus a large runtime penalty (executing beats parsing by orders of
magnitude).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from ..algebra.cnf import CNF, Clause
from ..algebra.predicates import ColumnConstantPredicate, ColumnRef, Op
from ..core.area import AccessArea
from ..engine.database import Database
from ..engine.executor import ExecutionError, QueryExecutor
from ..sqlparser import SqlError, ast, parse


@dataclass(frozen=True)
class RequeryOutcome:
    """Result of re-issuing one query."""

    sql: str
    area: Optional[AccessArea]  # None on failure or empty result
    error: Optional[str] = None
    empty_result: bool = False

    @property
    def succeeded(self) -> bool:
        return self.area is not None


@dataclass
class RequeryBaseline:
    """Re-executes queries and derives result-set MBR areas."""

    db: Database
    executor: QueryExecutor = field(init=False)

    def __post_init__(self) -> None:
        # A tight intermediate-result budget stands in for the server's
        # resource governor: runaway cross products error out quickly,
        # like the "limit is top 500000" failures the paper counts.
        self.executor = QueryExecutor(self.db,
                                      max_intermediate_rows=600_000)

    def area_of(self, sql: str) -> RequeryOutcome:
        try:
            statement = parse(sql)
        except SqlError as exc:
            return RequeryOutcome(sql, None, error=f"parse: {exc}")
        try:
            result = self.executor.execute(statement)
        except ExecutionError as exc:
            return RequeryOutcome(sql, None, error=str(exc))
        if not result.rows:
            return RequeryOutcome(sql, None, empty_result=True)
        area = self._mbr_area(statement, result.rows)
        return RequeryOutcome(sql, area)

    def _mbr_area(self, statement: ast.SelectStatement,
                  rows: list[dict]) -> AccessArea:
        binding_to_relation = {
            (ref.alias or ref.name).lower(): ref.name
            for ref in statement.table_refs()
        }
        relations = tuple({ref.name for ref in statement.table_refs()})

        mins: dict[ColumnRef, float] = {}
        maxs: dict[ColumnRef, float] = {}
        for row in rows:
            for key, value in row.items():
                if not isinstance(value, (int, float)) or \
                        isinstance(value, bool):
                    continue
                ref = self._resolve_output_column(
                    key, binding_to_relation, relations)
                if ref is None:
                    continue
                if ref not in mins or value < mins[ref]:
                    mins[ref] = value
                if ref not in maxs or value > maxs[ref]:
                    maxs[ref] = value

        clauses = []
        for ref in sorted(mins, key=str):
            clauses.append(Clause.of(
                [ColumnConstantPredicate(ref, Op.GE, mins[ref])]))
            clauses.append(Clause.of(
                [ColumnConstantPredicate(ref, Op.LE, maxs[ref])]))
        return AccessArea(relations, CNF.of(clauses), notes=("requery",))

    def _resolve_output_column(
            self, key: str, binding_to_relation: dict[str, str],
            relations: tuple[str, ...]) -> ColumnRef | None:
        if "." in key:
            binding, column = key.split(".", 1)
            relation = binding_to_relation.get(binding.lower())
            if relation is None:
                return None
            return ColumnRef(self._canonical(relation), column)
        if len(relations) == 1:
            table = self.db.table(relations[0]) \
                if self.db.has_table(relations[0]) else None
            if table is not None and table.relation.has_column(key):
                return ColumnRef(table.name, key)
        return None

    def _canonical(self, relation: str) -> str:
        if self.db.has_table(relation):
            return self.db.table(relation).name
        return relation


@dataclass
class RequeryReport:
    """Aggregate outcome over a log."""

    outcomes: list[RequeryOutcome] = field(default_factory=list)

    @property
    def total(self) -> int:
        return len(self.outcomes)

    @property
    def succeeded(self) -> int:
        return sum(1 for o in self.outcomes if o.succeeded)

    @property
    def errored(self) -> int:
        return sum(1 for o in self.outcomes if o.error is not None)

    @property
    def empty_results(self) -> int:
        return sum(1 for o in self.outcomes if o.empty_result)

    def areas(self) -> list[AccessArea]:
        return [o.area for o in self.outcomes if o.area is not None]


def requery_log(baseline: RequeryBaseline,
                statements: list[str]) -> RequeryReport:
    report = RequeryReport()
    for sql in statements:
        report.outcomes.append(baseline.area_of(sql))
    return report
