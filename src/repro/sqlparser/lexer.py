"""Tokenizer for the SkyServer SELECT dialect.

Handles the lexical variety found in public SkyServer logs: case-insensitive
keywords, ``[bracketed]`` and ``"quoted"`` identifiers, single-quoted
strings with ``''`` escapes, integer / decimal / scientific literals,
line (``--``) and block (``/* */``) comments, and the full comparison
operator set including the MSSQL ``!=`` spelling of ``<>``.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

from .errors import LexError


class TokenType(enum.Enum):
    KEYWORD = "keyword"
    IDENT = "ident"
    NUMBER = "number"
    STRING = "string"
    OPERATOR = "operator"
    PUNCT = "punct"
    EOF = "eof"


#: Reserved words recognized as keywords (upper-case canonical form).
KEYWORDS = frozenset({
    "SELECT", "FROM", "WHERE", "GROUP", "BY", "HAVING", "ORDER", "ASC",
    "DESC", "AND", "OR", "NOT", "IN", "EXISTS", "BETWEEN", "LIKE", "IS",
    "NULL", "ANY", "ALL", "SOME", "AS", "JOIN", "INNER", "LEFT", "RIGHT",
    "FULL", "OUTER", "CROSS", "NATURAL", "ON", "TOP", "DISTINCT", "UNION",
    "CASE", "WHEN", "THEN", "ELSE", "END", "INTO", "LIMIT", "OFFSET",
    # Statement starters we must recognize to classify unsupported input:
    "CREATE", "INSERT", "UPDATE", "DELETE", "DROP", "DECLARE", "ALTER",
    "EXEC", "EXECUTE", "SET", "TRUNCATE", "WITH", "USE", "GRANT",
})

_OPERATORS = ("<=", ">=", "<>", "!=", "=", "<", ">")
_PUNCT = set("(),.*;+-/%")


@dataclass(frozen=True)
class Token:
    type: TokenType
    value: str
    position: int

    def is_keyword(self, *names: str) -> bool:
        return self.type is TokenType.KEYWORD and self.value in names

    def __str__(self) -> str:
        return f"{self.type.value}:{self.value}"


def tokenize(sql: str) -> list[Token]:
    """Tokenize ``sql``; raises :class:`LexError` on illegal input."""
    tokens: list[Token] = []
    i, n = 0, len(sql)
    while i < n:
        ch = sql[i]
        if ch.isspace():
            i += 1
            continue
        if sql.startswith("--", i):
            end = sql.find("\n", i)
            i = n if end == -1 else end + 1
            continue
        if sql.startswith("/*", i):
            end = sql.find("*/", i + 2)
            if end == -1:
                raise LexError("unterminated block comment", i)
            i = end + 2
            continue
        if ch == "'":
            value, i = _read_string(sql, i)
            tokens.append(Token(TokenType.STRING, value, i))
            continue
        if ch == "[":
            end = sql.find("]", i + 1)
            if end == -1:
                raise LexError("unterminated bracketed identifier", i)
            tokens.append(Token(TokenType.IDENT, sql[i + 1:end], i))
            i = end + 1
            continue
        if ch == '"':
            end = sql.find('"', i + 1)
            if end == -1:
                raise LexError("unterminated quoted identifier", i)
            tokens.append(Token(TokenType.IDENT, sql[i + 1:end], i))
            i = end + 1
            continue
        if ch.isdigit() or (ch == "." and i + 1 < n and sql[i + 1].isdigit()):
            value, i = _read_number(sql, i)
            tokens.append(Token(TokenType.NUMBER, value, i))
            continue
        if ch.isalpha() or ch == "_" or ch == "@" or ch == "#":
            value, i = _read_word(sql, i)
            upper = value.upper()
            if upper in KEYWORDS:
                tokens.append(Token(TokenType.KEYWORD, upper, i))
            else:
                tokens.append(Token(TokenType.IDENT, value, i))
            continue
        matched_op = next(
            (op for op in _OPERATORS if sql.startswith(op, i)), None)
        if matched_op is not None:
            canonical = "<>" if matched_op == "!=" else matched_op
            tokens.append(Token(TokenType.OPERATOR, canonical, i))
            i += len(matched_op)
            continue
        if ch in _PUNCT:
            tokens.append(Token(TokenType.PUNCT, ch, i))
            i += 1
            continue
        raise LexError(f"illegal character {ch!r}", i)
    tokens.append(Token(TokenType.EOF, "", n))
    return tokens


def _read_string(sql: str, start: int) -> tuple[str, int]:
    """Read a single-quoted string with '' escaping; returns (value, next)."""
    i = start + 1
    parts: list[str] = []
    n = len(sql)
    while i < n:
        if sql[i] == "'":
            if i + 1 < n and sql[i + 1] == "'":
                parts.append("'")
                i += 2
                continue
            return "".join(parts), i + 1
        parts.append(sql[i])
        i += 1
    raise LexError("unterminated string literal", start)


def _read_number(sql: str, start: int) -> tuple[str, int]:
    i = start
    n = len(sql)
    seen_dot = False
    while i < n and (sql[i].isdigit() or (sql[i] == "." and not seen_dot)):
        if sql[i] == ".":
            seen_dot = True
        i += 1
    if i < n and sql[i] in "eE":
        j = i + 1
        if j < n and sql[j] in "+-":
            j += 1
        if j < n and sql[j].isdigit():
            i = j
            while i < n and sql[i].isdigit():
                i += 1
    return sql[start:i], i


def _read_word(sql: str, start: int) -> tuple[str, int]:
    i = start
    n = len(sql)
    while i < n and (sql[i].isalnum() or sql[i] in "_@#$"):
        i += 1
    return sql[start:i], i
