"""Abstract syntax tree of the supported SELECT dialect.

The node set covers the constructs occurring in the SkyServer query log
(Section 4 of the paper): plain selects, every JOIN flavour, GROUP BY /
HAVING with one aggregate comparison, nested subqueries under EXISTS / IN /
ANY / ALL / scalar comparison, BETWEEN, LIKE, IS NULL, and arithmetic
expressions inside comparisons.  ORDER BY is parsed but deliberately
discarded downstream ("the ORDER BY clause is not relevant for our
purpose", Section 2.1).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Optional, Union


# --------------------------------------------------------------------------
# Scalar expressions
# --------------------------------------------------------------------------

class Expr:
    """Base class of scalar expressions."""


@dataclass(frozen=True)
class ColumnExpr(Expr):
    """A possibly qualified column reference (``T.u`` or ``u``)."""

    table: Optional[str]
    name: str

    def __str__(self) -> str:
        return f"{self.table}.{self.name}" if self.table else self.name


@dataclass(frozen=True)
class Literal(Expr):
    """A numeric, string, boolean, or NULL constant."""

    value: Union[int, float, str, bool, None]

    def __str__(self) -> str:
        if isinstance(self.value, str):
            return f"'{self.value}'"
        if self.value is None:
            return "NULL"
        return str(self.value)


@dataclass(frozen=True)
class Star(Expr):
    """``*`` or ``T.*`` in a select list or COUNT(*)."""

    table: Optional[str] = None

    def __str__(self) -> str:
        return f"{self.table}.*" if self.table else "*"


@dataclass(frozen=True)
class FunctionCall(Expr):
    """``f(arg, ...)`` — aggregates and SkyServer UDF-looking calls."""

    name: str
    args: tuple[Expr, ...]

    @property
    def upper_name(self) -> str:
        return self.name.upper()

    def __str__(self) -> str:
        args = ", ".join(str(a) for a in self.args)
        return f"{self.name}({args})"


@dataclass(frozen=True)
class Arithmetic(Expr):
    """Binary arithmetic (``+ - * / %``) inside a scalar expression."""

    op: str
    left: Expr
    right: Expr

    def __str__(self) -> str:
        return f"({self.left} {self.op} {self.right})"


@dataclass(frozen=True)
class UnaryMinus(Expr):
    operand: Expr

    def __str__(self) -> str:
        return f"-{self.operand}"


@dataclass(frozen=True)
class ScalarSubquery(Expr):
    """A subquery used as a scalar value, e.g. ``T.u = (SELECT ...)``."""

    query: "SelectStatement"

    def __str__(self) -> str:
        return f"({self.query})"


# --------------------------------------------------------------------------
# Conditions (Boolean-valued)
# --------------------------------------------------------------------------

class Condition:
    """Base class of Boolean conditions."""


@dataclass(frozen=True)
class Comparison(Condition):
    """``left θ right`` with θ in {<, <=, =, >, >=, <>}."""

    left: Expr
    op: str
    right: Expr

    def __str__(self) -> str:
        return f"{self.left} {self.op} {self.right}"


@dataclass(frozen=True)
class Between(Condition):
    expr: Expr
    low: Expr
    high: Expr
    negated: bool = False

    def __str__(self) -> str:
        neg = "NOT " if self.negated else ""
        return f"{self.expr} {neg}BETWEEN {self.low} AND {self.high}"


@dataclass(frozen=True)
class InList(Condition):
    expr: Expr
    values: tuple[Expr, ...]
    negated: bool = False

    def __str__(self) -> str:
        neg = "NOT " if self.negated else ""
        vals = ", ".join(str(v) for v in self.values)
        return f"{self.expr} {neg}IN ({vals})"


@dataclass(frozen=True)
class InSubquery(Condition):
    expr: Expr
    query: "SelectStatement"
    negated: bool = False

    def __str__(self) -> str:
        neg = "NOT " if self.negated else ""
        return f"{self.expr} {neg}IN ({self.query})"


@dataclass(frozen=True)
class Exists(Condition):
    query: "SelectStatement"
    negated: bool = False

    def __str__(self) -> str:
        neg = "NOT " if self.negated else ""
        return f"{neg}EXISTS ({self.query})"


@dataclass(frozen=True)
class QuantifiedComparison(Condition):
    """``expr θ ANY|ALL|SOME (subquery)``."""

    expr: Expr
    op: str
    quantifier: str  # "ANY" | "ALL" (SOME normalizes to ANY)
    query: "SelectStatement"

    def __str__(self) -> str:
        return f"{self.expr} {self.op} {self.quantifier} ({self.query})"


@dataclass(frozen=True)
class Like(Condition):
    expr: Expr
    pattern: str
    negated: bool = False

    def __str__(self) -> str:
        neg = "NOT " if self.negated else ""
        return f"{self.expr} {neg}LIKE '{self.pattern}'"


@dataclass(frozen=True)
class IsNull(Condition):
    expr: Expr
    negated: bool = False

    def __str__(self) -> str:
        neg = "NOT " if self.negated else ""
        return f"{self.expr} IS {neg}NULL"


@dataclass(frozen=True)
class NotCondition(Condition):
    child: Condition

    def __str__(self) -> str:
        return f"NOT ({self.child})"


@dataclass(frozen=True)
class AndCondition(Condition):
    children: tuple[Condition, ...]

    def __str__(self) -> str:
        return " AND ".join(f"({c})" for c in self.children)


@dataclass(frozen=True)
class OrCondition(Condition):
    children: tuple[Condition, ...]

    def __str__(self) -> str:
        return " OR ".join(f"({c})" for c in self.children)


# --------------------------------------------------------------------------
# FROM clause
# --------------------------------------------------------------------------

class JoinType(enum.Enum):
    CROSS = "CROSS"
    INNER = "INNER"
    LEFT = "LEFT"
    RIGHT = "RIGHT"
    FULL = "FULL"
    NATURAL = "NATURAL"


@dataclass(frozen=True)
class TableRef:
    """A base relation occurrence, possibly aliased."""

    name: str
    alias: Optional[str] = None

    @property
    def binding(self) -> str:
        """The name that qualifies columns of this occurrence."""
        return self.alias or self.name

    def __str__(self) -> str:
        return f"{self.name} AS {self.alias}" if self.alias else self.name


@dataclass(frozen=True)
class Join:
    """A join between two FROM items."""

    left: "FromItem"
    right: "FromItem"
    join_type: JoinType
    condition: Optional[Condition] = None  # None for CROSS / NATURAL

    def __str__(self) -> str:
        cond = f" ON {self.condition}" if self.condition else ""
        return f"{self.left} {self.join_type.value} JOIN {self.right}{cond}"


FromItem = Union[TableRef, Join]


# --------------------------------------------------------------------------
# Select statement
# --------------------------------------------------------------------------

@dataclass(frozen=True)
class SelectItem:
    expr: Expr
    alias: Optional[str] = None

    def __str__(self) -> str:
        return f"{self.expr} AS {self.alias}" if self.alias else str(self.expr)


@dataclass(frozen=True)
class OrderItem:
    expr: Expr
    descending: bool = False

    def __str__(self) -> str:
        return f"{self.expr} DESC" if self.descending else str(self.expr)


@dataclass(frozen=True)
class SelectStatement:
    """One parsed SELECT query (possibly nested inside another)."""

    select_items: tuple[SelectItem, ...]
    from_items: tuple[FromItem, ...] = ()
    where: Optional[Condition] = None
    group_by: tuple[Expr, ...] = ()
    having: Optional[Condition] = None
    order_by: tuple[OrderItem, ...] = ()
    top: Optional[int] = None
    distinct: bool = False
    #: MySQL-dialect LIMIT value; kept so a strict-MSSQL executor can
    #: reject the statement the way the real SkyServer does (Section 6.6).
    limit: Optional[int] = None

    def table_refs(self) -> list[TableRef]:
        """All base-relation occurrences in this statement's FROM clause
        (not descending into subqueries)."""
        refs: list[TableRef] = []
        for item in self.from_items:
            _collect_refs(item, refs)
        return refs

    def __str__(self) -> str:
        parts = ["SELECT"]
        if self.distinct:
            parts.append("DISTINCT")
        if self.top is not None:
            parts.append(f"TOP {self.top}")
        parts.append(", ".join(str(s) for s in self.select_items))
        if self.from_items:
            parts.append("FROM " + ", ".join(str(f) for f in self.from_items))
        if self.where is not None:
            parts.append(f"WHERE {self.where}")
        if self.group_by:
            parts.append("GROUP BY " + ", ".join(str(g) for g in self.group_by))
        if self.having is not None:
            parts.append(f"HAVING {self.having}")
        if self.order_by:
            parts.append("ORDER BY " + ", ".join(str(o) for o in self.order_by))
        return " ".join(parts)


def _collect_refs(item: FromItem, out: list[TableRef]) -> None:
    if isinstance(item, TableRef):
        out.append(item)
    else:
        _collect_refs(item.left, out)
        _collect_refs(item.right, out)
