"""Recursive-descent parser for the SkyServer SELECT dialect.

The grammar mirrors what occurs in the SkyServer query log (Section 4):
SELECT with DISTINCT / TOP / INTO, comma and JOIN FROM clauses (INNER /
LEFT / RIGHT / FULL OUTER / CROSS / NATURAL), WHERE conditions with the
full predicate vocabulary (comparisons, BETWEEN, IN, EXISTS, ANY / ALL /
SOME, LIKE, IS NULL, NOT / AND / OR), GROUP BY, HAVING, ORDER BY, and the
MySQL-dialect LIMIT that the paper notes it can still process even though
such queries error on the actual MSSQL server (Section 6.6).

Non-SELECT statements raise :class:`UnsupportedStatementError`; malformed
input raises :class:`ParseError` — the two unparsed classes of Section 6.1.
"""

from __future__ import annotations

from typing import Optional

from . import ast
from .errors import ParseError, UnsupportedStatementError
from .lexer import Token, TokenType, tokenize

_COMPARISON_OPS = {"<", "<=", "=", ">", ">=", "<>"}

_STATEMENT_KEYWORDS = {
    "CREATE", "INSERT", "UPDATE", "DELETE", "DROP", "DECLARE", "ALTER",
    "EXEC", "EXECUTE", "SET", "TRUNCATE", "USE", "GRANT", "WITH",
}


def parse(sql: str) -> ast.SelectStatement:
    """Parse one SQL statement into a :class:`~.ast.SelectStatement`."""
    tokens = tokenize(sql)
    parser = _Parser(tokens)
    statement = parser.parse_statement()
    parser.expect_end()
    return statement


class _Parser:
    """Token-stream cursor with one-statement parsing methods."""

    def __init__(self, tokens: list[Token]) -> None:
        self._tokens = tokens
        self._pos = 0

    # -- cursor helpers ----------------------------------------------------

    @property
    def current(self) -> Token:
        return self._tokens[self._pos]

    def _peek(self, offset: int = 1) -> Token:
        index = min(self._pos + offset, len(self._tokens) - 1)
        return self._tokens[index]

    def _advance(self) -> Token:
        token = self.current
        if token.type is not TokenType.EOF:
            self._pos += 1
        return token

    def _accept_keyword(self, *names: str) -> bool:
        if self.current.is_keyword(*names):
            self._advance()
            return True
        return False

    def _expect_keyword(self, name: str) -> None:
        if not self._accept_keyword(name):
            raise ParseError(
                f"expected {name}, found {self.current}",
                self.current.position)

    def _accept_punct(self, value: str) -> bool:
        token = self.current
        if token.type is TokenType.PUNCT and token.value == value:
            self._advance()
            return True
        return False

    def _expect_punct(self, value: str) -> None:
        if not self._accept_punct(value):
            raise ParseError(
                f"expected {value!r}, found {self.current}",
                self.current.position)

    def expect_end(self) -> None:
        self._accept_punct(";")
        if self.current.type is not TokenType.EOF:
            raise ParseError(
                f"unexpected trailing input: {self.current}",
                self.current.position)

    # -- statements ---------------------------------------------------------

    def parse_statement(self) -> ast.SelectStatement:
        token = self.current
        if token.type is TokenType.KEYWORD and token.value in _STATEMENT_KEYWORDS:
            raise UnsupportedStatementError(token.value)
        if not token.is_keyword("SELECT"):
            raise ParseError(
                f"expected SELECT, found {token}", token.position)
        return self.parse_select()

    def parse_select(self) -> ast.SelectStatement:
        self._expect_keyword("SELECT")
        distinct = self._accept_keyword("DISTINCT")
        self._accept_keyword("ALL")  # SELECT ALL is a no-op
        top = self._parse_top()
        select_items = self._parse_select_list()
        self._parse_into()
        from_items: tuple[ast.FromItem, ...] = ()
        if self._accept_keyword("FROM"):
            from_items = self._parse_from_list()
        where = self._parse_condition() if self._accept_keyword("WHERE") else None
        group_by: tuple[ast.Expr, ...] = ()
        if self._accept_keyword("GROUP"):
            self._expect_keyword("BY")
            group_by = self._parse_expr_list()
        having = self._parse_condition() if self._accept_keyword("HAVING") else None
        order_by: tuple[ast.OrderItem, ...] = ()
        if self._accept_keyword("ORDER"):
            self._expect_keyword("BY")
            order_by = self._parse_order_list()
        limit = self._parse_limit()
        if self.current.is_keyword("UNION"):
            raise UnsupportedStatementError("UNION")
        return ast.SelectStatement(
            select_items=select_items,
            from_items=from_items,
            where=where,
            group_by=group_by,
            having=having,
            order_by=order_by,
            top=top,
            distinct=distinct,
            limit=limit,
        )

    def _parse_top(self) -> Optional[int]:
        if not self._accept_keyword("TOP"):
            return None
        token = self.current
        if token.type is not TokenType.NUMBER:
            raise ParseError("expected number after TOP", token.position)
        self._advance()
        return int(float(token.value))

    def _parse_into(self) -> None:
        """SkyServer CasJobs ``SELECT ... INTO mydb.table`` — parse & drop."""
        if not self._accept_keyword("INTO"):
            return
        if self.current.type is not TokenType.IDENT:
            raise ParseError("expected identifier after INTO",
                             self.current.position)
        self._advance()
        while self._accept_punct("."):
            if self.current.type is TokenType.IDENT:
                self._advance()
            else:
                raise ParseError("expected identifier after '.'",
                                 self.current.position)

    def _parse_limit(self) -> Optional[int]:
        """MySQL-dialect LIMIT n [OFFSET m] — accepted, value recorded."""
        if not self._accept_keyword("LIMIT"):
            return None
        token = self.current
        if token.type is not TokenType.NUMBER:
            raise ParseError("expected number after LIMIT", token.position)
        self._advance()
        if self._accept_keyword("OFFSET"):
            if self.current.type is not TokenType.NUMBER:
                raise ParseError("expected number after OFFSET",
                                 self.current.position)
            self._advance()
        return int(float(token.value))

    # -- select list ---------------------------------------------------------

    def _parse_select_list(self) -> tuple[ast.SelectItem, ...]:
        items = [self._parse_select_item()]
        while self._accept_punct(","):
            items.append(self._parse_select_item())
        return tuple(items)

    def _parse_select_item(self) -> ast.SelectItem:
        star = self._try_parse_star()
        if star is not None:
            return ast.SelectItem(star)
        expr = self._parse_expr()
        alias: Optional[str] = None
        if self._accept_keyword("AS"):
            alias = self._expect_ident("alias")
        elif self.current.type is TokenType.IDENT:
            alias = self.current.value
            self._advance()
        return ast.SelectItem(expr, alias)

    def _try_parse_star(self) -> Optional[ast.Star]:
        token = self.current
        if token.type is TokenType.PUNCT and token.value == "*":
            self._advance()
            return ast.Star()
        if (token.type is TokenType.IDENT
                and self._peek().type is TokenType.PUNCT
                and self._peek().value == "."
                and self._peek(2).type is TokenType.PUNCT
                and self._peek(2).value == "*"):
            self._advance()
            self._advance()
            self._advance()
            return ast.Star(token.value)
        return None

    def _expect_ident(self, what: str) -> str:
        token = self.current
        if token.type is not TokenType.IDENT:
            raise ParseError(f"expected {what}, found {token}",
                             token.position)
        self._advance()
        return token.value

    # -- FROM clause ----------------------------------------------------------

    def _parse_from_list(self) -> tuple[ast.FromItem, ...]:
        items = [self._parse_from_item()]
        while self._accept_punct(","):
            items.append(self._parse_from_item())
        return tuple(items)

    def _parse_from_item(self) -> ast.FromItem:
        item: ast.FromItem = self._parse_table_primary()
        while True:
            join_type = self._try_parse_join_type()
            if join_type is None:
                return item
            right = self._parse_table_primary()
            condition: Optional[ast.Condition] = None
            if self._accept_keyword("ON"):
                condition = self._parse_condition()
            elif join_type not in (ast.JoinType.CROSS, ast.JoinType.NATURAL):
                raise ParseError(
                    f"{join_type.value} JOIN requires ON",
                    self.current.position)
            item = ast.Join(item, right, join_type, condition)

    def _try_parse_join_type(self) -> Optional[ast.JoinType]:
        token = self.current
        if token.is_keyword("JOIN"):
            self._advance()
            return ast.JoinType.INNER
        mapping = {
            "INNER": ast.JoinType.INNER,
            "LEFT": ast.JoinType.LEFT,
            "RIGHT": ast.JoinType.RIGHT,
            "FULL": ast.JoinType.FULL,
            "CROSS": ast.JoinType.CROSS,
            "NATURAL": ast.JoinType.NATURAL,
        }
        if token.type is TokenType.KEYWORD and token.value in mapping:
            join_type = mapping[token.value]
            self._advance()
            self._accept_keyword("OUTER")
            self._accept_keyword("INNER")  # NATURAL INNER JOIN
            self._expect_keyword("JOIN")
            return join_type
        return None

    def _parse_table_primary(self) -> ast.TableRef:
        if self._accept_punct("("):
            if self.current.is_keyword("SELECT"):
                raise UnsupportedStatementError("derived table")
            raise ParseError("unexpected '(' in FROM clause",
                             self.current.position)
        name = self._expect_ident("table name")
        while self._accept_punct("."):
            # Schema-qualified names like dbo.PhotoObjAll: keep last part.
            name = self._expect_ident("table name")
        alias: Optional[str] = None
        if self._accept_keyword("AS"):
            alias = self._expect_ident("alias")
        elif self.current.type is TokenType.IDENT:
            alias = self.current.value
            self._advance()
        return ast.TableRef(name, alias)

    # -- conditions -------------------------------------------------------------

    def _parse_condition(self) -> ast.Condition:
        return self._parse_or()

    def _parse_or(self) -> ast.Condition:
        children = [self._parse_and()]
        while self._accept_keyword("OR"):
            children.append(self._parse_and())
        if len(children) == 1:
            return children[0]
        return ast.OrCondition(tuple(children))

    def _parse_and(self) -> ast.Condition:
        children = [self._parse_not()]
        while self._accept_keyword("AND"):
            children.append(self._parse_not())
        if len(children) == 1:
            return children[0]
        return ast.AndCondition(tuple(children))

    def _parse_not(self) -> ast.Condition:
        if self._accept_keyword("NOT"):
            return ast.NotCondition(self._parse_not())
        return self._parse_primary_condition()

    def _parse_primary_condition(self) -> ast.Condition:
        token = self.current
        if token.is_keyword("EXISTS"):
            self._advance()
            self._expect_punct("(")
            query = self.parse_select()
            self._expect_punct(")")
            return ast.Exists(query)
        if token.type is TokenType.PUNCT and token.value == "(":
            grouped = self._try_parse_grouped_condition()
            if grouped is not None:
                return grouped
        return self._parse_predicate()

    def _try_parse_grouped_condition(self) -> Optional[ast.Condition]:
        """Attempt ``( condition )`` with backtracking.

        ``(a + b) > 5`` must fall through to expression parsing, while
        ``(a > 1 OR b < 2)`` must parse as a grouped condition.  We try the
        condition interpretation and roll back the cursor when it either
        fails or is followed by something that only an expression permits.
        """
        saved = self._pos
        self._expect_punct("(")
        try:
            condition = self._parse_condition()
            self._expect_punct(")")
        except (ParseError, UnsupportedStatementError):
            self._pos = saved
            return None
        follow = self.current
        expression_follow = (
            (follow.type is TokenType.OPERATOR)
            or (follow.type is TokenType.PUNCT
                and follow.value in "+-*/%.")
            or follow.is_keyword("BETWEEN", "IN", "LIKE", "IS")
        )
        if expression_follow:
            self._pos = saved
            return None
        return condition

    def _parse_predicate(self) -> ast.Condition:
        expr = self._parse_expr()
        token = self.current
        negated = False
        if token.is_keyword("NOT"):
            # e.g. "x NOT BETWEEN ...", "x NOT IN ...", "x NOT LIKE ..."
            self._advance()
            negated = True
            token = self.current
        if token.is_keyword("BETWEEN"):
            self._advance()
            low = self._parse_expr()
            self._expect_keyword("AND")
            high = self._parse_expr()
            return ast.Between(expr, low, high, negated)
        if token.is_keyword("IN"):
            self._advance()
            return self._parse_in_tail(expr, negated)
        if token.is_keyword("LIKE"):
            self._advance()
            pattern_token = self.current
            if pattern_token.type is not TokenType.STRING:
                raise ParseError("expected string after LIKE",
                                 pattern_token.position)
            self._advance()
            return ast.Like(expr, pattern_token.value, negated)
        if negated:
            raise ParseError("dangling NOT in predicate", token.position)
        if token.is_keyword("IS"):
            self._advance()
            is_negated = self._accept_keyword("NOT")
            self._expect_keyword("NULL")
            return ast.IsNull(expr, is_negated)
        if token.type is TokenType.OPERATOR and token.value in _COMPARISON_OPS:
            op = token.value
            self._advance()
            if self.current.is_keyword("ANY", "SOME", "ALL"):
                quantifier = "ANY" if self.current.value in ("ANY", "SOME") \
                    else "ALL"
                self._advance()
                self._expect_punct("(")
                query = self.parse_select()
                self._expect_punct(")")
                return ast.QuantifiedComparison(expr, op, quantifier, query)
            right = self._parse_expr()
            return ast.Comparison(expr, op, right)
        raise ParseError(f"expected predicate, found {token}", token.position)

    def _parse_in_tail(self, expr: ast.Expr,
                       negated: bool) -> ast.Condition:
        self._expect_punct("(")
        if self.current.is_keyword("SELECT"):
            query = self.parse_select()
            self._expect_punct(")")
            return ast.InSubquery(expr, query, negated)
        values = [self._parse_expr()]
        while self._accept_punct(","):
            values.append(self._parse_expr())
        self._expect_punct(")")
        return ast.InList(expr, tuple(values), negated)

    # -- scalar expressions -------------------------------------------------------

    def _parse_expr_list(self) -> tuple[ast.Expr, ...]:
        exprs = [self._parse_expr()]
        while self._accept_punct(","):
            exprs.append(self._parse_expr())
        return tuple(exprs)

    def _parse_order_list(self) -> tuple[ast.OrderItem, ...]:
        items = [self._parse_order_item()]
        while self._accept_punct(","):
            items.append(self._parse_order_item())
        return tuple(items)

    def _parse_order_item(self) -> ast.OrderItem:
        expr = self._parse_expr()
        descending = False
        if self._accept_keyword("DESC"):
            descending = True
        else:
            self._accept_keyword("ASC")
        return ast.OrderItem(expr, descending)

    def _parse_expr(self) -> ast.Expr:
        expr = self._parse_term()
        while (self.current.type is TokenType.PUNCT
               and self.current.value in "+-"):
            op = self._advance().value
            right = self._parse_term()
            expr = ast.Arithmetic(op, expr, right)
        return expr

    def _parse_term(self) -> ast.Expr:
        expr = self._parse_factor()
        while (self.current.type is TokenType.PUNCT
               and self.current.value in "*/%"):
            op = self._advance().value
            right = self._parse_factor()
            expr = ast.Arithmetic(op, expr, right)
        return expr

    def _parse_factor(self) -> ast.Expr:
        token = self.current
        if token.type is TokenType.PUNCT and token.value == "-":
            self._advance()
            operand = self._parse_factor()
            if isinstance(operand, ast.Literal) and isinstance(
                    operand.value, (int, float)):
                return ast.Literal(-operand.value)
            return ast.UnaryMinus(operand)
        if token.type is TokenType.PUNCT and token.value == "+":
            self._advance()
            return self._parse_factor()
        if token.type is TokenType.NUMBER:
            self._advance()
            return ast.Literal(_parse_number(token.value))
        if token.type is TokenType.STRING:
            self._advance()
            return ast.Literal(token.value)
        if token.is_keyword("NULL"):
            self._advance()
            return ast.Literal(None)
        if token.type is TokenType.PUNCT and token.value == "(":
            self._advance()
            if self.current.is_keyword("SELECT"):
                query = self.parse_select()
                self._expect_punct(")")
                return ast.ScalarSubquery(query)
            expr = self._parse_expr()
            self._expect_punct(")")
            return expr
        if token.type is TokenType.IDENT:
            return self._parse_identifier_expr()
        if token.is_keyword("CASE"):
            raise UnsupportedStatementError("CASE expression")
        raise ParseError(f"expected expression, found {token}",
                         token.position)

    def _parse_identifier_expr(self) -> ast.Expr:
        name = self._expect_ident("identifier")
        if self._accept_punct("("):
            return self._parse_function_tail(name)
        if (self.current.type is TokenType.PUNCT
                and self.current.value == "."):
            self._advance()
            column = self._expect_ident("column name")
            if self._accept_punct("("):
                # Qualified UDF call like dbo.fGetNearbyObjEq(...)
                return self._parse_function_tail(f"{name}.{column}")
            return ast.ColumnExpr(name, column)
        return ast.ColumnExpr(None, name)

    def _parse_function_tail(self, name: str) -> ast.FunctionCall:
        args: list[ast.Expr] = []
        if not self._accept_punct(")"):
            args.append(self._parse_function_arg())
            while self._accept_punct(","):
                args.append(self._parse_function_arg())
            self._expect_punct(")")
        return ast.FunctionCall(name, tuple(args))

    def _parse_function_arg(self) -> ast.Expr:
        if self.current.type is TokenType.PUNCT and self.current.value == "*":
            self._advance()
            return ast.Star()
        self._accept_keyword("DISTINCT")  # COUNT(DISTINCT x)
        return self._parse_expr()


def _parse_number(text: str) -> int | float:
    try:
        return int(text)
    except ValueError:
        pass
    try:
        return float(text)
    except ValueError:
        raise ParseError(f"malformed numeric literal {text!r}") from None
