"""Error types of the SQL front-end.

The paper reports that 67,563 of 12.4M log entries are "not accepted by the
grammar" because they (a) contain errors, (b) use SkyServer-specific UDFs,
or (c) are non-SELECT statements (Section 6.1).  The parser distinguishes
those three failure classes so the extraction-rate experiment (E5) can
report the same taxonomy.
"""

from __future__ import annotations


class SqlError(Exception):
    """Base class for front-end failures."""


class LexError(SqlError):
    """Tokenization failed — the statement contains garbage characters."""

    def __init__(self, message: str, position: int) -> None:
        super().__init__(f"{message} at offset {position}")
        self.position = position


class ParseError(SqlError):
    """The token stream does not match the SELECT grammar."""

    def __init__(self, message: str, position: int = -1) -> None:
        suffix = f" at offset {position}" if position >= 0 else ""
        super().__init__(message + suffix)
        self.position = position


class UnsupportedStatementError(SqlError):
    """A syntactically plausible statement outside the grammar's scope.

    Non-SELECT statements (CREATE TABLE, DECLARE, INSERT, ...) raise this —
    the paper's class (c) of unparseable log entries.
    """

    def __init__(self, keyword: str) -> None:
        super().__init__(f"unsupported statement type: {keyword}")
        self.keyword = keyword
