"""SQL front-end: tokenizer, AST, and SELECT parser.

Stands in for the JSqlParser dependency of the original system
(Section 4.5).  The grammar covers the statement shapes that occur in the
SkyServer query log; everything else raises one of the error types in
:mod:`repro.sqlparser.errors`, reproducing the parse-failure taxonomy of
Section 6.1.
"""

from . import ast
from .errors import (LexError, ParseError, SqlError,
                     UnsupportedStatementError)
from .lexer import Token, TokenType, tokenize
from .parser import parse

__all__ = [
    "ast", "parse", "tokenize", "Token", "TokenType",
    "SqlError", "LexError", "ParseError", "UnsupportedStatementError",
]
