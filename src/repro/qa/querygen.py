"""Randomized SQL per grammar profile, packaged as workload families.

Four profiles mirror the grammar surface the extractor must cover:

* ``simple`` — one relation, a random condition tree (comparisons,
  BETWEEN / NOT BETWEEN, IN lists, LIKE, IS NULL, AND/OR/NOT nesting);
* ``join`` — two or three relations (comma list or JOIN .. ON) plus a
  condition over all of them;
* ``aggregate`` — GROUP BY with a HAVING over SUM/COUNT/MIN/MAX/AVG,
  including NOT and NOT BETWEEN forms (the Section 4.3 lemma mappings);
* ``nested`` — IN / NOT IN subqueries, EXISTS / NOT EXISTS
  (correlated and uncorrelated), and ANY/ALL quantified comparisons.

Each profile is exposed as a :class:`~repro.workload.templates
.QueryFamily`, so batches are drawn through the standard
:func:`~repro.workload.generator.generate_workload` machinery — the
same sizing, shuffling, and seeding path the synthetic log uses.
"""

from __future__ import annotations

import random

from ..schema import ColumnType, Schema
from ..workload.templates import QueryFamily
from .schemagen import CATEGORIES, random_constant

PROFILES = ("simple", "join", "aggregate", "nested")

_OPS = ("<", "<=", "=", ">", ">=", "<>")
_AGGS = ("SUM", "COUNT", "MIN", "MAX", "AVG")


def _numeric_columns(schema: Schema, relation: str) -> list[str]:
    return [c.name for c in schema.relation(relation)
            if c.ctype is not ColumnType.VARCHAR]


def _varchar_columns(schema: Schema, relation: str) -> list[str]:
    return [c.name for c in schema.relation(relation)
            if c.ctype is ColumnType.VARCHAR]


def _qualify(relation: str, column: str, qualified: bool) -> str:
    return f"{relation}.{column}" if qualified else column


def _atom(schema: Schema, relations: list[str], rng: random.Random,
          qualified: bool) -> str:
    """One atomic condition over a random column of the given scope."""
    relation = rng.choice(relations)
    roll = rng.random()
    strings = _varchar_columns(schema, relation)
    if roll < 0.10 and strings:
        column = _qualify(relation, rng.choice(strings), qualified)
        value = rng.choice(CATEGORIES)
        if rng.random() < 0.5:
            neg = "NOT " if rng.random() < 0.5 else ""
            pattern = value if rng.random() < 0.7 else value[0] + "%"
            return f"{column} {neg}LIKE '{pattern}'"
        op = rng.choice(("=", "<>"))
        return f"{column} {op} '{value}'"
    numerics = _numeric_columns(schema, relation)
    column = _qualify(relation, rng.choice(numerics), qualified)
    if roll < 0.30:
        a, b = sorted((random_constant(rng), random_constant(rng)))
        neg = "NOT " if rng.random() < 0.4 else ""
        return f"{column} {neg}BETWEEN {a} AND {b}"
    if roll < 0.40:
        values = sorted({random_constant(rng)
                         for _ in range(rng.randint(1, 3))})
        neg = "NOT " if rng.random() < 0.3 else ""
        inlist = ", ".join(str(v) for v in values)
        return f"{column} {neg}IN ({inlist})"
    if roll < 0.45:
        neg = "NOT " if rng.random() < 0.5 else ""
        return f"{column} IS {neg}NULL"
    if roll < 0.55 and len(relations) > 1:
        other = rng.choice([r for r in relations if r != relation])
        other_col = _qualify(other, rng.choice(
            _numeric_columns(schema, other)), qualified)
        return f"{column} {rng.choice(_OPS)} {other_col}"
    constant = random_constant(rng)
    literal = f"'{constant}'" if rng.random() < 0.08 else str(constant)
    return f"{column} {rng.choice(_OPS)} {literal}"


def _condition(schema: Schema, relations: list[str], rng: random.Random,
               depth: int, qualified: bool) -> str:
    if depth <= 0 or rng.random() < 0.45:
        return _atom(schema, relations, rng, qualified)
    roll = rng.random()
    if roll < 0.25:
        inner = _condition(schema, relations, rng, depth - 1, qualified)
        return f"NOT ({inner})"
    connective = "AND" if roll < 0.65 else "OR"
    n = rng.randint(2, 3)
    parts = [_condition(schema, relations, rng, depth - 1, qualified)
             for _ in range(n)]
    return f" {connective} ".join(f"({p})" for p in parts)


# ---------------------------------------------------------------------------
# Profiles
# ---------------------------------------------------------------------------

def gen_simple(schema: Schema, rng: random.Random) -> str:
    relation = rng.choice([r.name for r in schema])
    cond = _condition(schema, [relation], rng, depth=rng.randint(1, 3),
                      qualified=rng.random() < 0.3)
    return f"SELECT * FROM {relation} WHERE {cond}"


def gen_join(schema: Schema, rng: random.Random) -> str:
    names = [r.name for r in schema]
    if len(names) < 2:
        return gen_simple(schema, rng)
    k = rng.randint(2, len(names))
    relations = rng.sample(names, k)
    cond = _condition(schema, relations, rng, depth=rng.randint(1, 2),
                      qualified=True)
    if rng.random() < 0.5:
        a, b = relations[0], relations[1]
        from_clause = f"{a} JOIN {b} ON {a}.u = {b}.u"
        for extra in relations[2:]:
            from_clause += f" JOIN {extra} ON {a}.u = {extra}.u"
        return f"SELECT * FROM {from_clause} WHERE {cond}"
    joins = " AND ".join(f"{relations[0]}.u = {r}.u"
                         for r in relations[1:])
    return (f"SELECT * FROM {', '.join(relations)} "
            f"WHERE {joins} AND ({cond})")


def gen_aggregate(schema: Schema, rng: random.Random) -> str:
    relation = rng.choice([r.name for r in schema])
    numerics = _numeric_columns(schema, relation)
    group_col = rng.choice(numerics)
    agg = rng.choice(_AGGS)
    agg_arg = "*" if agg == "COUNT" and rng.random() < 0.5 else \
        rng.choice(numerics)
    call = f"{agg}({agg_arg})"
    c = random_constant(rng)
    roll = rng.random()
    if roll < 0.2:
        a, b = sorted((random_constant(rng), random_constant(rng)))
        neg = "NOT " if rng.random() < 0.5 else ""
        having = f"{call} {neg}BETWEEN {a} AND {b}"
    elif roll < 0.4:
        having = f"NOT ({call} {rng.choice(_OPS)} {c})"
    else:
        having = f"{call} {rng.choice(_OPS)} {c}"
    where = ""
    if rng.random() < 0.5:
        cond = _condition(schema, [relation], rng, depth=1,
                          qualified=False)
        where = f" WHERE {cond}"
    return (f"SELECT {group_col}, {call} FROM {relation}{where} "
            f"GROUP BY {group_col} HAVING {having}")


def gen_nested(schema: Schema, rng: random.Random) -> str:
    names = [r.name for r in schema]
    if len(names) < 2:
        return gen_simple(schema, rng)
    outer, inner = rng.sample(names, 2)
    inner_cond = _condition(schema, [inner], rng, depth=1, qualified=False)
    roll = rng.random()
    neg = "NOT " if rng.random() < 0.3 else ""
    if roll < 0.4:
        sub = f"SELECT u FROM {inner} WHERE {inner_cond}"
        return f"SELECT * FROM {outer} WHERE u {neg}IN ({sub})"
    if roll < 0.7:
        corr = f"{inner}.u = {outer}.u AND " if rng.random() < 0.5 else ""
        sub = f"SELECT * FROM {inner} WHERE {corr}({inner_cond})"
        return f"SELECT * FROM {outer} WHERE {neg}EXISTS ({sub})"
    quantifier = rng.choice(("ANY", "ALL"))
    sub = f"SELECT u FROM {inner} WHERE {inner_cond}"
    op = rng.choice(_OPS)
    return f"SELECT * FROM {outer} WHERE u {op} {quantifier} ({sub})"


_GENERATORS = {
    "simple": gen_simple,
    "join": gen_join,
    "aggregate": gen_aggregate,
    "nested": gen_nested,
}


def qa_families(schema: Schema,
                profiles: tuple[str, ...] = PROFILES) -> list[QueryFamily]:
    """One :class:`QueryFamily` per requested profile.

    Equal cardinalities give :func:`generate_workload` an even split;
    family ids are 100+index so they can never collide with the Table-1
    families (1-24).
    """
    families = []
    for index, profile in enumerate(profiles):
        generator = _GENERATORS[profile]

        def generate(rng: random.Random, _gen=generator) -> str:
            return _gen(schema, rng)

        families.append(QueryFamily(
            family_id=100 + index,
            name=f"qa-{profile}",
            relations=tuple(r.name for r in schema),
            cardinality=1000,
            generate=generate,
        ))
    return families
