"""Greedy delta-debugging of conformance failures.

A failing case is a (statement, database) pair plus a failure predicate.
Shrinking alternates two passes until a fixpoint:

* **state minimization** — drop database rows one at a time while the
  failure persists (the classic ddmin inner loop, granularity 1: our
  states are tiny, so the quadratic pass is cheap and yields the true
  1-minimal state);
* **query minimization** — try one-step structural reductions of the
  WHERE / HAVING trees (unwrap NOT, drop a conjunct/disjunct, split a
  BETWEEN into one bound, thin an IN list, simplify a subquery's WHERE)
  and of the FROM list.

The failure predicate guards executability itself: a reduction that
makes the statement unparseable-to-the-engine simply fails to
reproduce and is rejected.
"""

from __future__ import annotations

from dataclasses import replace
from typing import Callable, Iterator

from ..engine import Database
from ..sqlparser import ast

FailurePredicate = Callable[[ast.SelectStatement, Database], bool]

#: hard cap on predicate evaluations per shrink, against pathological trees
MAX_ATTEMPTS = 2000


def shrink_case(stmt: ast.SelectStatement, db: Database,
                still_fails: FailurePredicate
                ) -> tuple[ast.SelectStatement, Database]:
    """1-minimal (statement, state) pair still exhibiting the failure."""
    budget = [MAX_ATTEMPTS]

    def attempt(candidate_stmt: ast.SelectStatement,
                candidate_db: Database) -> bool:
        if budget[0] <= 0:
            return False
        budget[0] -= 1
        try:
            return still_fails(candidate_stmt, candidate_db)
        except Exception:
            return False

    changed = True
    while changed and budget[0] > 0:
        changed = False
        db, removed = _shrink_rows(stmt, db, attempt)
        changed = changed or removed
        stmt, reduced = _shrink_statement(stmt, db, attempt)
        changed = changed or reduced
    return stmt, db


# ---------------------------------------------------------------------------
# Database-state minimization
# ---------------------------------------------------------------------------

def _without_row(db: Database, relation: str, index: int) -> Database:
    reduced = Database(db.schema)
    for table in db.tables:
        rows = table.rows
        if table.name == relation:
            rows = rows[:index] + rows[index + 1:]
        reduced.insert(table.name, rows)
    return reduced


def _shrink_rows(stmt: ast.SelectStatement, db: Database,
                 attempt) -> tuple[Database, bool]:
    shrunk = False
    progress = True
    while progress:
        progress = False
        for table in db.tables:
            for index in range(len(table.rows)):
                candidate = _without_row(db, table.name, index)
                if attempt(stmt, candidate):
                    db = candidate
                    shrunk = progress = True
                    break
            if progress:
                break
    return db, shrunk


# ---------------------------------------------------------------------------
# Statement minimization
# ---------------------------------------------------------------------------

def _shrink_statement(stmt: ast.SelectStatement, db: Database,
                      attempt) -> tuple[ast.SelectStatement, bool]:
    shrunk = False
    progress = True
    while progress:
        progress = False
        for candidate in _statement_reductions(stmt):
            if attempt(candidate, db):
                stmt = candidate
                shrunk = progress = True
                break
    return stmt, shrunk


def _statement_reductions(stmt: ast.SelectStatement
                          ) -> Iterator[ast.SelectStatement]:
    if stmt.where is not None:
        yield replace(stmt, where=None)
        for reduced in _condition_reductions(stmt.where):
            yield replace(stmt, where=reduced)
    if stmt.having is not None:
        yield replace(stmt, having=None)
        for reduced in _condition_reductions(stmt.having):
            yield replace(stmt, having=reduced)
    if len(stmt.from_items) > 1:
        for index in range(len(stmt.from_items)):
            kept = (stmt.from_items[:index]
                    + stmt.from_items[index + 1:])
            yield replace(stmt, from_items=kept)


def _condition_reductions(cond: ast.Condition
                          ) -> Iterator[ast.Condition]:
    """One-step structurally smaller variants of a condition tree."""
    if isinstance(cond, ast.NotCondition):
        yield cond.child
        for reduced in _condition_reductions(cond.child):
            yield ast.NotCondition(reduced)
    elif isinstance(cond, (ast.AndCondition, ast.OrCondition)):
        cls = type(cond)
        children = cond.children
        for index, child in enumerate(children):
            yield child
            rest = children[:index] + children[index + 1:]
            if len(rest) == 1:
                yield rest[0]
            elif rest:
                yield cls(rest)
            for reduced in _condition_reductions(child):
                yield cls(children[:index] + (reduced,)
                          + children[index + 1:])
    elif isinstance(cond, ast.Between):
        yield ast.Comparison(cond.expr, "<" if cond.negated else ">=",
                             cond.low)
        yield ast.Comparison(cond.expr, ">" if cond.negated else "<=",
                             cond.high)
        if cond.negated:
            yield ast.Between(cond.expr, cond.low, cond.high,
                              negated=False)
    elif isinstance(cond, ast.InList):
        if len(cond.values) > 1:
            for index in range(len(cond.values)):
                kept = cond.values[:index] + cond.values[index + 1:]
                yield ast.InList(cond.expr, kept, cond.negated)
        elif cond.negated:
            yield ast.InList(cond.expr, cond.values, negated=False)
    elif isinstance(cond, ast.Exists):
        for query in _subquery_reductions(cond.query):
            yield ast.Exists(query, cond.negated)
        if cond.negated:
            yield ast.Exists(cond.query, negated=False)
    elif isinstance(cond, ast.InSubquery):
        for query in _subquery_reductions(cond.query):
            yield ast.InSubquery(cond.expr, query, cond.negated)
        if cond.negated:
            yield ast.InSubquery(cond.expr, cond.query, negated=False)
    elif isinstance(cond, ast.QuantifiedComparison):
        for query in _subquery_reductions(cond.query):
            yield ast.QuantifiedComparison(cond.expr, cond.op,
                                           cond.quantifier, query)


def _subquery_reductions(query: ast.SelectStatement
                         ) -> Iterator[ast.SelectStatement]:
    if query.where is not None:
        yield replace(query, where=None)
        for reduced in _condition_reductions(query.where):
            yield replace(query, where=reduced)
