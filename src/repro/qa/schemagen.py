"""Random schemas and database states for the conformance harness.

The generator optimizes for *collision density*, not realism: a few
relations sharing a join column, integer values drawn from a tiny
universe, and constants drawn from the same universe (plus its edges)
so that boundary conditions — BETWEEN endpoints, negated intervals,
aggregate thresholds — are hit constantly rather than almost never.
"""

from __future__ import annotations

import random

from ..engine import Database
from ..schema import Column, ColumnType, Relation, Schema

#: the tiny value universe of every generated integer column
VALUE_LO, VALUE_HI = -3, 5

#: categorical values for VARCHAR columns
CATEGORIES = ("alpha", "beta", "gamma", "a1")

#: probability that a nullable column's cell is NULL
NULL_FRACTION = 0.08

#: column pools per relation; "u" is the shared join column
_RELATION_POOL: tuple[tuple[str, tuple[tuple[str, ColumnType], ...]], ...] = (
    ("T", (("u", ColumnType.INT), ("v", ColumnType.INT),
           ("s", ColumnType.VARCHAR))),
    ("S", (("u", ColumnType.INT), ("w", ColumnType.INT))),
    ("R", (("u", ColumnType.INT), ("x", ColumnType.FLOAT))),
)


def random_schema(rng: random.Random, n_relations: int | None = None
                  ) -> Schema:
    """A schema of 1-3 relations drawn from the fixed pool.

    Relation ``T`` is always present (every profile queries it); the
    others join through the shared ``u`` column.
    """
    if n_relations is None:
        n_relations = rng.randint(1, len(_RELATION_POOL))
    n_relations = max(1, min(n_relations, len(_RELATION_POOL)))
    schema = Schema("qa")
    for name, columns in _RELATION_POOL[:n_relations]:
        schema.add(Relation(name, tuple(
            Column(cname, ctype) for cname, ctype in columns)))
    return schema


def random_row(relation: Relation, rng: random.Random) -> dict:
    row: dict = {}
    for column in relation:
        if rng.random() < NULL_FRACTION:
            row[column.name] = None
        elif column.ctype is ColumnType.VARCHAR:
            row[column.name] = rng.choice(CATEGORIES)
        elif column.ctype is ColumnType.FLOAT:
            # Half-integers keep float boundaries decidable exactly.
            row[column.name] = rng.randint(2 * VALUE_LO, 2 * VALUE_HI) / 2
        else:
            row[column.name] = rng.randint(VALUE_LO, VALUE_HI)
    return row


def random_database(schema: Schema, rng: random.Random,
                    max_rows: int = 8) -> Database:
    """A small dense state: 1..max_rows rows per relation."""
    db = Database(schema)
    for relation in schema:
        n = rng.randint(1, max_rows)
        db.insert(relation.name,
                  [random_row(relation, rng) for _ in range(n)])
    return db


def random_constant(rng: random.Random) -> int:
    """An integer constant overlapping the value universe and its edges."""
    return rng.randint(VALUE_LO - 1, VALUE_HI + 1)
