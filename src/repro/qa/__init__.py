"""Differential conformance testing of the access-area extractor.

The paper's central claim (Definitions 1-4, Lemmas 1-6) is that the
extracted access area is a *state-independent over-set* of every tuple
that can influence a query's result.  This package checks that claim
mechanically, across randomized schemas, database states, and queries:

* :mod:`repro.qa.schemagen` — random schemas and small dense database
  states (small value universes maximize boundary collisions);
* :mod:`repro.qa.querygen` — random SQL per grammar profile
  (``simple`` / ``join`` / ``aggregate`` / ``nested``), packaged as
  :class:`~repro.workload.templates.QueryFamily` objects and drawn
  through :func:`~repro.workload.generator.generate_workload`;
* :mod:`repro.qa.oracle` — the two checked properties: **soundness**
  (state-perturbation influence probes a la Lemmas 1-3: every tuple
  whose removal changes the result must lie inside the area) and
  **metamorphic stability** (semantics-preserving rewrites produce
  identical canonical fingerprints and distance 0);
* :mod:`repro.qa.shrink` — delta-debugging of failures down to a
  minimal query + minimal database state;
* :mod:`repro.qa.corpus` — JSON serialization of shrunken failures
  into ``tests/qa/corpus`` for regression replay;
* :mod:`repro.qa.harness` — the run loop behind ``repro qa``, with
  ``repro_qa_*`` metrics and spans through :mod:`repro.obs`.
"""

from .corpus import QACase, load_case, load_corpus, replay_case, save_case
from .harness import QAConfig, QAReport, run_qa
from .oracle import (REWRITES, ConformanceFailure, check_metamorphic,
                     check_soundness, covers_tuple, influence_probe)
from .querygen import PROFILES, qa_families
from .schemagen import random_database, random_schema

__all__ = [
    "PROFILES",
    "QACase",
    "QAConfig",
    "QAReport",
    "ConformanceFailure",
    "REWRITES",
    "check_metamorphic",
    "check_soundness",
    "covers_tuple",
    "influence_probe",
    "load_case",
    "load_corpus",
    "qa_families",
    "random_database",
    "random_schema",
    "replay_case",
    "run_qa",
    "save_case",
]
