"""The two conformance properties: soundness and metamorphic stability.

**Soundness** (Definitions 1-4).  The access area must be a
state-independent over-set of every tuple that can influence the query's
result.  The probe is the one the lemmas are proved with: remove one
tuple from the database, re-execute, and look for base-result rows that
vanished or changed — that certifies the tuple contributed, and it must
then satisfy the area's CNF under *partial* evaluation (only the
tuple's own relation is bound; predicates touching other relations, or
NULL values, count as satisfiable — a conservative three-valued
treatment that can never raise a false alarm).

**Metamorphic stability** (the PR-4 canonical fingerprint contract).
Semantics-preserving rewrites of the statement — BETWEEN <-> bound
pairs, De Morgan / NNF push-down, double negation, join-order
commutation — must extract to areas with identical canonical
fingerprints and distance 0.  Equality is only required of *exact*
extractions: a widening approximation (``ExtractionResult.exact`` is
False) legitimately loses syntactic information, so inexact areas are
checked for soundness only.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Any, Callable, Optional

from ..core.area import AccessArea
from ..core.extractor import AccessAreaExtractor
from ..engine import Database, QueryExecutor
from ..engine.executor import ExecutionError
from ..algebra.predicates import (ColumnColumnPredicate,
                                  ColumnConstantPredicate)
from ..distance.query_distance import QueryDistance
from ..sqlparser import ast

Row = dict[str, Any]


@dataclass(frozen=True)
class ConformanceFailure:
    """One confirmed oracle violation."""

    kind: str  # "soundness" | "metamorphic"
    sql: str
    detail: str
    rewrite: Optional[str] = None
    rewritten_sql: Optional[str] = None
    relation: Optional[str] = None
    row: Optional[Row] = None

    def __str__(self) -> str:
        parts = [f"[{self.kind}] {self.sql}"]
        if self.rewrite:
            parts.append(f"  rewrite {self.rewrite}: {self.rewritten_sql}")
        if self.relation is not None:
            parts.append(f"  tuple {self.relation} {self.row}")
        parts.append(f"  {self.detail}")
        return "\n".join(parts)


# ---------------------------------------------------------------------------
# Soundness: partial CNF evaluation + influence probe
# ---------------------------------------------------------------------------

def covers_tuple(area: AccessArea, relation: str, row: Row) -> bool:
    """Can ``row`` (of ``relation``) extend to a tuple inside the area?

    Three-valued partial evaluation of the CNF: a clause is satisfiable
    when any of its predicates either touches an *unbound* relation,
    reads a NULL value (the value-space model does not constrain NULL
    membership), or evaluates to True on the bound values.  Only a
    clause whose every predicate is fully bound, non-NULL, and False
    rules the tuple out — so a ``False`` here is definitive.
    """
    rel_lower = relation.lower()
    values = {key.lower(): value for key, value in row.items()}
    for clause in area.cnf:
        satisfiable = False
        for pred in clause.predicates:
            if any(ref.relation.lower() != rel_lower
                   for ref in pred.columns):
                satisfiable = True
                break
            bound = [values.get(ref.column.lower()) for ref in pred.columns]
            if any(value is None for value in bound):
                satisfiable = True
                break
            if isinstance(pred, ColumnConstantPredicate):
                if pred.evaluate(bound[0]):
                    satisfiable = True
                    break
            elif isinstance(pred, ColumnColumnPredicate):
                if pred.evaluate(bound[0], bound[1]):
                    satisfiable = True
                    break
            else:  # unknown predicate kind: never rule out
                satisfiable = True
                break
        if not satisfiable:
            return False
    return True


def _canonical_value(value: Any) -> tuple:
    if value is None:
        return ("_",)
    if isinstance(value, bool):
        return ("b", value)
    if isinstance(value, (int, float)):
        return ("n", float(value))
    return ("s", str(value))


def result_key(rows: list[Row]) -> tuple:
    """Order-insensitive canonical identity of a result set."""
    return tuple(sorted(
        tuple(sorted((k.lower(), _canonical_value(v))
                     for k, v in row.items()))
        for row in rows))


def _result_counter(rows: list[Row]):
    from collections import Counter
    return Counter(
        tuple(sorted((k.lower(), _canonical_value(v))
                     for k, v in row.items()))
        for row in rows)


def execute_statement(stmt: ast.SelectStatement,
                      db: Database) -> Optional[list[Row]]:
    """Run one statement; ``None`` when the engine rejects it."""
    try:
        return QueryExecutor(db).execute(stmt).rows
    except ExecutionError:
        return None


def _without_row(db: Database, relation: str, index: int) -> Database:
    reduced = Database(db.schema)
    for table in db.tables:
        rows = table.rows
        if table.name == relation:
            rows = rows[:index] + rows[index + 1:]
        reduced.insert(table.name, rows)
    return reduced


def influence_probe(stmt: ast.SelectStatement, db: Database
                    ) -> Optional[list[tuple[str, Row]]]:
    """Tuples that *contribute* to the current result (Lemmas 1-3 style).

    A tuple contributes when removing it makes some base-result row
    vanish or change — the one-directional probe matching the paper's
    accessed-data notion.  The direction matters: removal can also *add*
    result rows (removing the minimal element of a group flips
    ``HAVING MIN(a) > c`` from false to true), and such "blocking"
    tuples are deliberately outside the access area (Lemma 1's
    sigma_{a>c} region would otherwise be wrong), so a symmetric
    result-changed test would raise false alarms on exact lemma areas.

    Returns ``None`` when the base statement does not execute.
    """
    base = execute_statement(stmt, db)
    if base is None:
        return None
    base_count = _result_counter(base)
    influencing: list[tuple[str, Row]] = []
    for table in db.tables:
        for index, row in enumerate(table.rows):
            perturbed = execute_statement(
                stmt, _without_row(db, table.name, index))
            if perturbed is None:
                continue  # engine rejected the perturbed state: no signal
            if base_count - _result_counter(perturbed):
                influencing.append((table.name, row))
    return influencing


def check_soundness(sql: str, stmt: ast.SelectStatement, db: Database,
                    extractor: AccessAreaExtractor
                    ) -> Optional[list[ConformanceFailure]]:
    """Every influencing tuple must lie inside the extracted area.

    Returns ``None`` when the statement is not executable (nothing to
    check), otherwise the list of violations (empty = pass).
    """
    influencing = influence_probe(stmt, db)
    if influencing is None:
        return None
    area = extractor.extract_statement(stmt).area
    failures = []
    for relation, row in influencing:
        if not covers_tuple(area, relation, row):
            failures.append(ConformanceFailure(
                kind="soundness", sql=sql, relation=relation, row=row,
                detail=f"influencing tuple outside area {area}"))
    return failures


# ---------------------------------------------------------------------------
# Metamorphic rewrites (semantics-preserving by construction)
# ---------------------------------------------------------------------------

def _map_condition(cond: ast.Condition,
                   fn: Callable[[ast.Condition], ast.Condition]
                   ) -> ast.Condition:
    """Bottom-up structural map over a condition tree."""
    if isinstance(cond, ast.AndCondition):
        cond = ast.AndCondition(tuple(
            _map_condition(c, fn) for c in cond.children))
    elif isinstance(cond, ast.OrCondition):
        cond = ast.OrCondition(tuple(
            _map_condition(c, fn) for c in cond.children))
    elif isinstance(cond, ast.NotCondition):
        cond = ast.NotCondition(_map_condition(cond.child, fn))
    return fn(cond)


def _rw_between(stmt: ast.SelectStatement
                ) -> Optional[ast.SelectStatement]:
    """BETWEEN <-> bound-pair: every BETWEEN becomes two comparisons."""
    changed = False

    def expand(cond: ast.Condition) -> ast.Condition:
        nonlocal changed
        if isinstance(cond, ast.Between):
            changed = True
            pair = ast.AndCondition((
                ast.Comparison(cond.expr, ">=", cond.low),
                ast.Comparison(cond.expr, "<=", cond.high)))
            return ast.NotCondition(pair) if cond.negated else pair
        return cond

    if stmt.where is None:
        return None
    where = _map_condition(stmt.where, expand)
    return replace(stmt, where=where) if changed else None


_NEGATED_OP = {"=": "<>", "<>": "=", "<": ">=", ">=": "<",
               ">": "<=", "<=": ">"}


def _push_not(cond: ast.Condition) -> ast.Condition:
    """NNF push-down at the *SQL* level (preserves query semantics)."""
    if isinstance(cond, ast.NotCondition):
        child = cond.child
        if isinstance(child, ast.NotCondition):
            return _push_not(child.child)
        if isinstance(child, ast.AndCondition):
            return ast.OrCondition(tuple(
                _push_not(ast.NotCondition(c)) for c in child.children))
        if isinstance(child, ast.OrCondition):
            return ast.AndCondition(tuple(
                _push_not(ast.NotCondition(c)) for c in child.children))
        if isinstance(child, ast.Between):
            return ast.Between(child.expr, child.low, child.high,
                               negated=not child.negated)
        if isinstance(child, ast.InList):
            return ast.InList(child.expr, child.values,
                              negated=not child.negated)
        if isinstance(child, ast.Like):
            return ast.Like(child.expr, child.pattern,
                            negated=not child.negated)
        if isinstance(child, ast.IsNull):
            return ast.IsNull(child.expr, negated=not child.negated)
        if isinstance(child, ast.Comparison) and \
                isinstance(child.op, str) and child.op in _NEGATED_OP:
            return ast.Comparison(child.left, _NEGATED_OP[child.op],
                                  child.right)
        return cond
    if isinstance(cond, ast.AndCondition):
        return ast.AndCondition(tuple(
            _push_not(c) for c in cond.children))
    if isinstance(cond, ast.OrCondition):
        return ast.OrCondition(tuple(
            _push_not(c) for c in cond.children))
    return cond


def _rw_demorgan(stmt: ast.SelectStatement
                 ) -> Optional[ast.SelectStatement]:
    """De Morgan / NNF push-down of every NOT over a connective."""
    if stmt.where is None:
        return None
    where = _push_not(stmt.where)
    if where == stmt.where:
        return None
    return replace(stmt, where=where)


def _rw_not_not(stmt: ast.SelectStatement
                ) -> Optional[ast.SelectStatement]:
    """Double negation: WHERE c  ->  WHERE NOT (NOT c)."""
    if stmt.where is None:
        return None
    return replace(stmt, where=ast.NotCondition(
        ast.NotCondition(stmt.where)))


def _rw_join_commute(stmt: ast.SelectStatement
                     ) -> Optional[ast.SelectStatement]:
    """Commute the FROM list / swap INNER JOIN sides."""
    items = stmt.from_items
    if len(items) > 1:
        return replace(stmt, from_items=tuple(reversed(items)))
    if len(items) == 1 and isinstance(items[0], ast.Join):
        join = items[0]
        if join.join_type in (ast.JoinType.INNER, ast.JoinType.CROSS):
            swapped = ast.Join(join.right, join.left, join.join_type,
                               join.condition)
            return replace(stmt, from_items=(swapped,))
    return None


REWRITES: tuple[tuple[str, Callable[[ast.SelectStatement],
                                    Optional[ast.SelectStatement]]], ...] = (
    ("between_range", _rw_between),
    ("demorgan_nnf", _rw_demorgan),
    ("not_not", _rw_not_not),
    ("join_commute", _rw_join_commute),
)


@dataclass
class MetamorphicOutcome:
    """Counts from one statement's metamorphic checks."""

    checked: int = 0
    skipped_inexact: int = 0
    failures: list[ConformanceFailure] = field(default_factory=list)


def check_metamorphic(sql: str, stmt: ast.SelectStatement,
                      extractor: AccessAreaExtractor,
                      distance: Optional[QueryDistance] = None
                      ) -> MetamorphicOutcome:
    """Rewritten statements must extract to fingerprint-equal areas.

    Equality is asserted only when both extractions are exact; inexact
    extractions are recorded as skipped (their soundness is still
    covered by :func:`check_soundness`).
    """
    outcome = MetamorphicOutcome()
    base = extractor.extract_statement(stmt)
    for name, rewrite in REWRITES:
        rewritten = rewrite(stmt)
        if rewritten is None:
            continue
        other = extractor.extract_statement(rewritten)
        if not (base.exact and other.exact):
            outcome.skipped_inexact += 1
            continue
        outcome.checked += 1
        if base.area != other.area:
            outcome.failures.append(ConformanceFailure(
                kind="metamorphic", sql=sql, rewrite=name,
                rewritten_sql=str(rewritten),
                detail=(f"fingerprints differ: {base.area} "
                        f"vs {other.area}")))
            continue
        if distance is not None:
            d = distance(base.area, other.area)
            if d != 0:
                outcome.failures.append(ConformanceFailure(
                    kind="metamorphic", sql=sql, rewrite=name,
                    rewritten_sql=str(rewritten),
                    detail=f"distance {d} != 0 on equal fingerprints"))
    return outcome
