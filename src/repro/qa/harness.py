"""The conformance run loop behind ``repro qa``.

Each profile's budget is drawn in small chunks; every chunk gets a
fresh randomized schema and database state (so the sweep covers many
states, not one), and its statements are produced by the standard
workload generator over the profile's
:class:`~repro.workload.templates.QueryFamily`.  Every statement is
probed for soundness (state-perturbation influence probe) and
metamorphic stability; failures are shrunk to minimal cases and
serialized for the regression corpus.

Observability: one ``qa`` root span with a child span per profile, and
``repro_qa_*`` counters/histograms in the process metrics registry.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Optional

from ..core.extractor import AccessAreaExtractor
from ..distance.query_distance import QueryDistance
from ..engine import Database
from ..obs import get_logger, get_registry, profile_section, trace
from ..schema import Schema
from ..schema.statistics import StatisticsCatalog
from ..sqlparser import SqlError, ast, parse
from ..workload.generator import WorkloadConfig, generate_workload
from .corpus import QACase, case_from_state, save_case
from .oracle import (ConformanceFailure, check_metamorphic,
                     check_soundness, covers_tuple, influence_probe)
from .querygen import PROFILES, qa_families
from .schemagen import random_database, random_schema
from .shrink import shrink_case

logger = get_logger("qa")

#: statements drawn per (schema, database) state
CHUNK_SIZE = 25


@dataclass(frozen=True)
class QAConfig:
    """Knobs of one conformance run."""

    n_queries: int = 200
    seed: int = 0
    profiles: tuple[str, ...] = PROFILES
    max_rows: int = 6
    shrink: bool = True
    corpus_dir: Optional[str] = None


@dataclass
class ProfileStats:
    """Per-profile outcome counts."""

    generated: int = 0
    skipped: int = 0  # engine rejected the statement
    soundness_checks: int = 0
    soundness_failures: int = 0
    metamorphic_checks: int = 0
    metamorphic_skipped_inexact: int = 0
    metamorphic_failures: int = 0


@dataclass
class QAReport:
    """Outcome of one conformance run."""

    config: QAConfig
    profiles: dict[str, ProfileStats] = field(default_factory=dict)
    failures: list[QACase] = field(default_factory=list)
    corpus_paths: list[str] = field(default_factory=list)

    @property
    def soundness_failures(self) -> int:
        return sum(p.soundness_failures for p in self.profiles.values())

    @property
    def metamorphic_failures(self) -> int:
        return sum(p.metamorphic_failures for p in self.profiles.values())

    @property
    def ok(self) -> bool:
        return self.soundness_failures == 0 and \
            self.metamorphic_failures == 0

    def summary(self) -> str:
        lines = []
        for profile, stats in self.profiles.items():
            lines.append(
                f"{profile:>10}: {stats.generated} queries "
                f"({stats.skipped} skipped), "
                f"soundness {stats.soundness_failures}"
                f"/{stats.soundness_checks} failed, "
                f"metamorphic {stats.metamorphic_failures}"
                f"/{stats.metamorphic_checks} failed "
                f"({stats.metamorphic_skipped_inexact} inexact skipped)")
        verdict = "OK" if self.ok else \
            (f"FAIL: {self.soundness_failures} soundness, "
             f"{self.metamorphic_failures} metamorphic")
        lines.append(verdict)
        return "\n".join(lines)


def _chunk_statements(profile: str, schema: Schema, n: int,
                      seed: int) -> list[str]:
    """Draw one chunk of statements through the workload generator."""
    config = WorkloadConfig(
        n_queries=n, seed=seed, noise_fraction=0.0, error_fraction=0.0,
        malformed_fraction=0.0, min_family_size=1,
        repeat_user_fraction=0.0)
    workload = generate_workload(config, qa_families(schema, (profile,)))
    return workload.log.statements()[:n]


def _soundness_still_fails(sql_extractor_factory):
    """Failure predicate for the shrinker: some influencing tuple is
    outside the (re-extracted) area of the candidate statement."""

    def predicate(stmt: ast.SelectStatement, db: Database) -> bool:
        influencing = influence_probe(stmt, db)
        if not influencing:
            return False
        area = sql_extractor_factory(db).extract_statement(stmt).area
        return any(not covers_tuple(area, relation, row)
                   for relation, row in influencing)

    return predicate


def _metamorphic_still_fails(rewrite_name: str):
    """Failure predicate: the named rewrite still splits fingerprints."""
    from .oracle import REWRITES
    rewrite = dict(REWRITES)[rewrite_name]

    def predicate(stmt: ast.SelectStatement, db: Database) -> bool:
        extractor = AccessAreaExtractor(db.schema)
        rewritten = rewrite(stmt)
        if rewritten is None:
            return False
        base = extractor.extract_statement(stmt)
        other = extractor.extract_statement(rewritten)
        if not (base.exact and other.exact):
            return False
        return base.area != other.area

    return predicate


def run_qa(config: QAConfig) -> QAReport:
    """Run the full conformance sweep described by ``config``."""
    registry = get_registry()
    report = QAReport(config)
    rng = random.Random(config.seed)
    per_profile = max(1, config.n_queries // len(config.profiles))

    with trace.span("qa", seed=config.seed, n_queries=config.n_queries):
        for profile in config.profiles:
            stats = ProfileStats()
            report.profiles[profile] = stats
            with trace.span(f"qa.{profile}") as span, \
                    profile_section(f"qa.{profile}"):
                _run_profile(profile, per_profile, config, rng, stats,
                             report)
                span.set(generated=stats.generated,
                         soundness_failures=stats.soundness_failures,
                         metamorphic_failures=stats.metamorphic_failures)
            registry.counter("repro_qa_queries",
                             profile=profile).inc(stats.generated)
            registry.counter("repro_qa_skipped",
                             profile=profile).inc(stats.skipped)
            registry.counter(
                "repro_qa_soundness_failures",
                profile=profile).inc(stats.soundness_failures)
            registry.counter(
                "repro_qa_metamorphic_failures",
                profile=profile).inc(stats.metamorphic_failures)
            registry.counter(
                "repro_qa_inexact_skips",
                profile=profile).inc(stats.metamorphic_skipped_inexact)
    return report


def _run_profile(profile: str, budget: int, config: QAConfig,
                 rng: random.Random, stats: ProfileStats,
                 report: QAReport) -> None:
    remaining = budget
    while remaining > 0:
        chunk = min(CHUNK_SIZE, remaining)
        remaining -= chunk
        schema = random_schema(rng)
        db = random_database(schema, rng, config.max_rows)
        extractor = AccessAreaExtractor(schema)
        distance = QueryDistance(
            StatisticsCatalog.from_exact_content(schema, {}))
        statements = _chunk_statements(profile, schema, chunk,
                                       seed=rng.randint(0, 2 ** 31))
        for sql in statements:
            stats.generated += 1
            try:
                stmt = parse(sql)
            except SqlError:  # generator bug, not an extraction bug
                logger.warning("generated unparseable SQL: %s", sql)
                stats.skipped += 1
                continue
            _check_one(profile, sql, stmt, schema, db, extractor,
                       distance, config, stats, report)


def _check_one(profile: str, sql: str, stmt: ast.SelectStatement,
               schema: Schema, db: Database,
               extractor: AccessAreaExtractor, distance: QueryDistance,
               config: QAConfig, stats: ProfileStats,
               report: QAReport) -> None:
    soundness = check_soundness(sql, stmt, db, extractor)
    if soundness is None:
        stats.skipped += 1
    else:
        stats.soundness_checks += 1
        if soundness:
            stats.soundness_failures += len(soundness)
            _record_failure(profile, soundness[0], stmt, db, config,
                            report)

    outcome = check_metamorphic(sql, stmt, extractor, distance)
    stats.metamorphic_checks += outcome.checked
    stats.metamorphic_skipped_inexact += outcome.skipped_inexact
    if outcome.failures:
        stats.metamorphic_failures += len(outcome.failures)
        _record_failure(profile, outcome.failures[0], stmt, db, config,
                        report)


def _record_failure(profile: str, failure: ConformanceFailure,
                    stmt: ast.SelectStatement, db: Database,
                    config: QAConfig, report: QAReport) -> None:
    logger.error("conformance failure:\n%s", failure)
    if config.shrink:
        if failure.kind == "soundness":
            predicate = _soundness_still_fails(
                lambda d: AccessAreaExtractor(d.schema))
        else:
            predicate = _metamorphic_still_fails(failure.rewrite)
        stmt, db = shrink_case(stmt, db, predicate)
    name = f"{failure.kind}-{profile}-{len(report.failures) + 1}"
    case = case_from_state(name, failure, db.schema, db, str(stmt),
                           seed=config.seed)
    report.failures.append(case)
    if config.corpus_dir:
        path = save_case(config.corpus_dir, case)
        report.corpus_paths.append(str(path))
        logger.info("shrunken case written to %s", path)
