"""Seed-corpus serialization and replay.

Every shrunken failure becomes one JSON file under ``tests/qa/corpus``:
the minimal SQL, the minimal database state, and the schema needed to
rebuild both.  The corpus replays as ordinary regression tests — each
historical bug stays pinned forever, independent of the randomized
sweep that originally found it.
"""

from __future__ import annotations

import json
import re
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Optional

from ..core.extractor import AccessAreaExtractor
from ..distance.query_distance import QueryDistance
from ..engine import Database
from ..schema import Column, ColumnType, Relation, Schema
from ..schema.statistics import StatisticsCatalog
from ..sqlparser import parse
from .oracle import ConformanceFailure, check_metamorphic, check_soundness


@dataclass
class QACase:
    """One serialized conformance case (usually a shrunken failure)."""

    name: str
    kind: str  # "soundness" | "metamorphic"
    sql: str
    #: relation -> [[column, type-name], ...]
    schema: dict[str, list[list[str]]]
    #: relation -> row dicts
    rows: dict[str, list[dict]]
    detail: str = ""
    rewrite: Optional[str] = None
    seed: Optional[int] = None

    def to_json(self) -> dict[str, Any]:
        return {
            "name": self.name,
            "kind": self.kind,
            "sql": self.sql,
            "schema": self.schema,
            "rows": self.rows,
            "detail": self.detail,
            "rewrite": self.rewrite,
            "seed": self.seed,
        }

    @staticmethod
    def from_json(payload: dict[str, Any]) -> "QACase":
        return QACase(
            name=payload["name"],
            kind=payload["kind"],
            sql=payload["sql"],
            schema={rel: [list(col) for col in cols]
                    for rel, cols in payload["schema"].items()},
            rows=payload["rows"],
            detail=payload.get("detail", ""),
            rewrite=payload.get("rewrite"),
            seed=payload.get("seed"),
        )


def case_from_state(name: str, failure: ConformanceFailure,
                    schema: Schema, db: Database,
                    sql: str, seed: Optional[int] = None) -> QACase:
    """Package a (possibly shrunken) failing state as a corpus case."""
    return QACase(
        name=name,
        kind=failure.kind,
        sql=sql,
        schema={relation.name: [[c.name, c.ctype.value] for c in relation]
                for relation in schema},
        rows={table.name: [dict(row) for row in table.rows]
              for table in db.tables},
        detail=failure.detail,
        rewrite=failure.rewrite,
        seed=seed,
    )


def build_state(case: QACase) -> tuple[Schema, Database]:
    """Rebuild the schema and database a case was serialized from."""
    schema = Schema("qa")
    for rel_name, columns in case.schema.items():
        schema.add(Relation(rel_name, tuple(
            Column(col_name, ColumnType(type_name))
            for col_name, type_name in columns)))
    db = Database(schema)
    for rel_name, rows in case.rows.items():
        db.insert(rel_name, rows)
    return schema, db


def replay_case(case: QACase) -> list[ConformanceFailure]:
    """Re-run both oracle checks on a case; empty list = green."""
    schema, db = build_state(case)
    extractor = AccessAreaExtractor(schema)
    stmt = parse(case.sql)
    failures: list[ConformanceFailure] = []
    soundness = check_soundness(case.sql, stmt, db, extractor)
    if soundness:
        failures.extend(soundness)
    distance = QueryDistance(StatisticsCatalog.from_exact_content(
        schema, {}))
    outcome = check_metamorphic(case.sql, stmt, extractor, distance)
    failures.extend(outcome.failures)
    return failures


# ---------------------------------------------------------------------------
# Filesystem
# ---------------------------------------------------------------------------

def _slug(text: str) -> str:
    return re.sub(r"[^a-z0-9]+", "-", text.lower()).strip("-")[:60]


def save_case(directory: str | Path, case: QACase) -> Path:
    """Write one case as ``<directory>/<name>.json``; returns the path."""
    directory = Path(directory)
    directory.mkdir(parents=True, exist_ok=True)
    path = directory / f"{_slug(case.name)}.json"
    counter = 1
    while path.exists():
        counter += 1
        path = directory / f"{_slug(case.name)}-{counter}.json"
    path.write_text(json.dumps(case.to_json(), indent=2, sort_keys=True)
                    + "\n")
    return path


def load_case(path: str | Path) -> QACase:
    return QACase.from_json(json.loads(Path(path).read_text()))


def load_corpus(directory: str | Path) -> list[tuple[Path, QACase]]:
    """All cases in a corpus directory, sorted by filename."""
    directory = Path(directory)
    if not directory.is_dir():
        return []
    return [(path, load_case(path))
            for path in sorted(directory.glob("*.json"))]
