"""Interval arithmetic for one-dimensional column constraints.

Access areas are, per column, unions of (half-open or closed) intervals of
the column domain.  This module provides a small, self-contained interval
algebra used by predicate consolidation (:mod:`repro.algebra.consolidate`),
the distance function (:mod:`repro.distance`), and coverage computation
(:mod:`repro.clustering.coverage`).

Intervals carry explicit bound *openness* so that ``a > 3`` and ``a >= 3``
remain distinguishable, which matters when checking contradictions such as
``a > 3 AND a < 3``.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Iterable, Sequence

NEG_INF = -math.inf
POS_INF = math.inf


@dataclass(frozen=True, order=True)
class Interval:
    """A connected subset of the real line with explicit bound openness.

    ``lo``/``hi`` may be ``-inf``/``+inf``; infinite bounds are always open.
    An :class:`Interval` is never empty — use :func:`Interval.make` which
    returns ``None`` for empty input instead of constructing one.
    """

    lo: float
    hi: float
    lo_open: bool = False
    hi_open: bool = False

    def __post_init__(self) -> None:
        if self.lo > self.hi:
            raise ValueError(f"empty interval: lo={self.lo} > hi={self.hi}")
        if self.lo == self.hi and (self.lo_open or self.hi_open):
            raise ValueError("degenerate interval must be closed on both ends")
        if math.isinf(self.lo) and not self.lo_open and self.lo == NEG_INF:
            object.__setattr__(self, "lo_open", True)
        if math.isinf(self.hi) and not self.hi_open and self.hi == POS_INF:
            object.__setattr__(self, "hi_open", True)

    @staticmethod
    def make(lo: float, hi: float, lo_open: bool = False,
             hi_open: bool = False) -> "Interval | None":
        """Build an interval, returning ``None`` when the bounds are empty."""
        if lo > hi:
            return None
        if lo == hi and (lo_open or hi_open):
            return None
        return Interval(lo, hi, lo_open, hi_open)

    @staticmethod
    def everything() -> "Interval":
        """The whole real line."""
        return Interval(NEG_INF, POS_INF, True, True)

    @staticmethod
    def point(value: float) -> "Interval":
        """The degenerate interval ``[value, value]``."""
        return Interval(value, value, False, False)

    @property
    def is_point(self) -> bool:
        return self.lo == self.hi

    @property
    def width(self) -> float:
        """Length of the interval (0 for points, ``inf`` when unbounded)."""
        return self.hi - self.lo

    def contains(self, value: float) -> bool:
        if value < self.lo or value > self.hi:
            return False
        if value == self.lo and self.lo_open:
            return False
        if value == self.hi and self.hi_open:
            return False
        return True

    def contains_interval(self, other: "Interval") -> bool:
        """True iff ``other`` is a subset of ``self``."""
        if other.lo < self.lo or other.hi > self.hi:
            return False
        if other.lo == self.lo and self.lo_open and not other.lo_open:
            return False
        if other.hi == self.hi and self.hi_open and not other.hi_open:
            return False
        return True

    def intersect(self, other: "Interval") -> "Interval | None":
        """Intersection, or ``None`` when disjoint."""
        if self.lo > other.lo or (self.lo == other.lo and self.lo_open):
            lo, lo_open = self.lo, self.lo_open
        else:
            lo, lo_open = other.lo, other.lo_open
        if self.hi < other.hi or (self.hi == other.hi and self.hi_open):
            hi, hi_open = self.hi, self.hi_open
        else:
            hi, hi_open = other.hi, other.hi_open
        return Interval.make(lo, hi, lo_open, hi_open)

    def overlaps(self, other: "Interval") -> bool:
        return self.intersect(other) is not None

    def touches_or_overlaps(self, other: "Interval") -> bool:
        """True when the union of the two intervals is connected."""
        if self.overlaps(other):
            return True
        # Adjacent like [1,2) and [2,3]: connected iff at most one end open.
        if self.hi == other.lo and not (self.hi_open and other.lo_open):
            return True
        if other.hi == self.lo and not (other.hi_open and self.lo_open):
            return True
        return False

    def hull(self, other: "Interval") -> "Interval":
        """Smallest interval containing both inputs."""
        if self.lo < other.lo or (self.lo == other.lo and not self.lo_open):
            lo, lo_open = self.lo, self.lo_open
        else:
            lo, lo_open = other.lo, other.lo_open
        if self.hi > other.hi or (self.hi == other.hi and not self.hi_open):
            hi, hi_open = self.hi, self.hi_open
        else:
            hi, hi_open = other.hi, other.hi_open
        return Interval(lo, hi, lo_open, hi_open)

    def overlap_width(self, other: "Interval") -> float:
        """Width of the intersection (0 when disjoint)."""
        inter = self.intersect(other)
        return inter.width if inter is not None else 0.0

    def clamp(self, bounds: "Interval") -> "Interval | None":
        """Alias of :meth:`intersect`, used to restrict to ``access(a)``."""
        return self.intersect(bounds)

    def __str__(self) -> str:
        left = "(" if self.lo_open else "["
        right = ")" if self.hi_open else "]"
        return f"{left}{self.lo}, {self.hi}{right}"


class IntervalSet:
    """A finite union of disjoint, sorted intervals.

    Immutable in spirit: all operations return new instances.  Used to
    represent per-column access footprints when predicates on the same
    column are OR-ed together, and to detect non-contiguous empty areas
    (Figure 1(c) of the paper).
    """

    __slots__ = ("_intervals",)

    def __init__(self, intervals: Iterable[Interval] = ()) -> None:
        self._intervals: tuple[Interval, ...] = self._normalize(intervals)

    @staticmethod
    def _normalize(intervals: Iterable[Interval]) -> tuple[Interval, ...]:
        items = sorted(intervals, key=lambda iv: (iv.lo, iv.lo_open))
        merged: list[Interval] = []
        for iv in items:
            if merged and merged[-1].touches_or_overlaps(iv):
                merged[-1] = merged[-1].hull(iv)
            else:
                merged.append(iv)
        return tuple(merged)

    @property
    def intervals(self) -> tuple[Interval, ...]:
        return self._intervals

    @property
    def is_empty(self) -> bool:
        return not self._intervals

    @property
    def total_width(self) -> float:
        return sum(iv.width for iv in self._intervals)

    def contains(self, value: float) -> bool:
        return any(iv.contains(value) for iv in self._intervals)

    def union(self, other: "IntervalSet | Interval") -> "IntervalSet":
        extra: Sequence[Interval]
        if isinstance(other, Interval):
            extra = (other,)
        else:
            extra = other.intervals
        return IntervalSet((*self._intervals, *extra))

    def intersect(self, other: "IntervalSet | Interval") -> "IntervalSet":
        if isinstance(other, Interval):
            other = IntervalSet((other,))
        out: list[Interval] = []
        for a in self._intervals:
            for b in other.intervals:
                inter = a.intersect(b)
                if inter is not None:
                    out.append(inter)
        return IntervalSet(out)

    def difference(self, other: "IntervalSet | Interval") -> "IntervalSet":
        """Set difference; open/closed bookkeeping is exact."""
        if isinstance(other, Interval):
            other = IntervalSet((other,))
        remaining = list(self._intervals)
        for cut in other.intervals:
            next_remaining: list[Interval] = []
            for iv in remaining:
                next_remaining.extend(_cut_interval(iv, cut))
            remaining = next_remaining
        return IntervalSet(remaining)

    def hull(self) -> Interval | None:
        """Smallest single interval covering the whole set."""
        if not self._intervals:
            return None
        first, last = self._intervals[0], self._intervals[-1]
        return Interval(first.lo, last.hi, first.lo_open, last.hi_open)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, IntervalSet):
            return NotImplemented
        return self._intervals == other._intervals

    def __hash__(self) -> int:
        return hash(self._intervals)

    def __iter__(self):
        return iter(self._intervals)

    def __len__(self) -> int:
        return len(self._intervals)

    def __str__(self) -> str:
        if not self._intervals:
            return "{}"
        return " ∪ ".join(str(iv) for iv in self._intervals)


def _cut_interval(iv: Interval, cut: Interval) -> list[Interval]:
    """Return ``iv \\ cut`` as a list of 0–2 intervals."""
    inter = iv.intersect(cut)
    if inter is None:
        return [iv]
    pieces: list[Interval] = []
    left = Interval.make(iv.lo, inter.lo, iv.lo_open, not inter.lo_open)
    if left is not None:
        pieces.append(left)
    right = Interval.make(inter.hi, iv.hi, not inter.hi_open, iv.hi_open)
    if right is not None:
        pieces.append(right)
    return pieces
