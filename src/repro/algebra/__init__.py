"""Boolean/interval algebra underlying access-area extraction.

Public surface:

* :class:`Interval` / :class:`IntervalSet` — one-dimensional footprints;
* :class:`ColumnRef`, :class:`Op`, :class:`ColumnConstantPredicate`,
  :class:`ColumnColumnPredicate` — atomic predicates (Section 2.1);
* :data:`TRUE` / :data:`FALSE`, :func:`atom`, :func:`make_and`,
  :func:`make_or`, :func:`make_not` — expression construction;
* :func:`to_nnf`, :func:`to_cnf`, :class:`CNF`, :class:`Clause` — normal
  forms (Section 2.4, Section 6.6 predicate cap);
* :func:`consolidate` — redundancy/merge/contradiction cleanup
  (Section 4.5).
"""

from .boolexpr import (FALSE, TRUE, And, Atom, BoolExpr, Not, Or, atom,
                       make_and, make_not, make_or, relations_of)
from .cnf import (CNF, DEFAULT_PREDICATE_CAP, Clause, CNFConversionError,
                  to_cnf, truncate_predicates)
from .consolidate import (ConsolidationResult, ConsolidationStats,
                          consolidate)
from .intervals import NEG_INF, POS_INF, Interval, IntervalSet
from .nnf import to_nnf
from .predicates import (ColumnColumnPredicate, ColumnConstantPredicate,
                         ColumnRef, Constant, Op, Predicate)

__all__ = [
    "FALSE", "TRUE", "And", "Atom", "BoolExpr", "Not", "Or", "atom",
    "make_and", "make_not", "make_or", "relations_of",
    "CNF", "DEFAULT_PREDICATE_CAP", "Clause", "CNFConversionError",
    "to_cnf", "truncate_predicates",
    "ConsolidationResult", "ConsolidationStats", "consolidate",
    "NEG_INF", "POS_INF", "Interval", "IntervalSet",
    "to_nnf",
    "ColumnColumnPredicate", "ColumnConstantPredicate", "ColumnRef",
    "Constant", "Op", "Predicate",
]
