"""Negation normal form (NNF).

Pushing NOT operators down to the leaves is the first half of the paper's
CNF conversion (Section 4.1: "For predicates containing the NOT operator,
we transform them by inverting the respective predicate").  Because every
atomic predicate has a closed negation (``<`` ↔ ``>=`` etc.), NNF trees
contain no :class:`~repro.algebra.boolexpr.Not` nodes at all.
"""

from __future__ import annotations

from .boolexpr import (FALSE, TRUE, And, Atom, BoolExpr, Not, Or, make_and,
                       make_not, make_or)


def to_nnf(expr: BoolExpr) -> BoolExpr:
    """Rewrite ``expr`` into an equivalent NOT-free expression.

    De Morgan's laws are applied to AND/OR nodes; atoms are negated by
    inverting their comparison operator.
    """
    if expr is TRUE or expr is FALSE or isinstance(expr, Atom):
        return expr
    if isinstance(expr, And):
        return make_and(to_nnf(c) for c in expr.children)
    if isinstance(expr, Or):
        return make_or(to_nnf(c) for c in expr.children)
    if isinstance(expr, Not):
        return _negate(expr.child)
    return expr


def _negate(expr: BoolExpr) -> BoolExpr:
    if expr is TRUE:
        return FALSE
    if expr is FALSE:
        return TRUE
    if isinstance(expr, Atom):
        return make_not(expr)
    if isinstance(expr, Not):
        return to_nnf(expr.child)
    if isinstance(expr, And):
        return make_or(_negate(c) for c in expr.children)
    if isinstance(expr, Or):
        return make_and(_negate(c) for c in expr.children)
    raise TypeError(f"cannot negate {type(expr).__name__}")
