"""Shared comparison semantics for the extractor and the engine.

The differential oracle checks the algebra's predicate evaluator
(:mod:`repro.algebra.predicates`) against the execution engine
(:mod:`repro.engine.executor`).  Both sides must therefore agree on one
comparison rule, including the sloppy mixed-type forms that real query
logs contain (``WHERE ra > '180'`` on a numeric column).

The rule mirrors MSSQL's implicit conversion by data-type precedence:

* ``NULL`` never satisfies any comparison (SQL's UNKNOWN filters the
  row out of a WHERE clause);
* when exactly one operand is a string, the string converts to the
  numeric side's type when it parses as a number; otherwise both
  operands are compared as strings (the historical sloppy-log
  behaviour, kept for non-numeric values);
* same-type operands compare natively.

Every comparison in the repository — predicate evaluation, engine
conditions, BETWEEN bounds, IN-list membership, subquery membership,
quantified comparisons — must route through :func:`compare_values` so
the oracle's two sides can never diverge again.
"""

from __future__ import annotations

import operator
from typing import Any, Optional

_COMPARATORS = {
    "<": operator.lt,
    "<=": operator.le,
    "=": operator.eq,
    ">": operator.gt,
    ">=": operator.ge,
    "<>": operator.ne,
}


def parse_number(text: str) -> Optional[int | float]:
    """The numeric value of a string literal, or ``None``.

    Integers parse as ``int`` (SkyServer objid constants exceed the
    float64 mantissa and must stay exact); everything else tries
    ``float``.  Whitespace is tolerated, as the server tolerates it.
    """
    text = text.strip()
    if not text:
        return None
    try:
        return int(text)
    except ValueError:
        pass
    try:
        value = float(text)
    except ValueError:
        return None
    return value


def coerce_pair(left: Any, right: Any) -> tuple[Any, Any]:
    """Apply the implicit-conversion rule to a mixed-type operand pair.

    Returns the two operands in comparable form; same-type pairs pass
    through unchanged.
    """
    if isinstance(left, str) == isinstance(right, str):
        return left, right
    if isinstance(left, str):
        number = parse_number(left)
        if number is not None and not isinstance(right, str):
            return number, right
        return left, str(right)
    number = parse_number(right)
    if number is not None:
        return left, number
    return str(left), right


def compare_values(left: Any, op: str, right: Any) -> bool:
    """Three-valued-free SQL comparison with implicit conversion.

    ``op`` is the SQL comparison symbol (``<``, ``<=``, ``=``, ``>``,
    ``>=``, ``<>``).  ``None`` operands never satisfy the comparison.
    """
    if left is None or right is None:
        return False
    comparator = _COMPARATORS.get(op)
    if comparator is None:
        raise ValueError(f"unknown comparison operator {op!r}")
    left, right = coerce_pair(left, right)
    return bool(comparator(left, right))
