"""Atomic predicates over database columns.

The paper's intermediate format constrains the universal relation with a
CNF over *atomic* predicates.  Two kinds occur in the SkyServer log and are
modelled here:

* **column-constant** predicates ``a θ c`` (Section 2.1) with
  ``θ ∈ {<, <=, =, >, >=, <>}``, over numeric or categorical columns;
* **column-column** predicates ``a1 θ a2`` (join conditions pushed into the
  WHERE clause, Section 4.2).

Predicates are immutable and hashable so they can live in sets (used by
consolidation and by the OLAPClus baseline's exact matching).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Union

from .coercion import compare_values
from .intervals import NEG_INF, POS_INF, Interval, IntervalSet


class Op(enum.Enum):
    """Comparison operators of column-constant atomic predicates."""

    LT = "<"
    LE = "<="
    EQ = "="
    GT = ">"
    GE = ">="
    NE = "<>"

    def negate(self) -> "Op":
        """The operator of the logically negated predicate."""
        return _NEGATIONS[self]

    def flip(self) -> "Op":
        """The operator obtained by swapping the two operands."""
        return _FLIPS[self]

    def __str__(self) -> str:
        return self.value


_NEGATIONS = {
    Op.LT: Op.GE,
    Op.LE: Op.GT,
    Op.EQ: Op.NE,
    Op.GT: Op.LE,
    Op.GE: Op.LT,
    Op.NE: Op.EQ,
}

_FLIPS = {
    Op.LT: Op.GT,
    Op.LE: Op.GE,
    Op.EQ: Op.EQ,
    Op.GT: Op.LT,
    Op.GE: Op.LE,
    Op.NE: Op.NE,
}

Constant = Union[int, float, str, bool]


def normalize_constant(value: Constant) -> tuple:
    """Type-tagged canonical form of a predicate constant.

    Numerically equal int/float literals (``5`` vs ``5.0``) normalize to
    the same key, but strings never collide with numbers and booleans
    never collide with 0/1 — the tags keep the spaces disjoint.
    """
    if isinstance(value, bool):
        return ("b", value)
    if isinstance(value, str):
        return ("s", value)
    if isinstance(value, float) and value.is_integer() \
            and abs(value) < 2 ** 53:
        return ("n", int(value))
    return ("n", value)


@dataclass(frozen=True, eq=True)
class ColumnRef:
    """A fully qualified column reference ``relation.column``.

    ``relation`` is the *real* relation name: alias resolution happens
    during extraction (Section 4.5 cleanup step), before predicates are
    built.
    """

    relation: str
    column: str

    def __hash__(self) -> int:
        # Cached: refs are hashed millions of times by the distance memo.
        cached = self.__dict__.get("_hash")
        if cached is None:
            cached = hash((self.relation, self.column))
            object.__setattr__(self, "_hash", cached)
        return cached

    @property
    def qualified(self) -> str:
        return f"{self.relation}.{self.column}"

    def __str__(self) -> str:
        return self.qualified


@dataclass(frozen=True)
class Predicate:
    """Base class for atomic predicates."""

    def negate(self) -> "Predicate":
        raise NotImplementedError

    def canonical_form(self) -> tuple:
        """Order- and spelling-insensitive identity key.

        Two predicates with equal canonical forms denote the same atomic
        constraint; the access-area intern pool and the canonical
        :class:`~repro.core.area.AccessArea` identity sort and compare
        by this key, never by rendering order or literal formatting.
        """
        raise NotImplementedError

    @property
    def columns(self) -> tuple[ColumnRef, ...]:
        raise NotImplementedError

    @property
    def relations(self) -> frozenset[str]:
        return frozenset(ref.relation for ref in self.columns)


@dataclass(frozen=True, eq=True)
class ColumnConstantPredicate(Predicate):
    """``a θ c`` where ``a`` is a column and ``c`` a constant."""

    ref: ColumnRef
    op: Op
    value: Constant

    def __hash__(self) -> int:
        cached = self.__dict__.get("_hash")
        if cached is None:
            cached = hash((self.ref, self.op, self.value))
            object.__setattr__(self, "_hash", cached)
        return cached

    def negate(self) -> "ColumnConstantPredicate":
        return ColumnConstantPredicate(self.ref, self.op.negate(), self.value)

    def canonical_form(self) -> tuple:
        return ("cc", self.ref.qualified, self.op.value,
                normalize_constant(self.value))

    @property
    def columns(self) -> tuple[ColumnRef, ...]:
        return (self.ref,)

    @property
    def is_numeric(self) -> bool:
        return isinstance(self.value, (int, float)) and not isinstance(
            self.value, bool)

    def to_interval_set(self) -> IntervalSet:
        """Footprint of this predicate on the column's domain axis.

        Only meaningful for numeric constants.  ``<>`` yields the two
        open rays around the excluded point.
        """
        if not self.is_numeric:
            raise TypeError(f"non-numeric predicate {self} has no interval")
        # Keep ints exact: SkyServer objid/specobjid constants exceed the
        # float64 mantissa, and the rebuilt predicates must round-trip.
        c = self.value
        if self.op is Op.LT:
            return IntervalSet([Interval(NEG_INF, c, True, True)])
        if self.op is Op.LE:
            return IntervalSet([Interval(NEG_INF, c, True, False)])
        if self.op is Op.EQ:
            return IntervalSet([Interval.point(c)])
        if self.op is Op.GT:
            return IntervalSet([Interval(c, POS_INF, True, True)])
        if self.op is Op.GE:
            return IntervalSet([Interval(c, POS_INF, False, True)])
        return IntervalSet([
            Interval(NEG_INF, c, True, True),
            Interval(c, POS_INF, True, True),
        ])

    def evaluate(self, value: Constant) -> bool:
        """Evaluate the predicate against a concrete column value."""
        return _compare(value, self.op, self.value)

    def __str__(self) -> str:
        value = repr(self.value) if isinstance(self.value, str) else self.value
        return f"{self.ref} {self.op} {value}"


@dataclass(frozen=True, eq=True)
class ColumnColumnPredicate(Predicate):
    """``a1 θ a2`` — typically a join condition pushed into the WHERE."""

    left: ColumnRef
    op: Op
    right: ColumnRef

    def __hash__(self) -> int:
        cached = self.__dict__.get("_hash")
        if cached is None:
            cached = hash((self.left, self.op, self.right))
            object.__setattr__(self, "_hash", cached)
        return cached

    def __post_init__(self) -> None:
        # Canonical operand order so that T.u = S.u and S.u = T.u compare
        # (and hash) equal, which exact-match baselines rely on.
        if (self.right.qualified, ) < (self.left.qualified, ):
            left, right = self.right, self.left
            object.__setattr__(self, "left", left)
            object.__setattr__(self, "right", right)
            object.__setattr__(self, "op", self.op.flip())

    def negate(self) -> "ColumnColumnPredicate":
        return ColumnColumnPredicate(self.left, self.op.negate(), self.right)

    def canonical_form(self) -> tuple:
        # Operand order is already canonical (see __post_init__).
        return ("jj", self.left.qualified, self.op.value,
                self.right.qualified)

    @property
    def columns(self) -> tuple[ColumnRef, ...]:
        return (self.left, self.right)

    @property
    def is_equijoin(self) -> bool:
        return self.op is Op.EQ

    def evaluate(self, left_value: Constant, right_value: Constant) -> bool:
        return _compare(left_value, self.op, right_value)

    def __str__(self) -> str:
        return f"{self.left} {self.op} {self.right}"


def _compare(left: Constant, op: Op, right: Constant) -> bool:
    """Three-valued-free comparison used by the predicate evaluator.

    Delegates to the shared :func:`~repro.algebra.coercion.compare_values`
    rule (NULL rejection, numeric coercion of mixed int/str operands) so
    the predicate evaluator and the execution engine can never disagree
    on a comparison — the differential oracle's two sides share one
    helper.
    """
    return compare_values(left, op.value, right)
