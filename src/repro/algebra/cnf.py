"""Conjunctive normal form (CNF) of query constraints.

The intermediate format of Section 2.4 requires the constraint on the
universal relation to be a conjunction of disjunctions of atomic
predicates.  This module provides:

* :class:`Clause` — one disjunction of atomic predicates;
* :class:`CNF` — a conjunction of clauses;
* :func:`to_cnf` — conversion of an arbitrary Boolean expression by
  NNF-rewriting followed by distribution of OR over AND.

Distribution is worst-case exponential — the paper reports that "the
necessary system resources grow exponentially with the number of
predicates" and works around it by "only consider[ing] the first 35
predicates of any query" (Section 6.6).  :func:`to_cnf` reproduces exactly
that workaround through ``max_predicates``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Iterator

from .boolexpr import (FALSE, TRUE, And, Atom, BoolExpr, Or, make_and,
                       make_or)
from .nnf import to_nnf
from .predicates import Predicate

#: The paper's workaround cap on the number of predicates fed to the CNF
#: converter (Section 6.6).
DEFAULT_PREDICATE_CAP = 35


class CNFConversionError(Exception):
    """Raised when a constraint cannot be converted within resource limits."""


#: Memoized predicate renderings: predicates are immutable and shared
#: across many clauses during CNF distribution, where canonicalization
#: would otherwise re-render them millions of times.
_PSTR_CACHE: dict[Predicate, str] = {}


def _pstr(pred: Predicate) -> str:
    text = _PSTR_CACHE.get(pred)
    if text is None:
        text = str(pred)
        _PSTR_CACHE[pred] = text
    return text


@dataclass(frozen=True)
class Clause:
    """A disjunction of atomic predicates.

    Duplicate predicates are collapsed; order is canonical (sorted by
    string form) so that equal clauses compare and hash equal.
    """

    predicates: tuple[Predicate, ...]

    @staticmethod
    def of(predicates: Iterable[Predicate]) -> "Clause":
        unique = {_pstr(p): p for p in predicates}
        return Clause(tuple(unique[key] for key in sorted(unique)))

    def __len__(self) -> int:
        return len(self.predicates)

    def __iter__(self) -> Iterator[Predicate]:
        return iter(self.predicates)

    @property
    def is_unit(self) -> bool:
        return len(self.predicates) == 1

    def canonical_key(self) -> tuple:
        """Order-insensitive identity of this disjunction.

        The sorted, deduplicated tuple of the predicates' canonical
        forms: two clauses whose predicates arrived from the parser in
        different orders (or with differently spelled but equal
        literals) share one key.  Cached — clauses are immutable and the
        intern pool keys by this repeatedly.
        """
        cached = self.__dict__.get("_canonical_key")
        if cached is None:
            cached = tuple(sorted(
                {p.canonical_form() for p in self.predicates}))
            object.__setattr__(self, "_canonical_key", cached)
        return cached

    def subsumes(self, other: "Clause") -> bool:
        """True when this clause's predicate set is a subset of other's.

        A subset clause is logically *stronger*: if it holds, the superset
        clause holds too, so the superset is redundant in a CNF.
        """
        return set(self.predicates) <= set(other.predicates)

    def __str__(self) -> str:
        if not self.predicates:
            return "FALSE"
        if self.is_unit:
            return str(self.predicates[0])
        return "(" + " OR ".join(str(p) for p in self.predicates) + ")"


@dataclass(frozen=True)
class CNF:
    """A conjunction of clauses.  The empty CNF means TRUE."""

    clauses: tuple[Clause, ...]

    @staticmethod
    def of(clauses: Iterable[Clause]) -> "CNF":
        unique = {str(c): c for c in clauses}
        return CNF(tuple(unique[key] for key in sorted(unique)))

    @staticmethod
    def true() -> "CNF":
        return CNF(())

    @property
    def is_true(self) -> bool:
        return not self.clauses

    def __len__(self) -> int:
        return len(self.clauses)

    def __iter__(self) -> Iterator[Clause]:
        return iter(self.clauses)

    def predicates(self) -> Iterator[Predicate]:
        for clause in self.clauses:
            yield from clause

    def count_predicates(self) -> int:
        return sum(len(c) for c in self.clauses)

    def canonical_key(self) -> tuple:
        """Order-insensitive identity of this conjunction.

        The sorted, deduplicated tuple of the clauses' canonical keys
        (see :meth:`Clause.canonical_key`) — the "sorted CNF of sorted
        clauses" fingerprint component of the access-area intern layer.
        """
        cached = self.__dict__.get("_canonical_key")
        if cached is None:
            cached = tuple(sorted(
                {clause.canonical_key() for clause in self.clauses}))
            object.__setattr__(self, "_canonical_key", cached)
        return cached

    def conjoin(self, other: "CNF") -> "CNF":
        return CNF.of((*self.clauses, *other.clauses))

    def to_boolexpr(self) -> BoolExpr:
        return make_and(
            make_or(Atom(p) for p in clause) for clause in self.clauses)

    def __str__(self) -> str:
        if not self.clauses:
            return "TRUE"
        return " AND ".join(str(c) for c in self.clauses)


def truncate_predicates(expr: BoolExpr, cap: int) -> BoolExpr:
    """Keep only the first ``cap`` predicate leaves of ``expr``.

    Excess leaves are replaced by TRUE, which *widens* the constraint —
    a conservative over-approximation of the access area, matching the
    paper's workaround semantics ("only considers the first 35 predicates
    of any query").
    """
    counter = {"seen": 0}

    def rewrite(node: BoolExpr) -> BoolExpr:
        if isinstance(node, Atom):
            counter["seen"] += 1
            return node if counter["seen"] <= cap else TRUE
        if isinstance(node, And):
            return make_and(rewrite(c) for c in node.children)
        if isinstance(node, Or):
            return make_or(rewrite(c) for c in node.children)
        return node

    return rewrite(expr)


def to_cnf(expr: BoolExpr,
           max_predicates: int | None = DEFAULT_PREDICATE_CAP,
           max_clauses: int = 200_000) -> CNF:
    """Convert a Boolean expression into CNF.

    Parameters
    ----------
    expr:
        Arbitrary expression tree (NOT nodes allowed; they are pushed to
        the leaves first).
    max_predicates:
        The paper's predicate cap; ``None`` disables truncation.
    max_clauses:
        Hard safety limit on the intermediate clause count; exceeding it
        raises :class:`CNFConversionError` instead of exhausting memory.
    """
    expr = to_nnf(expr)
    if max_predicates is not None and expr.count_atoms() > max_predicates:
        expr = to_nnf(truncate_predicates(expr, max_predicates))
    clauses = _distribute(expr, max_clauses)
    if clauses is None:
        return CNF((Clause(()),))  # unsatisfiable: the empty clause
    return CNF.of(_drop_subsumed(clauses))


def _distribute(expr: BoolExpr, max_clauses: int) -> list[Clause] | None:
    """Return the clause list of ``expr`` (already in NNF).

    ``None`` encodes FALSE (an unsatisfiable constraint); an empty list
    encodes TRUE.
    """
    if expr is TRUE:
        return []
    if expr is FALSE:
        return None
    if isinstance(expr, Atom):
        return [Clause.of([expr.predicate])]
    if isinstance(expr, And):
        out: list[Clause] = []
        for child in expr.children:
            sub = _distribute(child, max_clauses)
            if sub is None:
                return None
            out.extend(sub)
            if len(out) > max_clauses:
                raise CNFConversionError(
                    f"CNF exceeded {max_clauses} clauses")
        return out
    if isinstance(expr, Or):
        # Cross product of the children's clause lists.
        product: list[Clause] = [Clause(())]
        for child in expr.children:
            sub = _distribute(child, max_clauses)
            if sub is None:
                continue  # FALSE is the identity of OR
            if not sub:
                return []  # TRUE absorbs the whole disjunction
            next_product: list[Clause] = []
            for left in product:
                for right in sub:
                    next_product.append(
                        Clause.of((*left.predicates, *right.predicates)))
                    if len(next_product) > max_clauses:
                        raise CNFConversionError(
                            f"CNF exceeded {max_clauses} clauses")
            product = next_product
        if product == [Clause(())]:
            # Every child was FALSE.
            return None
        return product
    raise TypeError(f"unexpected node in NNF: {type(expr).__name__}")


#: Above this clause count the quadratic subsumption sweep is skipped —
#: keeping redundant clauses is sound, just less tidy.
_SUBSUMPTION_LIMIT = 2000


def _drop_subsumed(clauses: list[Clause]) -> list[Clause]:
    """Remove clauses that are supersets of another clause."""
    unique = list(set(clauses))
    if len(unique) > _SUBSUMPTION_LIMIT:
        return sorted(unique, key=str)
    kept: list[Clause] = []
    # Sort by length so potential subsumers come first.
    for clause in sorted(unique, key=len):
        if not any(prev.subsumes(clause) for prev in kept):
            kept.append(clause)
    return kept
