"""Predicate consolidation (Section 4.5 cleanup step).

After CNF conversion the paper performs "some consolidation on the
remaining predicates: we remove redundant constraints, merge overlapping
constraints, and check the set of constraints for contradictions".

This module implements those three steps on a :class:`~repro.algebra.cnf.CNF`:

1. **Within-clause redundancy** — in a disjunction, a predicate whose
   footprint is contained in another predicate's footprint on the same
   column is dropped; a disjunction covering the whole axis makes the
   clause TRUE and removes it.
2. **Merging of unit clauses** — all unit column-constant clauses on the
   same numeric column are intersected into a minimal bound pair
   (``a >= lo AND a <= hi``), with ``=`` for points.
3. **Contradiction check** — an empty intersection (e.g. ``a > 5 AND
   a < 3``, or ``a = 'x' AND a = 'y'``) collapses the whole CNF to the
   unsatisfiable CNF containing the empty clause.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from .cnf import CNF, Clause
from .intervals import NEG_INF, POS_INF, Interval, IntervalSet
from .predicates import (ColumnConstantPredicate, ColumnRef, Op, Predicate)


@dataclass
class ConsolidationStats:
    """Bookkeeping about what consolidation changed."""

    dropped_redundant: int = 0
    merged_bounds: int = 0
    removed_true_clauses: int = 0
    contradiction: bool = False
    notes: list[str] = field(default_factory=list)


@dataclass(frozen=True)
class ConsolidationResult:
    cnf: CNF
    stats: ConsolidationStats


_UNSAT = CNF((Clause(()),))


def consolidate(cnf: CNF) -> ConsolidationResult:
    """Apply redundancy removal, merging, and contradiction checking."""
    stats = ConsolidationStats()

    clauses: list[Clause] = []
    for clause in cnf:
        simplified = _simplify_clause(clause, stats)
        if simplified is None:  # clause became TRUE
            stats.removed_true_clauses += 1
            continue
        if len(simplified) == 0:  # clause is unsatisfiable
            stats.contradiction = True
            return ConsolidationResult(_UNSAT, stats)
        clauses.append(simplified)

    merged = _merge_unit_clauses(clauses, stats)
    if merged is None:
        stats.contradiction = True
        return ConsolidationResult(_UNSAT, stats)

    return ConsolidationResult(CNF.of(merged), stats)


def _simplify_clause(clause: Clause,
                     stats: ConsolidationStats) -> Clause | None:
    """Drop redundant disjuncts; return ``None`` when the clause is TRUE."""
    numeric: dict[ColumnRef, list[ColumnConstantPredicate]] = {}
    others: list[Predicate] = []
    for pred in clause:
        if isinstance(pred, ColumnConstantPredicate) and pred.is_numeric:
            numeric.setdefault(pred.ref, []).append(pred)
        else:
            others.append(pred)

    kept: list[Predicate] = list(others)
    for ref, preds in numeric.items():
        footprints = [(p, p.to_interval_set()) for p in preds]
        union = IntervalSet()
        for _, fp in footprints:
            union = union.union(fp)
        if union == IntervalSet([Interval.everything()]):
            return None  # disjunction covers the whole axis: clause is TRUE
        # Drop covered disjuncts one at a time against the *remaining*
        # set — dropping all members of a mutually-covering family would
        # change semantics.
        remaining = list(footprints)
        index = 0
        while index < len(remaining):
            pred, fp = remaining[index]
            rest = [other_fp for j, (_, other_fp) in enumerate(remaining)
                    if j != index]
            union_rest = IntervalSet()
            for other_fp in rest:
                union_rest = union_rest.union(other_fp)
            if rest and fp.difference(union_rest).is_empty:
                remaining.pop(index)
                stats.dropped_redundant += 1
            else:
                index += 1
        kept.extend(pred for pred, _ in remaining)
    if len(kept) < len(clause.predicates):
        return Clause.of(kept)
    return clause


def _merge_unit_clauses(clauses: list[Clause],
                        stats: ConsolidationStats) -> list[Clause] | None:
    """Intersect unit column-constant clauses per column.

    Returns ``None`` on contradiction.
    """
    numeric: dict[ColumnRef, IntervalSet] = {}
    numeric_clauses: dict[ColumnRef, list[Clause]] = {}
    categorical_eq: dict[ColumnRef, set] = {}
    categorical_ne: dict[ColumnRef, set] = {}
    passthrough: list[Clause] = []

    for clause in clauses:
        pred = clause.predicates[0] if clause.is_unit else None
        if (isinstance(pred, ColumnConstantPredicate) and pred.is_numeric):
            fp = pred.to_interval_set()
            if pred.ref in numeric:
                numeric[pred.ref] = numeric[pred.ref].intersect(fp)
            else:
                numeric[pred.ref] = fp
            numeric_clauses.setdefault(pred.ref, []).append(clause)
        elif (isinstance(pred, ColumnConstantPredicate)
              and isinstance(pred.value, str)):
            if pred.op is Op.EQ:
                categorical_eq.setdefault(pred.ref, set()).add(pred.value)
            elif pred.op is Op.NE:
                categorical_ne.setdefault(pred.ref, set()).add(pred.value)
            else:
                passthrough.append(clause)
        else:
            passthrough.append(clause)

    out: list[Clause] = list(passthrough)

    for ref, footprint in numeric.items():
        if footprint.is_empty:
            return None
        rebuilt = _intervals_to_clauses(ref, footprint)
        if rebuilt is None:
            # Not representable as bound atoms alone; keep the original
            # clauses untouched (merging must never change semantics).
            rebuilt = numeric_clauses[ref]
            stats.notes.append(
                f"kept original clauses for disconnected footprint of {ref}")
        count = len(numeric_clauses[ref])
        if count > len(rebuilt):
            stats.merged_bounds += count - len(rebuilt)
        out.extend(rebuilt)

    for ref, values in categorical_eq.items():
        if len(values) > 1:
            return None  # a = 'x' AND a = 'y'
        value = next(iter(values))
        if value in categorical_ne.get(ref, set()):
            return None  # a = 'x' AND a <> 'x'
        out.append(Clause.of(
            [ColumnConstantPredicate(ref, Op.EQ, value)]))

    for ref, values in categorical_ne.items():
        if ref in categorical_eq:
            continue  # the EQ already implies all satisfiable NEs
        for value in sorted(values):
            out.append(Clause.of(
                [ColumnConstantPredicate(ref, Op.NE, value)]))

    return out


def _intervals_to_clauses(ref: ColumnRef,
                          footprint: IntervalSet) -> list[Clause] | None:
    """Rebuild a per-column footprint as unit clauses, if representable.

    A conjunction of atoms can express a single interval (optionally with
    point exclusions, which we do not attempt to reconstruct); multi-piece
    footprints return ``None``.
    """
    if len(footprint) != 1:
        return None
    return _interval_to_clauses(ref, footprint.intervals[0])


def _interval_to_clauses(ref: ColumnRef, iv: Interval) -> list[Clause]:
    if iv.is_point:
        return [Clause.of([ColumnConstantPredicate(ref, Op.EQ, iv.lo)])]
    clauses: list[Clause] = []
    if iv.lo != NEG_INF:
        op = Op.GT if iv.lo_open else Op.GE
        clauses.append(Clause.of([ColumnConstantPredicate(ref, op, iv.lo)]))
    if iv.hi != POS_INF:
        op = Op.LT if iv.hi_open else Op.LE
        clauses.append(Clause.of([ColumnConstantPredicate(ref, op, iv.hi)]))
    return clauses
