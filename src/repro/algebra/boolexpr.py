"""Boolean expression trees over atomic predicates.

Query constraints (the paper's ``P``) are represented as trees of
:class:`And` / :class:`Or` / :class:`Not` nodes whose leaves are
:class:`Atom` wrappers around :class:`~repro.algebra.predicates.Predicate`
instances, plus the constants :data:`TRUE` and :data:`FALSE`.

The trees are immutable.  Conversion to negation normal form and to CNF
lives in :mod:`repro.algebra.nnf` and :mod:`repro.algebra.cnf`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Iterator

from .predicates import Predicate


class BoolExpr:
    """Base class for Boolean expression nodes."""

    def atoms(self) -> Iterator[Predicate]:
        """Yield every predicate leaf (with repetition)."""
        raise NotImplementedError

    def count_atoms(self) -> int:
        return sum(1 for _ in self.atoms())

    def __and__(self, other: "BoolExpr") -> "BoolExpr":
        return make_and([self, other])

    def __or__(self, other: "BoolExpr") -> "BoolExpr":
        return make_or([self, other])

    def __invert__(self) -> "BoolExpr":
        return make_not(self)


@dataclass(frozen=True)
class _Constant(BoolExpr):
    value: bool

    def atoms(self) -> Iterator[Predicate]:
        return iter(())

    def __str__(self) -> str:
        return "TRUE" if self.value else "FALSE"


TRUE = _Constant(True)
FALSE = _Constant(False)


@dataclass(frozen=True)
class Atom(BoolExpr):
    """A leaf holding one atomic predicate."""

    predicate: Predicate

    def atoms(self) -> Iterator[Predicate]:
        yield self.predicate

    def __str__(self) -> str:
        return str(self.predicate)


@dataclass(frozen=True)
class Not(BoolExpr):
    child: BoolExpr

    def atoms(self) -> Iterator[Predicate]:
        return self.child.atoms()

    def __str__(self) -> str:
        return f"NOT ({self.child})"


@dataclass(frozen=True)
class And(BoolExpr):
    children: tuple[BoolExpr, ...]

    def atoms(self) -> Iterator[Predicate]:
        for child in self.children:
            yield from child.atoms()

    def __str__(self) -> str:
        return " AND ".join(_parenthesize(c) for c in self.children)


@dataclass(frozen=True)
class Or(BoolExpr):
    children: tuple[BoolExpr, ...]

    def atoms(self) -> Iterator[Predicate]:
        for child in self.children:
            yield from child.atoms()

    def __str__(self) -> str:
        return " OR ".join(_parenthesize(c) for c in self.children)


def _parenthesize(expr: BoolExpr) -> str:
    if isinstance(expr, (And, Or)):
        return f"({expr})"
    return str(expr)


def make_and(children: Iterable[BoolExpr]) -> BoolExpr:
    """Build a flattened AND, simplifying constants.

    Nested ANDs are merged, ``TRUE`` children dropped, and a ``FALSE``
    child collapses the whole node.
    """
    flat: list[BoolExpr] = []
    for child in children:
        if child is FALSE or child == FALSE:
            return FALSE
        if child is TRUE or child == TRUE:
            continue
        if isinstance(child, And):
            flat.extend(child.children)
        else:
            flat.append(child)
    if not flat:
        return TRUE
    if len(flat) == 1:
        return flat[0]
    return And(tuple(flat))


def make_or(children: Iterable[BoolExpr]) -> BoolExpr:
    """Build a flattened OR, simplifying constants (dual of make_and)."""
    flat: list[BoolExpr] = []
    for child in children:
        if child is TRUE or child == TRUE:
            return TRUE
        if child is FALSE or child == FALSE:
            continue
        if isinstance(child, Or):
            flat.extend(child.children)
        else:
            flat.append(child)
    if not flat:
        return FALSE
    if len(flat) == 1:
        return flat[0]
    return Or(tuple(flat))


def make_not(child: BoolExpr) -> BoolExpr:
    """Build a NOT, simplifying constants, double negation, and atoms.

    Atom negation rewrites the operator directly (``NOT a > 5`` becomes
    ``a <= 5``), which is the paper's Section 4.1 NOT handling.
    """
    if child is TRUE or child == TRUE:
        return FALSE
    if child is FALSE or child == FALSE:
        return TRUE
    if isinstance(child, Not):
        return child.child
    if isinstance(child, Atom):
        return Atom(child.predicate.negate())
    return Not(child)


def atom(predicate: Predicate) -> Atom:
    """Convenience constructor for a predicate leaf."""
    return Atom(predicate)


def relations_of(expr: BoolExpr) -> frozenset[str]:
    """All relation names referenced by predicates in the expression."""
    names: set[str] = set()
    for pred in expr.atoms():
        names.update(pred.relations)
    return frozenset(names)
