"""Access-area mappings for aggregate HAVING clauses (Section 4.3).

For a query ``... GROUP BY ... HAVING AGG(a) θ c``, the access area is not
obtained by copying the HAVING predicate: one must reason about which
tuples can influence the aggregate in *some* database state (Lemmas 1–3
and their analogues).  :func:`aggregate_constraint` implements that
reasoning for SUM, COUNT, MIN, MAX, and AVG.

The key quantity is the **effective domain** ``[inf, supp]`` of the
aggregated column: the declared column domain intersected with any
conjunctive WHERE constraint on the same column — this is exactly how
Lemma 1 (plain domain) generalizes to Lemmas 2 and 3 (domain narrowed by
``T.v < c1`` / ``T.v > c1``).

Each rule returns the *extra* constraint contributed by the HAVING clause
(``TRUE`` = no constraint, i.e. the lemmas' "access area is T" cases;
``FALSE`` = empty access area).  The caller conjoins it with the WHERE
constraint, reproducing e.g. Lemma 2's ``σ_{v<c1 ∧ v>c2}``.
"""

from __future__ import annotations

from ..algebra.boolexpr import FALSE, TRUE, BoolExpr, atom
from ..algebra.intervals import NEG_INF, POS_INF, Interval
from ..algebra.predicates import ColumnConstantPredicate, ColumnRef, Op

#: Aggregate functions covered by the mapping; the paper notes MAX does
#: not occur in the SkyServer log but covers it anyway — so do we.
SUPPORTED_AGGREGATES = frozenset({"SUM", "COUNT", "MIN", "MAX", "AVG"})


def aggregate_constraint(func: str, ref: ColumnRef | None, op: Op,
                         constant: float,
                         effective_domain: Interval) -> BoolExpr:
    """The access-area constraint of ``HAVING func(ref) op constant``.

    ``ref`` is ``None`` for ``COUNT(*)``.  ``effective_domain`` is the
    reachable value range of the aggregated column (see module docstring);
    for COUNT it is irrelevant.
    """
    func = func.upper()
    if func not in SUPPORTED_AGGREGATES:
        return TRUE
    if func == "COUNT":
        return _count_rule(op, constant)
    if ref is None:
        return TRUE
    if func == "SUM":
        return _sum_rule(ref, op, constant, effective_domain)
    if func == "MIN":
        return _min_rule(ref, op, constant, effective_domain)
    if func == "MAX":
        return _max_rule(ref, op, constant, effective_domain)
    return _avg_rule(op, constant, effective_domain)


# ---------------------------------------------------------------------------
# COUNT: group sizes can be any k >= 1 in some state, independent of the
# tuple's values, so the HAVING clause either never constrains (some k >= 1
# satisfies it) or empties the area (no k >= 1 does).
# ---------------------------------------------------------------------------

def _count_rule(op: Op, c: float) -> BoolExpr:
    if op is Op.GT or op is Op.GE:
        return TRUE  # pick k large enough
    if op is Op.LT:
        return TRUE if c > 1 else FALSE
    if op is Op.LE:
        return TRUE if c >= 1 else FALSE
    if op is Op.EQ:
        return TRUE if c >= 1 and float(c).is_integer() else FALSE
    return TRUE  # <>: pick any k != c


# ---------------------------------------------------------------------------
# SUM (Lemmas 1-3).  With supp > 0 the sum can be pushed arbitrarily high by
# adding same-group tuples, and with inf < 0 arbitrarily low; only when the
# domain is one-signed does the tuple's own value constrain membership.
# ---------------------------------------------------------------------------

def _sum_rule(ref: ColumnRef, op: Op, c: float,
              dom: Interval) -> BoolExpr:
    inf, supp = dom.lo, dom.hi
    if op in (Op.GT, Op.GE):
        if supp > 0:
            return TRUE  # Lemma 1 case 1 / Lemma 3
        # supp <= 0: sums only decrease as tuples are added, so the best
        # achievable sum for a group containing t is t.v itself.
        if c < inf or (c == inf and op is Op.GE and not dom.lo_open):
            return TRUE  # Lemma 1: c below the whole domain
        if c > supp or (c == supp and op is Op.GT):
            return FALSE  # Lemma 1: unreachable threshold
        return atom(ColumnConstantPredicate(
            ref, op, c))  # Lemma 1: σ_{v > c}
    if op in (Op.LT, Op.LE):
        if inf < 0:
            return TRUE  # dual of Lemma 1 case 1
        # inf >= 0: sums only increase; minimal sum for t's group is t.v.
        if c > supp or (c == supp and op is Op.LE and not dom.hi_open):
            return TRUE
        if c < inf or (c == inf and op is Op.LT):
            return FALSE
        return atom(ColumnConstantPredicate(ref, op, c))
    if op is Op.EQ:
        if inf < 0 < supp:
            return TRUE  # sums can be tuned onto any target
        if inf >= 0:
            if c < inf:
                return FALSE
            return atom(ColumnConstantPredicate(ref, Op.LE, c))
        if c > supp:
            return FALSE
        return atom(ColumnConstantPredicate(ref, Op.GE, c))
    return TRUE  # <>: almost any group misses the exact value


# ---------------------------------------------------------------------------
# MIN / MAX: min of a group containing t is at most t.v and can be lowered
# at will (down to inf); max is at least t.v and can be raised (up to supp).
# ---------------------------------------------------------------------------

def _min_rule(ref: ColumnRef, op: Op, c: float, dom: Interval) -> BoolExpr:
    if op in (Op.GT, Op.GE):
        # min > c forces every member above c, including t.
        if c >= dom.hi:
            return FALSE if (c > dom.hi or op is Op.GT) else \
                atom(ColumnConstantPredicate(ref, Op.GE, c))
        return atom(ColumnConstantPredicate(ref, op, c))
    if op in (Op.LT, Op.LE):
        # Any tuple's group min can be pulled below c if the domain allows.
        reachable = dom.lo < c or (dom.lo == c and op is Op.LE
                                   and not dom.lo_open)
        return TRUE if reachable else FALSE
    if op is Op.EQ:
        if not dom.contains(c):
            return FALSE
        return atom(ColumnConstantPredicate(ref, Op.GE, c))
    return TRUE


def _max_rule(ref: ColumnRef, op: Op, c: float, dom: Interval) -> BoolExpr:
    if op in (Op.LT, Op.LE):
        if c <= dom.lo:
            return FALSE if (c < dom.lo or op is Op.LT) else \
                atom(ColumnConstantPredicate(ref, Op.LE, c))
        return atom(ColumnConstantPredicate(ref, op, c))
    if op in (Op.GT, Op.GE):
        reachable = dom.hi > c or (dom.hi == c and op is Op.GE
                                   and not dom.hi_open)
        return TRUE if reachable else FALSE
    if op is Op.EQ:
        if not dom.contains(c):
            return FALSE
        return atom(ColumnConstantPredicate(ref, Op.LE, c))
    return TRUE


# ---------------------------------------------------------------------------
# AVG: the average of a group containing t can be steered to any interior
# point of the domain by adding enough tuples, regardless of t's value.
# ---------------------------------------------------------------------------

def _avg_rule(op: Op, c: float, dom: Interval) -> BoolExpr:
    inf, supp = dom.lo, dom.hi
    if op in (Op.GT, Op.GE):
        reachable = supp > c or (supp == c and op is Op.GE
                                 and not dom.hi_open)
        return TRUE if reachable else FALSE
    if op in (Op.LT, Op.LE):
        reachable = inf < c or (inf == c and op is Op.LE
                                and not dom.lo_open)
        return TRUE if reachable else FALSE
    if op is Op.EQ:
        return TRUE if dom.contains(c) else FALSE
    return TRUE


def effective_domain(declared: Interval | None,
                     where_footprint: Interval | None) -> Interval:
    """Combine the declared domain with the WHERE narrowing (Lemmas 2/3).

    Missing information defaults to the full real line, matching the
    paper's simplifying assumption that domains are "large enough such
    that ... [they] can be considered as (-inf, +inf)".
    """
    dom = declared if declared is not None else \
        Interval(NEG_INF, POS_INF, True, True)
    if where_footprint is not None:
        narrowed = dom.intersect(where_footprint)
        if narrowed is not None:
            return narrowed
        # Contradictory WHERE: keep a degenerate empty-ish marker by
        # returning the where footprint itself; the caller's WHERE part
        # already collapses the area.
        return where_footprint
    return dom
