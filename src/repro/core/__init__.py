"""The paper's primary contribution: access-area extraction.

Public surface:

* :class:`AccessArea` — the intermediate-format area model;
* :class:`AccessAreaExtractor` / :class:`ExtractionResult` — the per-query
  pipeline (parse → extract → CNF → consolidate) with stage timings;
* :func:`process_log` / :class:`LogProcessingReport` — batch processing
  with the Section 6.1 failure taxonomy;
* :func:`aggregate_constraint` — the Lemma 1-3 HAVING mappings.
"""

from .aggregates import (SUPPORTED_AGGREGATES, aggregate_constraint,
                         effective_domain)
from .area import AccessArea, empty_area, unconstrained
from .context import ExtractionContext
from .extractor import (AccessAreaExtractor, ExtractionResult, StageTimings,
                        having_to_expr)
from .pipeline import (AccessAreaInterner, ExtractedQuery, InternStats,
                       LogProcessingReport, StageTimingSummary,
                       dedupe_areas, expand_labels, process_log)
from .stream import (EventKind, StreamEvent, StreamMonitor, StreamState)
from .transform import condition_to_expr, flatten_subquery, from_items_to_expr

__all__ = [
    "SUPPORTED_AGGREGATES", "aggregate_constraint", "effective_domain",
    "AccessArea", "empty_area", "unconstrained",
    "ExtractionContext",
    "AccessAreaExtractor", "ExtractionResult", "StageTimings",
    "having_to_expr",
    "AccessAreaInterner", "ExtractedQuery", "InternStats",
    "LogProcessingReport", "StageTimingSummary",
    "dedupe_areas", "expand_labels", "process_log",
    "EventKind", "StreamEvent", "StreamMonitor", "StreamState",
    "condition_to_expr", "flatten_subquery", "from_items_to_expr",
]
