"""Shared state of one query's access-area extraction.

Tracks the relations of the universal relation, the alias scopes used to
resolve column references (including correlated references from nested
subqueries, Section 4.4), and diagnostic notes about approximations.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from ..algebra.predicates import ColumnRef
from ..schema.database import Schema


@dataclass
class ExtractionContext:
    """Mutable extraction state threaded through the conversion passes."""

    schema: Optional[Schema]
    #: real relation names of the universal relation, insertion-ordered
    relations: list[str] = field(default_factory=list)
    #: binding (alias or bare table name, lower-cased) -> real relation name
    aliases: dict[str, str] = field(default_factory=dict)
    notes: list[str] = field(default_factory=list)
    parent: Optional["ExtractionContext"] = None
    #: number of widening approximations recorded (root-stored)
    widenings: int = 0

    # -- relation bookkeeping ---------------------------------------------------

    def canonical_relation(self, name: str) -> str:
        """Schema capitalization when known, lowercase otherwise.

        Relation names are canonicalized exactly once, here at
        extraction: resolve against the schema catalog when possible,
        fall back to lowercase for unknown relations.  A log mixing
        ``PhotoObj``/``photoobj`` therefore always produces the same
        :attr:`AccessArea.table_set` — the value ``d_tables`` compares
        *and* the partition key of the clustering decomposition — so the
        two sites can never disagree on case.
        """
        if self.schema is not None and self.schema.has_relation(name):
            return self.schema.canonical_name(name)
        return name.lower()

    def register_table(self, name: str, alias: Optional[str] = None) -> str:
        """Add a FROM occurrence to the universal relation; returns the
        real relation name.

        Two occurrences of the same relation merge into one — the paper
        excludes self-joins (none occur in the SkyServer log), so the
        universal relation contains each relation once.
        """
        real = self.canonical_relation(name)
        root = self._root()
        if real.lower() not in (r.lower() for r in root.relations):
            root.relations.append(real)
        self.aliases[(alias or name).lower()] = real
        if alias is None:
            self.aliases[name.lower()] = real
        return real

    def _root(self) -> "ExtractionContext":
        ctx: ExtractionContext = self
        while ctx.parent is not None:
            ctx = ctx.parent
        return ctx

    def child(self) -> "ExtractionContext":
        """A nested scope for a subquery: new alias namespace, shared
        relation list and notes (both live on the root)."""
        return ExtractionContext(
            schema=self.schema,
            relations=self._root().relations,
            aliases={},
            notes=self._root().notes,
            parent=self,
        )

    def note(self, message: str) -> None:
        self._root().notes.append(message)

    def approx(self, message: str) -> None:
        """Record a note for an approximation that *widens* the area.

        Widening keeps extraction sound (the area stays an over-set of
        every influencing tuple) but gives up exactness: the constraint
        no longer pins down the minimal access area, so canonical
        fingerprints of semantically equal queries may differ.  The
        differential oracle reads :attr:`exact` to skip equality checks
        while still enforcing soundness.
        """
        self._root().widenings += 1
        self.note(message)

    @property
    def widening_count(self) -> int:
        """Widenings recorded so far, on any scope of this extraction."""
        return self._root().widenings

    @property
    def exact(self) -> bool:
        """True when no widening approximation was applied."""
        return self._root().widenings == 0

    # -- column resolution ---------------------------------------------------------

    def resolve_column(self, table: Optional[str],
                       column: str) -> ColumnRef | None:
        """Resolve a column reference to a qualified :class:`ColumnRef`.

        Qualified references follow the alias scope chain.  Unqualified
        references are searched in the current scope's relations via the
        schema; with no schema, they resolve only when the scope has
        exactly one relation.  Unresolvable references return ``None``
        (the caller widens the constraint and records a note).
        """
        if table is not None:
            ctx: Optional[ExtractionContext] = self
            while ctx is not None:
                real = ctx.aliases.get(table.lower())
                if real is not None:
                    return ColumnRef(real, column)
                ctx = ctx.parent
            # Unknown qualifier: treat it as a relation name outright
            # (queries sometimes qualify by table without declaring it).
            return ColumnRef(self.canonical_relation(table), column)

        ctx = self
        while ctx is not None:
            match = ctx._find_in_scope(column)
            if match is not None:
                return match
            ctx = ctx.parent
        return None

    def _find_in_scope(self, column: str) -> ColumnRef | None:
        scope_relations = list(dict.fromkeys(self.aliases.values()))
        if self.schema is not None:
            for relation in scope_relations:
                if (self.schema.has_relation(relation)
                        and self.schema.relation(relation)
                        .has_column(column)):
                    return ColumnRef(relation, column)
        # Single-relation fallback — but only when the schema cannot rule
        # the binding out (otherwise the search must continue outward to
        # the enclosing scope, which is where a correlated column lives).
        if len(scope_relations) == 1:
            relation = scope_relations[0]
            if self.schema is None or not self.schema.has_relation(relation):
                return ColumnRef(relation, column)
        return None

    def scope_relations(self) -> list[str]:
        """Real relation names visible in this scope only."""
        return list(dict.fromkeys(self.aliases.values()))
