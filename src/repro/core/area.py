"""The access-area model (Definitions 1–4 / intermediate format).

An :class:`AccessArea` is the materialized intermediate format of
Section 2.4: the sorted list of relations of the universal relation
``U = R1 × … × RN`` plus a CNF constraint ``F(p1, …, pK)`` over atomic
predicates.  The access area it denotes is ``σ_F(R1 × … × RN)``.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..algebra.cnf import CNF, Clause
from ..algebra.intervals import Interval, IntervalSet
from ..algebra.predicates import ColumnConstantPredicate, ColumnRef


@dataclass(frozen=True, eq=False)
class AccessArea:
    """One query's access area in intermediate format.

    ``relations`` are real (alias-resolved) relation names, sorted
    alphabetically — the Section 4.5 cleanup ordering.  ``cnf`` is the
    constraint on the universal relation; the empty CNF means the whole
    universal relation is accessed.

    Equality and hashing are **canonical**: two areas are equal exactly
    when their :attr:`fingerprint` matches — sorted relation set plus
    the order-insensitive CNF key of sorted clauses over normalized
    predicate forms.  Clause or predicate ordering quirks from the
    parser, duplicated clauses, and equal-but-differently-spelled
    literals (``5`` vs ``5.0``) therefore never split identity, and the
    access-area intern pool can key a dict by the area itself.
    ``notes`` are diagnostics and do not participate; neither does
    ``exact``, which records whether extraction applied any *widening*
    approximation (``False`` means the CNF is a sound over-set but not
    necessarily the minimal access area — consumers such as the
    differential oracle must then skip equality checks).
    """

    relations: tuple[str, ...]
    cnf: CNF
    notes: tuple[str, ...] = field(default=())
    exact: bool = field(default=True)

    def __post_init__(self) -> None:
        ordered = tuple(sorted(dict.fromkeys(self.relations)))
        object.__setattr__(self, "relations", ordered)

    @property
    def fingerprint(self) -> tuple:
        """Canonical, order-insensitive identity key of this area."""
        cached = self.__dict__.get("_fingerprint")
        if cached is None:
            cached = (self.relations, self.cnf.canonical_key())
            object.__setattr__(self, "_fingerprint", cached)
        return cached

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, AccessArea):
            return NotImplemented
        return self.fingerprint == other.fingerprint

    def __hash__(self) -> int:
        cached = self.__dict__.get("_hash")
        if cached is None:
            cached = hash(self.fingerprint)
            object.__setattr__(self, "_hash", cached)
        return cached

    @property
    def is_unconstrained(self) -> bool:
        return self.cnf.is_true

    @property
    def is_empty(self) -> bool:
        """True when the constraint is unsatisfiable (empty access area)."""
        return any(len(clause) == 0 for clause in self.cnf)

    @property
    def table_set(self) -> frozenset[str]:
        """``q.FROM`` of the distance function (Section 5.1).

        Relation names are canonical as of extraction (schema
        capitalization, lowercase fallback — see
        :meth:`repro.core.context.ExtractionContext.canonical_relation`),
        so this frozenset doubles as the partition key of the table-set
        clustering decomposition: equal sets ⇔ ``d_tables == 0``.
        """
        return frozenset(self.relations)

    def column_footprints(self) -> dict[ColumnRef, IntervalSet]:
        """Per-column numeric footprint implied by *unit* clauses.

        Unit clauses constrain their column everywhere in the area, so
        intersecting them per column yields the projection of the access
        area onto each constrained axis.  Non-unit clauses and non-numeric
        predicates do not narrow any single axis and are skipped — a
        conservative over-approximation.

        The result is computed once and cached (the area is immutable;
        aggregation and density analysis call this repeatedly).
        """
        cached = getattr(self, "_footprints_cache", None)
        if cached is not None:
            return cached
        footprints = self._compute_footprints()
        object.__setattr__(self, "_footprints_cache", footprints)
        return footprints

    def _compute_footprints(self) -> dict[ColumnRef, IntervalSet]:
        footprints: dict[ColumnRef, IntervalSet] = {}
        for clause in self.cnf:
            if not clause.is_unit:
                continue
            pred = clause.predicates[0]
            if not (isinstance(pred, ColumnConstantPredicate)
                    and pred.is_numeric):
                continue
            fp = pred.to_interval_set()
            if pred.ref in footprints:
                footprints[pred.ref] = footprints[pred.ref].intersect(fp)
            else:
                footprints[pred.ref] = fp
        return footprints

    def footprint_hull(self, ref: ColumnRef) -> Interval | None:
        """Bounding interval of the area's footprint on one column."""
        footprint = self.column_footprints().get(ref)
        if footprint is None:
            return None
        return footprint.hull()

    def describe(self) -> str:
        """Human-readable Boolean-expression form, Table-1 style."""
        if self.is_empty:
            return "∅"
        where = str(self.cnf)
        tables = ", ".join(self.relations) or "(no relations)"
        if self.cnf.is_true:
            return tables
        return f"{where}  [on {tables}]"

    def __str__(self) -> str:
        return self.describe()


def unconstrained(relations: tuple[str, ...] | list[str]) -> AccessArea:
    """The access area of a constraint-free query (e.g. full outer join)."""
    return AccessArea(tuple(relations), CNF.true())


def empty_area(relations: tuple[str, ...] | list[str]) -> AccessArea:
    """An unsatisfiable access area (contradictory constraints)."""
    return AccessArea(tuple(relations), CNF((Clause(()),)))
