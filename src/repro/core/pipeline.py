"""Batch processing of a query log (Section 6.1 / 6.6).

Runs the extractor over many statements, collecting the extraction-rate
taxonomy the paper reports (parse errors, unsupported statements, CNF
blow-ups) and per-stage timing distributions.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass, field
from hashlib import sha256
from typing import Callable, Iterable, Optional, Sequence

from ..algebra.cnf import CNFConversionError
from ..obs import get_logger, metrics, trace
from ..obs.metrics import Histogram
from ..sqlparser import (LexError, ParseError, UnsupportedStatementError)
from .area import AccessArea
from .extractor import AccessAreaExtractor, StageTimings

logger = get_logger(__name__)

_STAGES = ("parse", "extract", "cnf", "consolidate")


@dataclass
class InternStats:
    """Outcome of interning a population of access areas.

    ``pool_size`` unique areas absorbed ``hits + pool_size`` probes; the
    ``dedup_ratio`` (source areas per unique area) is the factor by
    which downstream O(n²) distance work shrinks to O(u²)."""

    pool_size: int = 0
    hits: int = 0

    @property
    def probes(self) -> int:
        return self.pool_size + self.hits

    @property
    def hit_rate(self) -> float:
        if not self.probes:
            return 0.0
        return self.hits / self.probes

    @property
    def dedup_ratio(self) -> float:
        """Source areas per unique area (≥ 1.0; 1.0 = nothing repeated)."""
        if not self.pool_size:
            return 1.0
        return self.probes / self.pool_size


class AccessAreaInterner:
    """Canonical-fingerprint intern pool for :class:`AccessArea`.

    SkyServer-style logs are dominated by bot- and template-generated
    repeats of the same statement, so most extracted areas are exact
    duplicates at the access-area level.  The pool maps each area to its
    first-seen representative via the canonical ``AccessArea`` identity
    (order-insensitive CNF fingerprint), so logically identical areas —
    regardless of clause/predicate arrival order or literal spelling —
    collapse to one shared, immutable object whose footprint caches are
    computed once.

    Two backings:

    * **memory** (default): a plain dict, unbounded — the batch path.
    * **disk**: pass ``store`` (an :class:`~repro.store.AreaStore`) and
      every new fingerprint is also appended to the store's crash-safe
      segment log.  With ``max_resident`` the in-memory side becomes an
      LRU of at most that many representatives; evicted areas remain
      reachable through the store (a later probe for an evicted
      fingerprint is still a *hit* — uniqueness is judged against the
      persistent index, not resident memory).  This is what bounds the
      resident footprint of ``repro serve``.
    """

    def __init__(self, store=None,
                 max_resident: Optional[int] = None) -> None:
        if max_resident is not None and store is None:
            raise ValueError(
                "max_resident requires a backing store: evicting from "
                "a memory-only pool would forget seen fingerprints")
        if max_resident is not None and max_resident < 1:
            raise ValueError(
                f"max_resident must be >= 1, got {max_resident}")
        self._pool: OrderedDict[AccessArea, AccessArea] = OrderedDict()
        self.hits = 0
        self.store = store
        self.max_resident = max_resident
        self.evictions = 0
        self._recorded: dict[str, float] = {}

    @property
    def backing(self) -> str:
        return "disk" if self.store is not None else "memory"

    def intern(self, area: AccessArea) -> AccessArea:
        """The pooled representative of ``area`` (``area`` itself when
        its fingerprint is new)."""
        found = self._pool.get(area)
        if found is not None:
            self.hits += 1
            if self.max_resident is not None:
                self._pool.move_to_end(area)
            return found
        if self.store is not None:
            known = len(self.store)
            digest = self.store.append_area(area)
            if len(self.store) == known and digest in self.store:
                # Fingerprint already persisted (evicted from memory,
                # or written by an earlier run) — a hit, re-admitted
                # to the resident pool under the caller's equal object.
                self.hits += 1
        self._pool[area] = area
        self._evict()
        return area

    def _evict(self) -> None:
        if self.max_resident is None:
            return
        while len(self._pool) > self.max_resident:
            self._pool.popitem(last=False)
            self.evictions += 1

    def __len__(self) -> int:
        """Unique fingerprints seen (resident + store-persisted)."""
        if self.store is not None:
            return len(self.store)
        return len(self._pool)

    @property
    def resident(self) -> int:
        """Representatives currently held in memory."""
        return len(self._pool)

    def __contains__(self, area: AccessArea) -> bool:
        if area in self._pool:
            return True
        if self.store is not None:
            from ..store.codec import fingerprint_digest
            return fingerprint_digest(area) in self.store
        return False

    def areas(self) -> list[AccessArea]:
        """The unique representatives in first-seen order.

        Disk-backed pools read from the segment log (append order is
        first-seen order), so the answer survives eviction and even a
        process restart."""
        if self.store is not None:
            return [area for _digest, area in self.store.iter_areas()]
        return list(self._pool.values())

    def stats(self) -> InternStats:
        return InternStats(pool_size=len(self), hits=self.hits)

    def record(self, registry: metrics.MetricsRegistry) -> None:
        """Fold pool state into a metrics registry (``repro_intern_*``).

        Counter recording is **delta-based**: only movement since the
        previous call is added, so a resident process (the ``repro
        serve`` lifecycle) can re-record on every scrape without
        double-counting.  Gauges are plain sets and were never at risk.
        """
        registry.gauge("repro_intern_pool_size").set(len(self))
        registry.gauge("repro_intern_pool_resident").set(self.resident)
        metrics.record_counter_deltas(registry, self._recorded, (
            ("repro_intern_hits_total", self.hits),
            ("repro_intern_misses_total", len(self)),
            ("repro_intern_evictions_total", self.evictions)))
        if len(self):
            registry.gauge("repro_intern_dedup_ratio").set(
                self.stats().dedup_ratio)
        if self.store is not None:
            self.store.record(registry)


def dedupe_areas(areas: Sequence[AccessArea],
                 interner: Optional[AccessAreaInterner] = None,
                 ) -> tuple[list[AccessArea], list[int], list[int]]:
    """Collapse ``areas`` to ``(unique, weights, inverse)``.

    ``unique`` holds the representatives in first-occurrence order (so
    clustering scan order — and therefore cluster numbering — matches
    the non-deduplicated population), ``weights[u]`` counts how many
    source areas map to ``unique[u]``, and ``inverse[i]`` is the unique
    index of source area ``i`` — the expansion map of
    :func:`expand_labels`.
    """
    if interner is None:
        interner = AccessAreaInterner()
    unique: list[AccessArea] = []
    weights: list[int] = []
    inverse: list[int] = []
    position: dict[AccessArea, int] = {}
    for area in areas:
        pooled = interner.intern(area)
        index = position.get(pooled)
        if index is None:
            index = len(unique)
            position[pooled] = index
            unique.append(pooled)
            weights.append(0)
        weights[index] += 1
        inverse.append(index)
    return unique, weights, inverse


def expand_labels(labels: Sequence[int],
                  inverse: Sequence[int]) -> list[int]:
    """Map per-unique-area cluster labels back to source query order."""
    return [labels[index] for index in inverse]


class StageTimingSummary:
    """Per-stage timing distribution across a log.

    Backed by one :class:`~repro.obs.metrics.Histogram`, so minimum and
    maximum go through the same symmetric accumulator (an empty summary
    reports both as ``0.0``, never ``inf``, keeping exported reports
    finite and parseable) and quantiles (:meth:`quantile`, :attr:`p50`
    / :attr:`p95` / :attr:`p99`) come for free.
    """

    __slots__ = ("_histogram",)

    def __init__(self, histogram: Optional[Histogram] = None) -> None:
        self._histogram = histogram or Histogram("stage_seconds")

    def add(self, value: float) -> None:
        self._histogram.observe(value)

    @property
    def count(self) -> int:
        return self._histogram.count

    @property
    def minimum(self) -> float:
        return self._histogram.minimum

    @property
    def maximum(self) -> float:
        return self._histogram.maximum

    @property
    def total(self) -> float:
        return self._histogram.total

    @property
    def mean(self) -> float:
        return self._histogram.mean

    def quantile(self, q: float) -> float:
        return self._histogram.quantile(q)

    @property
    def p50(self) -> float:
        return self._histogram.quantile(0.50)

    @property
    def p95(self) -> float:
        return self._histogram.quantile(0.95)

    @property
    def p99(self) -> float:
        return self._histogram.quantile(0.99)

    def __repr__(self) -> str:
        return (f"StageTimingSummary(count={self.count}, "
                f"min={self.minimum:.6f}, mean={self.mean:.6f}, "
                f"max={self.maximum:.6f})")


@dataclass
class ExtractedQuery:
    """One successfully processed log entry."""

    index: int
    sql: str
    area: AccessArea
    user: Optional[str] = None


@dataclass
class LogProcessingReport:
    """Outcome of processing a whole log."""

    total: int = 0
    extracted: list[ExtractedQuery] = field(default_factory=list)
    parse_errors: int = 0
    lex_errors: int = 0
    unsupported_statements: int = 0
    cnf_failures: int = 0
    failures: list[tuple[int, str, str]] = field(default_factory=list)
    stage_timings: dict[str, StageTimingSummary] = field(
        default_factory=lambda: {stage: StageTimingSummary()
                                 for stage in _STAGES})
    #: the access-area intern pool (None when interning was disabled)
    interner: Optional[AccessAreaInterner] = None
    #: continuation lines folded into multi-line statements upstream
    #: (e.g. by :meth:`repro.workload.QueryLog.load_plain`) — part of
    #: the extraction-rate taxonomy, *not* parse errors
    continuation_lines: int = 0
    #: True when the report was replayed from a store's log manifest
    #: (zero SQL extraction happened; stage timings are empty)
    warm: bool = False

    @property
    def extraction_count(self) -> int:
        return len(self.extracted)

    @property
    def failure_count(self) -> int:
        return (self.parse_errors + self.lex_errors
                + self.unsupported_statements + self.cnf_failures)

    @property
    def extraction_rate(self) -> float:
        """Fraction of log entries with an extracted access area.

        The paper reports >99.4% on the real log (Section 6.1)."""
        if self.total == 0:
            return 0.0
        return self.extraction_count / self.total

    def record_timings(self, timings: StageTimings) -> None:
        for stage in _STAGES:
            self.stage_timings[stage].add(getattr(timings, stage))

    @property
    def intern_stats(self) -> InternStats:
        if self.interner is None:
            return InternStats()
        return self.interner.stats()

    def areas(self) -> list[AccessArea]:
        return [entry.area for entry in self.extracted]

    def unique_areas(self) -> tuple[list[AccessArea], list[int], list[int]]:
        """The extracted areas deduplicated: ``(unique, weights,
        inverse)`` as per :func:`dedupe_areas`.  When the report was
        built with interning, duplicates are already shared objects and
        this only builds the weight/inverse maps."""
        return dedupe_areas(self.areas())

    def distance_matrix(self, metric: Callable[[AccessArea, AccessArea],
                                               float], *,
                        n_jobs: int = 1, cutoff: Optional[float] = None):
        """Pairwise :class:`~repro.distance.DistanceMatrix` over the
        extracted areas — the batch path's hand-off to the clustering
        stage.  ``n_jobs``/``cutoff`` are forwarded to
        :meth:`~repro.distance.DistanceMatrix.compute`.
        """
        # Imported lazily: the core layer must not depend on the
        # distance layer at import time.
        from ..distance.matrix import DistanceMatrix
        return DistanceMatrix.compute(self.areas(), metric,
                                      n_jobs=n_jobs, cutoff=cutoff)


def _extractor_signature(extractor: AccessAreaExtractor) -> str:
    """A stable description of everything that shapes extraction.

    Part of the log-manifest key: changing the predicate cap, the
    consolidation toggle, or the schema must miss the warm cache —
    replaying outcomes produced under different knobs would be wrong.
    """
    schema = extractor.schema
    if schema is None:
        schema_sig = "noschema"
    else:
        schema_sig = ";".join(
            f"{relation.name}({','.join(relation.column_names)})"
            for relation in sorted(schema,
                                   key=lambda rel: rel.name.lower()))
    return (f"cap={extractor.predicate_cap}"
            f"|consolidate={extractor.consolidate}"
            f"|schema={schema_sig}")


def log_manifest_key(statements: Sequence[str | tuple[str, str]],
                     extractor: AccessAreaExtractor) -> str:
    """Content key of one (statement stream, extractor config) pair."""
    h = sha256()
    h.update(_extractor_signature(extractor).encode("utf-8"))
    for item in statements:
        sql, user = (item, None) if isinstance(item, str) else item
        h.update(b"q")
        h.update(sql.encode("utf-8"))
        if user is not None:
            h.update(b"u")
            h.update(str(user).encode("utf-8"))
    return h.hexdigest()


_FAILURE_FIELDS = {"unsupported": "unsupported_statements",
                   "lex": "lex_errors",
                   "parse": "parse_errors",
                   "cnf": "cnf_failures"}


def _replay_log_manifest(manifest: dict, statements, store,
                         registry, interner, keep_failures,
                         ) -> Optional[LogProcessingReport]:
    """Rebuild a :class:`LogProcessingReport` from a stored manifest —
    the warm path: zero parsing, zero CNF work, areas fetched from the
    segment log by digest.  ``None`` when the manifest references a
    digest the store no longer holds (caller falls back to cold)."""
    report = LogProcessingReport(interner=interner, warm=True)
    statements_total = registry.counter("repro_pipeline_statements_total")
    extracted_total = registry.counter("repro_pipeline_extracted_total")
    failure_counters = {
        kind: registry.counter("repro_pipeline_failures_total", kind=kind)
        for kind in _FAILURE_FIELDS
    }
    cache: dict[str, AccessArea] = {}
    for index, (item, outcome) in enumerate(
            zip(statements, manifest["outcomes"])):
        sql, user = (item, None) if isinstance(item, str) else item
        report.total += 1
        statements_total.inc()
        if outcome[0] == "f":
            kind, message = outcome[1], outcome[2]
            setattr(report, _FAILURE_FIELDS[kind],
                    getattr(report, _FAILURE_FIELDS[kind]) + 1)
            failure_counters[kind].inc()
            if keep_failures:
                report.failures.append((index, kind, message))
            continue
        digest_hex = outcome[1]
        area = cache.get(digest_hex)
        if area is None:
            area = store.get_area(bytes.fromhex(digest_hex))
            if area is None:
                return None
            cache[digest_hex] = area
        if interner is not None:
            area = interner.intern(area)
        extracted_total.inc()
        report.extracted.append(ExtractedQuery(index, sql, area, user))
    return report


def process_log(statements: Iterable[str | tuple[str, str]],
                extractor: AccessAreaExtractor | None = None,
                keep_failures: bool = True,
                registry: Optional[metrics.MetricsRegistry] = None,
                intern: bool = True,
                interner: Optional[AccessAreaInterner] = None,
                store=None,
                ) -> LogProcessingReport:
    """Extract access areas from every statement of a log.

    ``statements`` yields SQL strings or ``(sql, user)`` pairs.  Failures
    are tallied by class, never raised — mirroring the robust batch run
    over 12.4M statements in the paper.  ``registry`` — metrics sink
    (defaults to the process-wide registry): per-outcome counters under
    ``repro_pipeline_*`` plus per-stage latency histograms.

    ``intern`` (default on) pools extracted areas by canonical
    fingerprint: repeats of the same access area share one immutable
    object, so a repeat-heavy log stores ``u`` unique areas instead of
    ``n``, footprint caches warm once, and the report's
    :meth:`~LogProcessingReport.unique_areas` collapse is free.  Pass
    ``interner`` to share a pool across logs; ``intern=False`` restores
    the one-object-per-statement behaviour (``--no-intern`` debugging).

    ``store`` (an :class:`~repro.store.AreaStore`) persists the run:
    every unique area lands in the crash-safe segment log, and a **log
    manifest** — the per-statement outcome sequence keyed by a hash of
    the statement stream and extractor config — is published at the
    end.  A later call with the same statements, config, and store
    replays the manifest instead of re-extracting: zero SQL parsing,
    areas fetched by fingerprint digest, and a report whose areas are
    fingerprint-identical to the cold run's (so downstream clustering
    labels match bitwise).  Warm reports have ``report.warm`` set and
    empty stage timings.
    """
    if extractor is None:
        extractor = AccessAreaExtractor()
    if registry is None:
        registry = metrics.get_registry()
    if intern and interner is None:
        interner = AccessAreaInterner()
    elif not intern:
        interner = None

    manifest_key = None
    if store is not None:
        statements = list(statements)
        manifest_key = log_manifest_key(statements, extractor)
        manifest = store.load_meta(f"log-{manifest_key}")
        if manifest is not None \
                and manifest.get("total") == len(statements):
            report = _replay_log_manifest(
                manifest, statements, store, registry, interner,
                keep_failures)
            if report is not None:
                registry.counter(
                    "repro_store_log_warm_hits_total").inc()
                if interner is not None:
                    interner.record(registry)
                store.record(registry)
                logger.info(
                    "warm-replayed %d statements from manifest %s: "
                    "%d extracted, zero SQL extraction",
                    report.total, manifest_key[:12],
                    report.extraction_count)
                return report
        registry.counter("repro_store_log_warm_misses_total").inc()
    statements_total = registry.counter("repro_pipeline_statements_total")
    extracted_total = registry.counter("repro_pipeline_extracted_total")
    failure_counters = {
        kind: registry.counter("repro_pipeline_failures_total", kind=kind)
        for kind in ("unsupported", "lex", "parse", "cnf")
    }
    stage_histograms = {
        stage: registry.histogram("repro_pipeline_stage_seconds",
                                  stage=stage)
        for stage in _STAGES
    }

    report = LogProcessingReport(interner=interner)
    outcomes: Optional[list] = [] if store is not None else None

    def fail(index: int, kind: str, exc: Exception) -> None:
        failure_counters[kind].inc()
        if keep_failures:
            report.failures.append((index, kind, str(exc)))
        if outcomes is not None:
            outcomes.append(("f", kind, str(exc)))

    with trace.span("process_log") as root:
        for index, item in enumerate(statements):
            sql, user = (item, None) if isinstance(item, str) else item
            report.total += 1
            statements_total.inc()
            try:
                result = extractor.extract(sql)
            except UnsupportedStatementError as exc:
                report.unsupported_statements += 1
                fail(index, "unsupported", exc)
                continue
            except LexError as exc:
                report.lex_errors += 1
                fail(index, "lex", exc)
                continue
            except ParseError as exc:
                report.parse_errors += 1
                fail(index, "parse", exc)
                continue
            except CNFConversionError as exc:
                report.cnf_failures += 1
                fail(index, "cnf", exc)
                continue
            extracted_total.inc()
            report.record_timings(result.timings)
            for stage in _STAGES:
                stage_histograms[stage].observe(
                    getattr(result.timings, stage),
                    exemplar=result.span_id)
            area = result.area
            if interner is not None:
                area = interner.intern(area)
            if store is not None:
                digest = store.append_area(area)
                outcomes.append(("a", digest.hex()))
            report.extracted.append(
                ExtractedQuery(index, sql, area, user))
        root.set(statements=report.total,
                 extracted=report.extraction_count,
                 failures=report.failure_count)
        if store is not None:
            store.save_meta(f"log-{manifest_key}", {
                "total": report.total,
                "extracted": report.extraction_count,
                "outcomes": outcomes,
            })
            store.checkpoint()
            store.record(registry)
        if interner is not None:
            interner.record(registry)
            root.set(intern_pool=len(interner),
                     intern_hits=interner.hits)
    logger.info(
        "processed %d statements: %d extracted (%.2f%%), %d failures",
        report.total, report.extraction_count,
        report.extraction_rate * 100.0, report.failure_count)
    return report
