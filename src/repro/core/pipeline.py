"""Batch processing of a query log (Section 6.1 / 6.6).

Runs the extractor over many statements, collecting the extraction-rate
taxonomy the paper reports (parse errors, unsupported statements, CNF
blow-ups) and per-stage timing distributions.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Iterable, Optional

from ..algebra.cnf import CNFConversionError
from ..sqlparser import (LexError, ParseError, UnsupportedStatementError)
from .area import AccessArea
from .extractor import AccessAreaExtractor, StageTimings


@dataclass
class StageTimingSummary:
    """Min / max / mean / total seconds per stage across a log.

    An empty summary reports ``minimum == 0.0`` (not ``inf``) so that
    exported reports over logs with no successful extraction stay
    finite and parseable.
    """

    count: int = 0
    minimum: float = 0.0
    maximum: float = 0.0
    total: float = 0.0

    def add(self, value: float) -> None:
        self.minimum = value if self.count == 0 \
            else min(self.minimum, value)
        self.count += 1
        self.maximum = max(self.maximum, value)
        self.total += value

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0


@dataclass
class ExtractedQuery:
    """One successfully processed log entry."""

    index: int
    sql: str
    area: AccessArea
    user: Optional[str] = None


@dataclass
class LogProcessingReport:
    """Outcome of processing a whole log."""

    total: int = 0
    extracted: list[ExtractedQuery] = field(default_factory=list)
    parse_errors: int = 0
    lex_errors: int = 0
    unsupported_statements: int = 0
    cnf_failures: int = 0
    failures: list[tuple[int, str, str]] = field(default_factory=list)
    stage_timings: dict[str, StageTimingSummary] = field(
        default_factory=lambda: {
            "parse": StageTimingSummary(),
            "extract": StageTimingSummary(),
            "cnf": StageTimingSummary(),
            "consolidate": StageTimingSummary(),
        })

    @property
    def extraction_count(self) -> int:
        return len(self.extracted)

    @property
    def failure_count(self) -> int:
        return (self.parse_errors + self.lex_errors
                + self.unsupported_statements + self.cnf_failures)

    @property
    def extraction_rate(self) -> float:
        """Fraction of log entries with an extracted access area.

        The paper reports >99.4% on the real log (Section 6.1)."""
        if self.total == 0:
            return 0.0
        return self.extraction_count / self.total

    def record_timings(self, timings: StageTimings) -> None:
        self.stage_timings["parse"].add(timings.parse)
        self.stage_timings["extract"].add(timings.extract)
        self.stage_timings["cnf"].add(timings.cnf)
        self.stage_timings["consolidate"].add(timings.consolidate)

    def areas(self) -> list[AccessArea]:
        return [entry.area for entry in self.extracted]

    def distance_matrix(self, metric: Callable[[AccessArea, AccessArea],
                                               float], *,
                        n_jobs: int = 1, cutoff: Optional[float] = None):
        """Pairwise :class:`~repro.distance.DistanceMatrix` over the
        extracted areas — the batch path's hand-off to the clustering
        stage.  ``n_jobs``/``cutoff`` are forwarded to
        :meth:`~repro.distance.DistanceMatrix.compute`.
        """
        # Imported lazily: the core layer must not depend on the
        # distance layer at import time.
        from ..distance.matrix import DistanceMatrix
        return DistanceMatrix.compute(self.areas(), metric,
                                      n_jobs=n_jobs, cutoff=cutoff)


def process_log(statements: Iterable[str | tuple[str, str]],
                extractor: AccessAreaExtractor | None = None,
                keep_failures: bool = True) -> LogProcessingReport:
    """Extract access areas from every statement of a log.

    ``statements`` yields SQL strings or ``(sql, user)`` pairs.  Failures
    are tallied by class, never raised — mirroring the robust batch run
    over 12.4M statements in the paper.
    """
    if extractor is None:
        extractor = AccessAreaExtractor()
    report = LogProcessingReport()
    for index, item in enumerate(statements):
        sql, user = (item, None) if isinstance(item, str) else item
        report.total += 1
        try:
            result = extractor.extract(sql)
        except UnsupportedStatementError as exc:
            report.unsupported_statements += 1
            if keep_failures:
                report.failures.append((index, "unsupported", str(exc)))
            continue
        except LexError as exc:
            report.lex_errors += 1
            if keep_failures:
                report.failures.append((index, "lex", str(exc)))
            continue
        except ParseError as exc:
            report.parse_errors += 1
            if keep_failures:
                report.failures.append((index, "parse", str(exc)))
            continue
        except CNFConversionError as exc:
            report.cnf_failures += 1
            if keep_failures:
                report.failures.append((index, "cnf", str(exc)))
            continue
        report.record_timings(result.timings)
        report.extracted.append(
            ExtractedQuery(index, sql, result.area, user))
    return report
