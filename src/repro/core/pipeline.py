"""Batch processing of a query log (Section 6.1 / 6.6).

Runs the extractor over many statements, collecting the extraction-rate
taxonomy the paper reports (parse errors, unsupported statements, CNF
blow-ups) and per-stage timing distributions.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Iterable, Optional, Sequence

from ..algebra.cnf import CNFConversionError
from ..obs import get_logger, metrics, trace
from ..obs.metrics import Histogram
from ..sqlparser import (LexError, ParseError, UnsupportedStatementError)
from .area import AccessArea
from .extractor import AccessAreaExtractor, StageTimings

logger = get_logger(__name__)

_STAGES = ("parse", "extract", "cnf", "consolidate")


@dataclass
class InternStats:
    """Outcome of interning a population of access areas.

    ``pool_size`` unique areas absorbed ``hits + pool_size`` probes; the
    ``dedup_ratio`` (source areas per unique area) is the factor by
    which downstream O(n²) distance work shrinks to O(u²)."""

    pool_size: int = 0
    hits: int = 0

    @property
    def probes(self) -> int:
        return self.pool_size + self.hits

    @property
    def hit_rate(self) -> float:
        if not self.probes:
            return 0.0
        return self.hits / self.probes

    @property
    def dedup_ratio(self) -> float:
        """Source areas per unique area (≥ 1.0; 1.0 = nothing repeated)."""
        if not self.pool_size:
            return 1.0
        return self.probes / self.pool_size


class AccessAreaInterner:
    """Canonical-fingerprint intern pool for :class:`AccessArea`.

    SkyServer-style logs are dominated by bot- and template-generated
    repeats of the same statement, so most extracted areas are exact
    duplicates at the access-area level.  The pool maps each area to its
    first-seen representative via the canonical ``AccessArea`` identity
    (order-insensitive CNF fingerprint), so logically identical areas —
    regardless of clause/predicate arrival order or literal spelling —
    collapse to one shared, immutable object whose footprint caches are
    computed once.
    """

    def __init__(self) -> None:
        self._pool: dict[AccessArea, AccessArea] = {}
        self.hits = 0

    def intern(self, area: AccessArea) -> AccessArea:
        """The pooled representative of ``area`` (``area`` itself when
        its fingerprint is new)."""
        found = self._pool.get(area)
        if found is not None:
            self.hits += 1
            return found
        self._pool[area] = area
        return area

    def __len__(self) -> int:
        return len(self._pool)

    def __contains__(self, area: AccessArea) -> bool:
        return area in self._pool

    def areas(self) -> list[AccessArea]:
        """The unique representatives in first-seen order."""
        return list(self._pool.values())

    def stats(self) -> InternStats:
        return InternStats(pool_size=len(self._pool), hits=self.hits)

    def record(self, registry: metrics.MetricsRegistry) -> None:
        """Fold pool state into a metrics registry (``repro_intern_*``)."""
        registry.gauge("repro_intern_pool_size").set(len(self._pool))
        if self.hits:
            registry.counter("repro_intern_hits_total").inc(self.hits)
        if self._pool:
            registry.counter("repro_intern_misses_total").inc(
                len(self._pool))
            registry.gauge("repro_intern_dedup_ratio").set(
                self.stats().dedup_ratio)


def dedupe_areas(areas: Sequence[AccessArea],
                 interner: Optional[AccessAreaInterner] = None,
                 ) -> tuple[list[AccessArea], list[int], list[int]]:
    """Collapse ``areas`` to ``(unique, weights, inverse)``.

    ``unique`` holds the representatives in first-occurrence order (so
    clustering scan order — and therefore cluster numbering — matches
    the non-deduplicated population), ``weights[u]`` counts how many
    source areas map to ``unique[u]``, and ``inverse[i]`` is the unique
    index of source area ``i`` — the expansion map of
    :func:`expand_labels`.
    """
    if interner is None:
        interner = AccessAreaInterner()
    unique: list[AccessArea] = []
    weights: list[int] = []
    inverse: list[int] = []
    position: dict[AccessArea, int] = {}
    for area in areas:
        pooled = interner.intern(area)
        index = position.get(pooled)
        if index is None:
            index = len(unique)
            position[pooled] = index
            unique.append(pooled)
            weights.append(0)
        weights[index] += 1
        inverse.append(index)
    return unique, weights, inverse


def expand_labels(labels: Sequence[int],
                  inverse: Sequence[int]) -> list[int]:
    """Map per-unique-area cluster labels back to source query order."""
    return [labels[index] for index in inverse]


class StageTimingSummary:
    """Per-stage timing distribution across a log.

    Backed by one :class:`~repro.obs.metrics.Histogram`, so minimum and
    maximum go through the same symmetric accumulator (an empty summary
    reports both as ``0.0``, never ``inf``, keeping exported reports
    finite and parseable) and quantiles (:meth:`quantile`, :attr:`p50`
    / :attr:`p95` / :attr:`p99`) come for free.
    """

    __slots__ = ("_histogram",)

    def __init__(self, histogram: Optional[Histogram] = None) -> None:
        self._histogram = histogram or Histogram("stage_seconds")

    def add(self, value: float) -> None:
        self._histogram.observe(value)

    @property
    def count(self) -> int:
        return self._histogram.count

    @property
    def minimum(self) -> float:
        return self._histogram.minimum

    @property
    def maximum(self) -> float:
        return self._histogram.maximum

    @property
    def total(self) -> float:
        return self._histogram.total

    @property
    def mean(self) -> float:
        return self._histogram.mean

    def quantile(self, q: float) -> float:
        return self._histogram.quantile(q)

    @property
    def p50(self) -> float:
        return self._histogram.quantile(0.50)

    @property
    def p95(self) -> float:
        return self._histogram.quantile(0.95)

    @property
    def p99(self) -> float:
        return self._histogram.quantile(0.99)

    def __repr__(self) -> str:
        return (f"StageTimingSummary(count={self.count}, "
                f"min={self.minimum:.6f}, mean={self.mean:.6f}, "
                f"max={self.maximum:.6f})")


@dataclass
class ExtractedQuery:
    """One successfully processed log entry."""

    index: int
    sql: str
    area: AccessArea
    user: Optional[str] = None


@dataclass
class LogProcessingReport:
    """Outcome of processing a whole log."""

    total: int = 0
    extracted: list[ExtractedQuery] = field(default_factory=list)
    parse_errors: int = 0
    lex_errors: int = 0
    unsupported_statements: int = 0
    cnf_failures: int = 0
    failures: list[tuple[int, str, str]] = field(default_factory=list)
    stage_timings: dict[str, StageTimingSummary] = field(
        default_factory=lambda: {stage: StageTimingSummary()
                                 for stage in _STAGES})
    #: the access-area intern pool (None when interning was disabled)
    interner: Optional[AccessAreaInterner] = None
    #: continuation lines folded into multi-line statements upstream
    #: (e.g. by :meth:`repro.workload.QueryLog.load_plain`) — part of
    #: the extraction-rate taxonomy, *not* parse errors
    continuation_lines: int = 0

    @property
    def extraction_count(self) -> int:
        return len(self.extracted)

    @property
    def failure_count(self) -> int:
        return (self.parse_errors + self.lex_errors
                + self.unsupported_statements + self.cnf_failures)

    @property
    def extraction_rate(self) -> float:
        """Fraction of log entries with an extracted access area.

        The paper reports >99.4% on the real log (Section 6.1)."""
        if self.total == 0:
            return 0.0
        return self.extraction_count / self.total

    def record_timings(self, timings: StageTimings) -> None:
        for stage in _STAGES:
            self.stage_timings[stage].add(getattr(timings, stage))

    @property
    def intern_stats(self) -> InternStats:
        if self.interner is None:
            return InternStats()
        return self.interner.stats()

    def areas(self) -> list[AccessArea]:
        return [entry.area for entry in self.extracted]

    def unique_areas(self) -> tuple[list[AccessArea], list[int], list[int]]:
        """The extracted areas deduplicated: ``(unique, weights,
        inverse)`` as per :func:`dedupe_areas`.  When the report was
        built with interning, duplicates are already shared objects and
        this only builds the weight/inverse maps."""
        return dedupe_areas(self.areas())

    def distance_matrix(self, metric: Callable[[AccessArea, AccessArea],
                                               float], *,
                        n_jobs: int = 1, cutoff: Optional[float] = None):
        """Pairwise :class:`~repro.distance.DistanceMatrix` over the
        extracted areas — the batch path's hand-off to the clustering
        stage.  ``n_jobs``/``cutoff`` are forwarded to
        :meth:`~repro.distance.DistanceMatrix.compute`.
        """
        # Imported lazily: the core layer must not depend on the
        # distance layer at import time.
        from ..distance.matrix import DistanceMatrix
        return DistanceMatrix.compute(self.areas(), metric,
                                      n_jobs=n_jobs, cutoff=cutoff)


def process_log(statements: Iterable[str | tuple[str, str]],
                extractor: AccessAreaExtractor | None = None,
                keep_failures: bool = True,
                registry: Optional[metrics.MetricsRegistry] = None,
                intern: bool = True,
                interner: Optional[AccessAreaInterner] = None,
                ) -> LogProcessingReport:
    """Extract access areas from every statement of a log.

    ``statements`` yields SQL strings or ``(sql, user)`` pairs.  Failures
    are tallied by class, never raised — mirroring the robust batch run
    over 12.4M statements in the paper.  ``registry`` — metrics sink
    (defaults to the process-wide registry): per-outcome counters under
    ``repro_pipeline_*`` plus per-stage latency histograms.

    ``intern`` (default on) pools extracted areas by canonical
    fingerprint: repeats of the same access area share one immutable
    object, so a repeat-heavy log stores ``u`` unique areas instead of
    ``n``, footprint caches warm once, and the report's
    :meth:`~LogProcessingReport.unique_areas` collapse is free.  Pass
    ``interner`` to share a pool across logs; ``intern=False`` restores
    the one-object-per-statement behaviour (``--no-intern`` debugging).
    """
    if extractor is None:
        extractor = AccessAreaExtractor()
    if registry is None:
        registry = metrics.get_registry()
    if intern and interner is None:
        interner = AccessAreaInterner()
    elif not intern:
        interner = None
    statements_total = registry.counter("repro_pipeline_statements_total")
    extracted_total = registry.counter("repro_pipeline_extracted_total")
    failure_counters = {
        kind: registry.counter("repro_pipeline_failures_total", kind=kind)
        for kind in ("unsupported", "lex", "parse", "cnf")
    }
    stage_histograms = {
        stage: registry.histogram("repro_pipeline_stage_seconds",
                                  stage=stage)
        for stage in _STAGES
    }

    report = LogProcessingReport(interner=interner)

    def fail(index: int, kind: str, exc: Exception) -> None:
        failure_counters[kind].inc()
        if keep_failures:
            report.failures.append((index, kind, str(exc)))

    with trace.span("process_log") as root:
        for index, item in enumerate(statements):
            sql, user = (item, None) if isinstance(item, str) else item
            report.total += 1
            statements_total.inc()
            try:
                result = extractor.extract(sql)
            except UnsupportedStatementError as exc:
                report.unsupported_statements += 1
                fail(index, "unsupported", exc)
                continue
            except LexError as exc:
                report.lex_errors += 1
                fail(index, "lex", exc)
                continue
            except ParseError as exc:
                report.parse_errors += 1
                fail(index, "parse", exc)
                continue
            except CNFConversionError as exc:
                report.cnf_failures += 1
                fail(index, "cnf", exc)
                continue
            extracted_total.inc()
            report.record_timings(result.timings)
            for stage in _STAGES:
                stage_histograms[stage].observe(
                    getattr(result.timings, stage),
                    exemplar=result.span_id)
            area = result.area
            if interner is not None:
                area = interner.intern(area)
            report.extracted.append(
                ExtractedQuery(index, sql, area, user))
        root.set(statements=report.total,
                 extracted=report.extraction_count,
                 failures=report.failure_count)
        if interner is not None:
            interner.record(registry)
            root.set(intern_pool=len(interner),
                     intern_hits=interner.hits)
    logger.info(
        "processed %d statements: %d extracted (%.2f%%), %d failures",
        report.total, report.extraction_count,
        report.extraction_rate * 100.0, report.failure_count)
    return report
