"""Batch processing of a query log (Section 6.1 / 6.6).

Runs the extractor over many statements, collecting the extraction-rate
taxonomy the paper reports (parse errors, unsupported statements, CNF
blow-ups) and per-stage timing distributions.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Iterable, Optional

from ..algebra.cnf import CNFConversionError
from ..obs import get_logger, metrics, trace
from ..obs.metrics import Histogram
from ..sqlparser import (LexError, ParseError, UnsupportedStatementError)
from .area import AccessArea
from .extractor import AccessAreaExtractor, StageTimings

logger = get_logger(__name__)

_STAGES = ("parse", "extract", "cnf", "consolidate")


class StageTimingSummary:
    """Per-stage timing distribution across a log.

    Backed by one :class:`~repro.obs.metrics.Histogram`, so minimum and
    maximum go through the same symmetric accumulator (an empty summary
    reports both as ``0.0``, never ``inf``, keeping exported reports
    finite and parseable) and quantiles (:meth:`quantile`, :attr:`p50`
    / :attr:`p95` / :attr:`p99`) come for free.
    """

    __slots__ = ("_histogram",)

    def __init__(self, histogram: Optional[Histogram] = None) -> None:
        self._histogram = histogram or Histogram("stage_seconds")

    def add(self, value: float) -> None:
        self._histogram.observe(value)

    @property
    def count(self) -> int:
        return self._histogram.count

    @property
    def minimum(self) -> float:
        return self._histogram.minimum

    @property
    def maximum(self) -> float:
        return self._histogram.maximum

    @property
    def total(self) -> float:
        return self._histogram.total

    @property
    def mean(self) -> float:
        return self._histogram.mean

    def quantile(self, q: float) -> float:
        return self._histogram.quantile(q)

    @property
    def p50(self) -> float:
        return self._histogram.quantile(0.50)

    @property
    def p95(self) -> float:
        return self._histogram.quantile(0.95)

    @property
    def p99(self) -> float:
        return self._histogram.quantile(0.99)

    def __repr__(self) -> str:
        return (f"StageTimingSummary(count={self.count}, "
                f"min={self.minimum:.6f}, mean={self.mean:.6f}, "
                f"max={self.maximum:.6f})")


@dataclass
class ExtractedQuery:
    """One successfully processed log entry."""

    index: int
    sql: str
    area: AccessArea
    user: Optional[str] = None


@dataclass
class LogProcessingReport:
    """Outcome of processing a whole log."""

    total: int = 0
    extracted: list[ExtractedQuery] = field(default_factory=list)
    parse_errors: int = 0
    lex_errors: int = 0
    unsupported_statements: int = 0
    cnf_failures: int = 0
    failures: list[tuple[int, str, str]] = field(default_factory=list)
    stage_timings: dict[str, StageTimingSummary] = field(
        default_factory=lambda: {stage: StageTimingSummary()
                                 for stage in _STAGES})

    @property
    def extraction_count(self) -> int:
        return len(self.extracted)

    @property
    def failure_count(self) -> int:
        return (self.parse_errors + self.lex_errors
                + self.unsupported_statements + self.cnf_failures)

    @property
    def extraction_rate(self) -> float:
        """Fraction of log entries with an extracted access area.

        The paper reports >99.4% on the real log (Section 6.1)."""
        if self.total == 0:
            return 0.0
        return self.extraction_count / self.total

    def record_timings(self, timings: StageTimings) -> None:
        for stage in _STAGES:
            self.stage_timings[stage].add(getattr(timings, stage))

    def areas(self) -> list[AccessArea]:
        return [entry.area for entry in self.extracted]

    def distance_matrix(self, metric: Callable[[AccessArea, AccessArea],
                                               float], *,
                        n_jobs: int = 1, cutoff: Optional[float] = None):
        """Pairwise :class:`~repro.distance.DistanceMatrix` over the
        extracted areas — the batch path's hand-off to the clustering
        stage.  ``n_jobs``/``cutoff`` are forwarded to
        :meth:`~repro.distance.DistanceMatrix.compute`.
        """
        # Imported lazily: the core layer must not depend on the
        # distance layer at import time.
        from ..distance.matrix import DistanceMatrix
        return DistanceMatrix.compute(self.areas(), metric,
                                      n_jobs=n_jobs, cutoff=cutoff)


def process_log(statements: Iterable[str | tuple[str, str]],
                extractor: AccessAreaExtractor | None = None,
                keep_failures: bool = True,
                registry: Optional[metrics.MetricsRegistry] = None,
                ) -> LogProcessingReport:
    """Extract access areas from every statement of a log.

    ``statements`` yields SQL strings or ``(sql, user)`` pairs.  Failures
    are tallied by class, never raised — mirroring the robust batch run
    over 12.4M statements in the paper.  ``registry`` — metrics sink
    (defaults to the process-wide registry): per-outcome counters under
    ``repro_pipeline_*`` plus per-stage latency histograms.
    """
    if extractor is None:
        extractor = AccessAreaExtractor()
    if registry is None:
        registry = metrics.get_registry()
    statements_total = registry.counter("repro_pipeline_statements_total")
    extracted_total = registry.counter("repro_pipeline_extracted_total")
    failure_counters = {
        kind: registry.counter("repro_pipeline_failures_total", kind=kind)
        for kind in ("unsupported", "lex", "parse", "cnf")
    }
    stage_histograms = {
        stage: registry.histogram("repro_pipeline_stage_seconds",
                                  stage=stage)
        for stage in _STAGES
    }

    report = LogProcessingReport()

    def fail(index: int, kind: str, exc: Exception) -> None:
        failure_counters[kind].inc()
        if keep_failures:
            report.failures.append((index, kind, str(exc)))

    with trace.span("process_log") as root:
        for index, item in enumerate(statements):
            sql, user = (item, None) if isinstance(item, str) else item
            report.total += 1
            statements_total.inc()
            try:
                result = extractor.extract(sql)
            except UnsupportedStatementError as exc:
                report.unsupported_statements += 1
                fail(index, "unsupported", exc)
                continue
            except LexError as exc:
                report.lex_errors += 1
                fail(index, "lex", exc)
                continue
            except ParseError as exc:
                report.parse_errors += 1
                fail(index, "parse", exc)
                continue
            except CNFConversionError as exc:
                report.cnf_failures += 1
                fail(index, "cnf", exc)
                continue
            extracted_total.inc()
            report.record_timings(result.timings)
            for stage in _STAGES:
                stage_histograms[stage].observe(
                    getattr(result.timings, stage))
            report.extracted.append(
                ExtractedQuery(index, sql, result.area, user))
        root.set(statements=report.total,
                 extracted=report.extraction_count,
                 failures=report.failure_count)
    logger.info(
        "processed %d statements: %d extracted (%.2f%%), %d failures",
        report.total, report.extraction_count,
        report.extraction_rate * 100.0, report.failure_count)
    return report
