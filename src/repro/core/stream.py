"""Streaming extraction with change detection (Section 4).

The paper notes that "it is also possible to extract the information from
an incoming stream of logged queries, to detect changes in this data
stream and to notify the system operator about the occurrence of new
predicates and query types".  This module implements that operator view:

* :class:`StreamMonitor` consumes statements one by one, extracts access
  areas incrementally, and keeps the statistics catalog up to date;
* novelty events fire on first-seen relations, columns, relation
  combinations, query-type features (aggregation, nesting, outer joins),
  and constants outside the current ``access(a)`` range;
* a sliding failure-rate window flags bursts of unparseable statements
  (e.g. a client suddenly emitting a different SQL dialect).
"""

from __future__ import annotations

import copy
import enum
import math
from collections import deque
from dataclasses import dataclass, field
from typing import Callable, Iterable, Optional

from ..algebra.cnf import CNFConversionError
from ..algebra.predicates import ColumnConstantPredicate
from ..obs import get_logger, metrics
from ..schema.statistics import StatisticsCatalog
from ..sqlparser import SqlError, ast
from .area import AccessArea
from .extractor import AccessAreaExtractor

logger = get_logger(__name__)


class EventKind(enum.Enum):
    """Operator-notification categories."""

    NEW_RELATION = "new-relation"
    NEW_COLUMN = "new-column"
    NEW_RELATION_SET = "new-relation-set"
    NEW_QUERY_FEATURE = "new-query-feature"
    OUT_OF_RANGE_CONSTANT = "out-of-range-constant"
    FAILURE_BURST = "failure-burst"
    CLUSTER_CHANGED = "cluster-changed"


@dataclass(frozen=True)
class StreamEvent:
    """One operator notification."""

    kind: EventKind
    index: int  # position in the stream
    detail: str
    sql: str

    def __str__(self) -> str:
        return f"[{self.kind.value}] #{self.index}: {self.detail}"


#: Structural features whose first occurrence is notified.
_FEATURES = (
    "group-by", "having", "nested-subquery", "outer-join", "top",
    "distinct", "in-list", "between", "like", "order-by",
)


@dataclass
class StreamState:
    """What the monitor has seen so far."""

    processed: int = 0
    extracted: int = 0
    failures: int = 0
    relations: set[str] = field(default_factory=set)
    columns: set[tuple[str, str]] = field(default_factory=set)
    relation_sets: set[frozenset[str]] = field(default_factory=set)
    features: set[str] = field(default_factory=set)

    @property
    def extraction_rate(self) -> float:
        if self.processed == 0:
            return 0.0
        return self.extracted / self.processed


@dataclass
class StreamMonitor:
    """Incremental access-area extraction with novelty notifications.

    ``on_event`` is invoked synchronously for each notification; events
    are also retained in :attr:`events` for batch inspection.
    ``warmup`` suppresses the notification flood while the vocabulary of
    an unfamiliar log is still being learned.
    """

    extractor: AccessAreaExtractor
    stats: Optional[StatisticsCatalog] = None
    on_event: Optional[Callable[[StreamEvent], None]] = None
    warmup: int = 100
    failure_window: int = 50
    failure_burst_threshold: float = 0.2
    #: relative margin before an out-of-range constant is notified —
    #: constants that merely nudge the running max are routine widening,
    #: not an anomaly.
    out_of_range_slack: float = 0.05
    #: metrics sink; ``None`` → the process-wide default registry.
    registry: Optional[metrics.MetricsRegistry] = None
    #: maintain live cluster labels over the extracted areas
    #: (:class:`~repro.clustering.incremental.IncrementalDBSCAN`);
    #: requires :attr:`stats`.
    cluster_incrementally: bool = False
    cluster_eps: float = 0.15
    cluster_min_pts: int = 5
    cluster_backend: str = "sparse"

    def __post_init__(self) -> None:
        self.state = StreamState()
        self.events: list[StreamEvent] = []
        self.areas: list[AccessArea] = []
        #: per extracted statement (aligned with :attr:`areas`): its
        #: live cluster label, or ``None`` when the area was refused by
        #: the clusterer's exactness precondition.
        self.statement_labels: list[Optional[int]] = []
        self.clusterer = None
        if self.cluster_incrementally:
            if self.stats is None:
                raise ValueError(
                    "cluster_incrementally=True requires a statistics "
                    "catalog (the distance metric needs access ranges)")
            from ..clustering.incremental import IncrementalDBSCAN
            from ..distance import QueryDistance
            # The clusterer gets a *frozen* copy of the catalog: the
            # monitor keeps widening access(a) as statements arrive
            # (out-of-range detection needs that), but the metric's
            # normalization must stay fixed or distances of
            # already-inserted rows would silently drift.
            frozen = copy.deepcopy(self.stats)
            self.clusterer = IncrementalDBSCAN(
                QueryDistance(frozen), eps=self.cluster_eps,
                min_pts=self.cluster_min_pts,
                backend=self.cluster_backend,
                registry=self.registry or metrics.get_registry())
        self._recent_failures: deque[bool] = deque(maxlen=self.failure_window)
        self._burst_active = False
        registry = self.registry or metrics.get_registry()
        self._statements_total = registry.counter(
            "repro_stream_statements_total")
        self._extracted_total = registry.counter(
            "repro_stream_extracted_total")
        self._failures_total = registry.counter(
            "repro_stream_failures_total")
        self._event_counters = {
            kind: registry.counter("repro_stream_events_total",
                                   kind=kind.value)
            for kind in EventKind
        }

    # -- ingestion ---------------------------------------------------------

    def process(self, sql: str) -> Optional[AccessArea]:
        """Consume one statement; returns its area or ``None`` on failure."""
        index = self.state.processed
        self.state.processed += 1
        self._statements_total.inc()
        try:
            result = self.extractor.extract(sql)
        except (SqlError, CNFConversionError) as exc:
            self.state.failures += 1
            self._failures_total.inc()
            self._recent_failures.append(True)
            self._check_failure_burst(index, sql, exc)
            return None
        self._recent_failures.append(False)
        self._maybe_rearm_burst()
        # Warmup counts *extracted* statements: parse failures teach the
        # monitor no vocabulary, so they must not burn warmup slots — a
        # noisy prefix would otherwise silently disable novelty
        # suppression learning.
        warmed_up = self.state.extracted >= self.warmup
        self.state.extracted += 1
        self._extracted_total.inc()

        area = result.area
        self.areas.append(area)
        if warmed_up:
            self._notify_novelties(index, sql, area, result.statement)
        self._learn(area, result.statement)
        if self.clusterer is not None:
            self._cluster(index, sql, area)
        return area

    def _cluster(self, index: int, sql: str, area: AccessArea) -> None:
        try:
            update = self.clusterer.add(area)
        except ValueError as exc:
            # Pre-mutation exactness refusal: the area's table set would
            # drop the partition bound to cluster_eps or below.  The
            # clusterer state is untouched; keep monitoring, leave this
            # statement unlabelled.
            logger.warning("incremental clustering refused statement "
                           "#%d: %s", index, exc)
            (self.registry or metrics.get_registry()).counter(
                "repro_incremental_refused_total").inc()
            self.statement_labels.append(None)
            return
        self.statement_labels.append(update.label)
        if update.structure_changed:
            self._emit(
                EventKind.CLUSTER_CHANGED, index,
                f"cluster structure changed: {update.promotions} "
                f"promotions, {update.demotions} demotions, "
                f"{update.merges} merges, {update.splits} splits, "
                f"{update.new_clusters} new clusters "
                f"({self.clusterer.n_clusters} total)", sql)

    def replay(self, area: Optional[AccessArea]) -> Optional[int]:
        """Re-apply one previously processed arrival without SQL work.

        The service's restart path: areas come back from the store's
        ingest journal in arrival order and re-enter the monitor here —
        no parsing, no CNF conversion.  ``None`` replays a statement
        that failed extraction (tallied, nothing learned).  Determinism
        of :class:`~repro.clustering.incremental.IncrementalDBSCAN`
        under arrival order makes the resulting labels bitwise
        identical to the pre-restart state.

        Novelty notifications and failure-burst tracking are
        suppressed — those events already fired when the statement
        first arrived.  Vocabulary learned from areas (relations,
        columns, relation sets, access ranges) is fully restored;
        AST-only query features are not (the journal stores areas, not
        parse trees), so a NEW_QUERY_FEATURE may re-notify once after
        a restart.

        Returns the statement's live label (``None`` for failed or
        refused arrivals).
        """
        self.state.processed += 1
        self._statements_total.inc()
        if area is None:
            self.state.failures += 1
            self._failures_total.inc()
            self._recent_failures.append(True)
            return None
        self._recent_failures.append(False)
        self.state.extracted += 1
        self._extracted_total.inc()
        self.areas.append(area)
        self._learn(area, None)
        if self.clusterer is None:
            return None
        try:
            update = self.clusterer.add(area)
        except ValueError:
            (self.registry or metrics.get_registry()).counter(
                "repro_incremental_refused_total").inc()
            self.statement_labels.append(None)
            return None
        self.statement_labels.append(update.label)
        return update.label

    def process_many(self, statements: Iterable[str]) -> list[AccessArea]:
        out = []
        for sql in statements:
            area = self.process(sql)
            if area is not None:
                out.append(area)
        return out

    # -- novelty detection ---------------------------------------------------

    def _notify_novelties(self, index: int, sql: str, area: AccessArea,
                          statement: Optional[ast.SelectStatement]) -> None:
        for relation in area.relations:
            if relation.lower() not in self.state.relations:
                self._emit(EventKind.NEW_RELATION, index,
                           f"first query touching relation {relation}",
                           sql)
        relation_set = frozenset(r.lower() for r in area.relations)
        if (len(relation_set) > 1
                and relation_set not in self.state.relation_sets):
            self._emit(EventKind.NEW_RELATION_SET, index,
                       "first query combining "
                       + " + ".join(sorted(relation_set)), sql)

        for pred in area.cnf.predicates():
            for ref in pred.columns:
                key = (ref.relation.lower(), ref.column.lower())
                if key not in self.state.columns:
                    self._emit(EventKind.NEW_COLUMN, index,
                               f"first predicate on {ref}", sql)
        if self.stats is not None:
            self._check_out_of_range(index, sql, area)
        if statement is not None:
            for feature in _query_features(statement):
                if feature not in self.state.features:
                    self._emit(EventKind.NEW_QUERY_FEATURE, index,
                               f"first {feature} query", sql)

    def _check_out_of_range(self, index: int, sql: str,
                            area: AccessArea) -> None:
        assert self.stats is not None
        for pred in area.cnf.predicates():
            if not isinstance(pred, ColumnConstantPredicate) \
                    or not pred.is_numeric:
                continue
            access = self.stats.access_interval(pred.ref)
            if not math.isfinite(access.width):
                # Unknown column fell back to the widest float range
                # (whose width already overflows to inf): nothing can
                # be out of range, and carrying the inf into the
                # margin arithmetic risks inf - inf = nan comparisons.
                continue
            value = float(pred.value)
            # The relative margin alone breaks down when the access
            # interval is a single point (width 0, e.g. a column only
            # ever queried with one constant): every different constant
            # would be flagged.  Floor the width at the column's
            # declared domain, so "slack" always means a fraction of a
            # real value range.
            width = max(access.width, self._domain_width(pred.ref))
            margin = self.out_of_range_slack * max(width, 0.0)
            if value < access.lo - margin or value > access.hi + margin:
                self._emit(
                    EventKind.OUT_OF_RANGE_CONSTANT, index,
                    f"{pred} outside access({pred.ref}) = {access}", sql)

    def _domain_width(self, ref) -> float:
        """Finite declared-domain width of ``ref``'s column (0.0 when
        the column or its domain bounds are unknown)."""
        assert self.stats is not None
        try:
            domain = self.stats.schema.column(
                ref.relation, ref.column).effective_domain
        except (KeyError, TypeError):
            return 0.0
        width = domain.width
        return width if math.isfinite(width) else 0.0

    def _check_failure_burst(self, index: int, sql: str,
                             exc: Exception) -> None:
        window = self._recent_failures
        # A short stream that is mostly unparseable should still alarm:
        # fire once half the window has been observed rather than
        # waiting for failure_window statements that may never come.
        minimum = max(1, self.failure_window // 2)
        if len(window) < minimum or self._burst_active:
            return
        rate = sum(window) / len(window)
        if rate >= self.failure_burst_threshold:
            self._burst_active = True
            self._emit(EventKind.FAILURE_BURST, index,
                       f"{rate:.0%} of the last {len(window)} statements "
                       f"failed to parse (latest: {exc})", sql)

    def _maybe_rearm_burst(self) -> None:
        """Hysteresis on the burst latch.

        Re-arming on any single successful parse would make a burst with
        interleaved successes (e.g. an alternating fail/success stream)
        emit one FAILURE_BURST per failure.  Instead the latch only
        releases once the *window* failure rate has dropped back below
        the threshold — one notification per burst episode.
        """
        if not self._burst_active:
            return
        window = self._recent_failures
        if not window:
            return
        if sum(window) / len(window) < self.failure_burst_threshold:
            self._burst_active = False

    # -- learning -----------------------------------------------------------------

    def _learn(self, area: AccessArea,
               statement: Optional[ast.SelectStatement]) -> None:
        state = self.state
        state.relations.update(r.lower() for r in area.relations)
        state.relation_sets.add(
            frozenset(r.lower() for r in area.relations))
        for pred in area.cnf.predicates():
            for ref in pred.columns:
                state.columns.add((ref.relation.lower(),
                                   ref.column.lower()))
        if statement is not None:
            state.features.update(_query_features(statement))
        if self.stats is not None:
            self.stats.observe_cnf(area.cnf)

    def _emit(self, kind: EventKind, index: int, detail: str,
              sql: str) -> None:
        event = StreamEvent(kind, index, detail, sql)
        self.events.append(event)
        self._event_counters[kind].inc()
        logger.info("stream event %s at #%d: %s", kind.value, index,
                    detail)
        if self.on_event is not None:
            self.on_event(event)

    # -- reporting ----------------------------------------------------------------

    def summary(self) -> str:
        state = self.state
        counts: dict[EventKind, int] = {}
        for event in self.events:
            counts[event.kind] = counts.get(event.kind, 0) + 1
        lines = [
            f"statements processed : {state.processed:,}",
            f"areas extracted      : {state.extracted:,} "
            f"({state.extraction_rate:.2%})",
            f"relations seen       : {len(state.relations)}",
            f"columns seen         : {len(state.columns)}",
            f"query features seen  : {len(state.features)}",
            f"events emitted       : {len(self.events)}",
        ]
        if self.clusterer is not None:
            lines.insert(5, "clustering           : "
                         + self.clusterer.summary())
        for kind in EventKind:
            if kind in counts:
                lines.append(f"  {kind.value:<22}: {counts[kind]}")
        return "\n".join(lines)


def _query_features(statement: ast.SelectStatement) -> set[str]:
    """The structural feature tags of one statement."""
    features: set[str] = set()
    if statement.group_by:
        features.add("group-by")
    if statement.having is not None:
        features.add("having")
    if statement.top is not None:
        features.add("top")
    if statement.distinct:
        features.add("distinct")
    if statement.order_by:
        features.add("order-by")
    for item in statement.from_items:
        if _has_outer_join(item):
            features.add("outer-join")
    if statement.where is not None:
        features.update(_condition_features(statement.where))
    return features


def _has_outer_join(item: ast.FromItem) -> bool:
    if isinstance(item, ast.Join):
        if item.join_type in (ast.JoinType.LEFT, ast.JoinType.RIGHT,
                              ast.JoinType.FULL):
            return True
        return _has_outer_join(item.left) or _has_outer_join(item.right)
    return False


def _condition_features(cond: ast.Condition) -> set[str]:
    features: set[str] = set()
    stack = [cond]
    while stack:
        node = stack.pop()
        if isinstance(node, (ast.AndCondition, ast.OrCondition)):
            stack.extend(node.children)
        elif isinstance(node, ast.NotCondition):
            stack.append(node.child)
        elif isinstance(node, (ast.Exists, ast.InSubquery,
                               ast.QuantifiedComparison)):
            features.add("nested-subquery")
        elif isinstance(node, ast.InList):
            features.add("in-list")
        elif isinstance(node, ast.Between):
            features.add("between")
        elif isinstance(node, ast.Like):
            features.add("like")
        elif isinstance(node, ast.Comparison):
            if isinstance(node.right, ast.ScalarSubquery) or \
                    isinstance(node.left, ast.ScalarSubquery):
                features.add("nested-subquery")
    return features
