"""The access-area extractor: the paper's end-to-end per-query pipeline.

Section 4.5 / 6.6 describe four stages, each timed separately here:

1. **Parsing** — SQL text → AST (:mod:`repro.sqlparser`);
2. **Extraction** — AST → universal-relation constraint
   (:mod:`repro.core.transform`, :mod:`repro.core.aggregates`);
3. **CNF** — constraint → conjunctive normal form with the 35-predicate
   workaround (:mod:`repro.algebra.cnf`);
4. **Consolidation** — redundancy removal / merging / contradiction check
   (:mod:`repro.algebra.consolidate`).

The output is an :class:`~repro.core.area.AccessArea` whose relation list
is alias-resolved and alphabetically ordered.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Optional

from ..algebra.boolexpr import TRUE, BoolExpr, make_and, make_not, make_or
from ..algebra.cnf import CNF, DEFAULT_PREDICATE_CAP, to_cnf
from ..obs import trace
from ..algebra.consolidate import consolidate as consolidate_cnf
from ..algebra.intervals import Interval
from ..algebra.nnf import to_nnf
from ..algebra.boolexpr import And, Atom
from ..algebra.predicates import ColumnConstantPredicate, ColumnRef, Op
from ..schema.database import Schema
from ..sqlparser import ast, parse
from .aggregates import (SUPPORTED_AGGREGATES, aggregate_constraint,
                         effective_domain)
from .area import AccessArea
from .context import ExtractionContext
from .transform import condition_to_expr, from_items_to_expr, _operand

_OPS = {"<": Op.LT, "<=": Op.LE, "=": Op.EQ,
        ">": Op.GT, ">=": Op.GE, "<>": Op.NE}


@dataclass(frozen=True)
class StageTimings:
    """Wall-clock seconds spent in each pipeline stage (Section 6.6)."""

    parse: float = 0.0
    extract: float = 0.0
    cnf: float = 0.0
    consolidate: float = 0.0

    @property
    def total(self) -> float:
        return self.parse + self.extract + self.cnf + self.consolidate


@dataclass(frozen=True)
class ExtractionResult:
    """An extracted access area plus per-stage timings."""

    area: AccessArea
    timings: StageTimings
    statement: Optional[ast.SelectStatement] = None
    #: Span id of the ``query`` trace span (None when tracing is off);
    #: lets stage-latency histograms attach exemplars pointing at the
    #: exact trace subtree that produced a slow observation.
    span_id: Optional[str] = None

    @property
    def exact(self) -> bool:
        """True when no widening approximation touched the area.

        Inexact areas are still sound over-sets, but their canonical
        fingerprints are not comparable across semantically equal
        queries — equality-based consumers (the differential oracle's
        metamorphic check, exact-match baselines) must skip them.
        """
        return self.area.exact


@dataclass
class AccessAreaExtractor:
    """Extracts access areas from SQL text.

    Parameters mirror the paper's knobs: ``predicate_cap`` is the CNF
    workaround limit (35 in the paper, ``None`` to disable) and
    ``consolidate`` toggles the Section 4.5 cleanup (an ablation target).
    """

    schema: Optional[Schema] = None
    predicate_cap: Optional[int] = DEFAULT_PREDICATE_CAP
    consolidate: bool = True

    def extract(self, sql: str) -> ExtractionResult:
        """Full pipeline on one SQL string.

        Raises the :mod:`repro.sqlparser.errors` exceptions on statements
        outside the grammar, and
        :class:`~repro.algebra.cnf.CNFConversionError` when the CNF blows
        past resource limits — the paper's unparseable/pathological
        classes.
        """
        with trace.span("query") as query_span:
            start = time.perf_counter()
            with trace.span("parse"):
                statement = parse(sql)
            parse_time = time.perf_counter() - start
            span = query_span.span
            return self.extract_statement(
                statement, parse_time,
                span_id=None if span is None else span.span_id)

    def extract_statement(self, statement: ast.SelectStatement,
                          parse_time: float = 0.0,
                          span_id: Optional[str] = None
                          ) -> ExtractionResult:
        start = time.perf_counter()
        with trace.span("extract"):
            ctx = ExtractionContext(self.schema)
            expr = self._statement_to_expr(statement, ctx)
        extract_time = time.perf_counter() - start

        start = time.perf_counter()
        with trace.span("cnf") as cnf_span:
            if self.predicate_cap is not None and \
                    to_nnf(expr).count_atoms() > self.predicate_cap:
                # The 35-predicate workaround truncates clauses during
                # distribution — a widening over-approximation.
                ctx.approx(f"predicate cap {self.predicate_cap} "
                           "truncated the CNF")
            cnf = to_cnf(expr, max_predicates=self.predicate_cap)
            cnf_span.set(clauses=len(cnf))
        cnf_time = time.perf_counter() - start

        start = time.perf_counter()
        with trace.span("consolidate"):
            if self.consolidate:
                result = consolidate_cnf(cnf)
                cnf = result.cnf
        consolidate_time = time.perf_counter() - start

        area = AccessArea(tuple(ctx.relations), cnf, tuple(ctx.notes),
                          exact=ctx.exact)
        timings = StageTimings(parse_time, extract_time, cnf_time,
                               consolidate_time)
        return ExtractionResult(area, timings, statement, span_id=span_id)

    def _statement_to_expr(self, statement: ast.SelectStatement,
                           ctx: ExtractionContext) -> BoolExpr:
        join_expr = from_items_to_expr(statement.from_items, ctx)
        where_expr = TRUE
        if statement.where is not None:
            where_expr = condition_to_expr(statement.where, ctx)
        having_expr = TRUE
        if statement.having is not None:
            having_expr = having_to_expr(statement, where_expr, ctx)
        return make_and([join_expr, where_expr, having_expr])


# ---------------------------------------------------------------------------
# HAVING handling (Section 4.3) — lives here because it needs both the
# transform machinery and the WHERE constraint for effective domains.
# ---------------------------------------------------------------------------

def having_to_expr(statement: ast.SelectStatement, where_expr: BoolExpr,
                   ctx: ExtractionContext) -> BoolExpr:
    """Map a HAVING clause to its access-area constraint."""
    footprints = _conjunctive_footprints(where_expr)
    return _having_condition(statement.having, statement, footprints, ctx)


def _having_condition(cond: ast.Condition, statement: ast.SelectStatement,
                      footprints: dict[ColumnRef, Interval],
                      ctx: ExtractionContext) -> BoolExpr:
    if isinstance(cond, ast.AndCondition):
        return make_and(_having_condition(c, statement, footprints, ctx)
                        for c in cond.children)
    if isinstance(cond, ast.OrCondition):
        return make_or(_having_condition(c, statement, footprints, ctx)
                       for c in cond.children)
    if isinstance(cond, ast.NotCondition):
        return _negated_having(cond.child, statement, footprints, ctx)
    if isinstance(cond, ast.Comparison):
        mapped = _having_comparison(cond, footprints, ctx)
        if mapped is not None:
            return mapped
    if isinstance(cond, ast.Between) and _is_aggregate_call(cond.expr):
        if cond.negated:
            # AGG(a) NOT BETWEEN c1 AND c2 ≡ AGG < c1 OR AGG > c2: each
            # side maps through its own lemma rule.  Negating the mapped
            # BETWEEN constraint instead would be unsound — the lemma
            # output is an influence area, not complement-compatible.
            low = _having_comparison(
                ast.Comparison(cond.expr, "<", cond.low), footprints, ctx)
            high = _having_comparison(
                ast.Comparison(cond.expr, ">", cond.high), footprints, ctx)
            return make_or([expr for expr in (low, high)
                            if expr is not None])
        # HAVING AGG(a) BETWEEN c1 AND c2 → the two bound comparisons.
        low = _having_comparison(
            ast.Comparison(cond.expr, ">=", cond.low), footprints, ctx)
        high = _having_comparison(
            ast.Comparison(cond.expr, "<=", cond.high), footprints, ctx)
        return make_and([expr for expr in (low, high)
                         if expr is not None])
    # Plain (non-aggregate) HAVING conditions behave like WHERE conditions.
    return condition_to_expr(cond, ctx)


def _negated_having(cond: ast.Condition, statement: ast.SelectStatement,
                    footprints: dict[ColumnRef, Interval],
                    ctx: ExtractionContext) -> BoolExpr:
    """``HAVING NOT <cond>`` — negation pushed *into* the SQL condition.

    The Lemma mappings produce influence areas, which are not symmetric
    under complement: ``make_not`` over a mapped constraint (often TRUE,
    e.g. ``SUM(v) > c`` on a mixed-sign domain) would yield FALSE — a
    shrunken area, unsound.  Instead the negation is applied at the SQL
    level (``NOT (SUM(v) > c)`` ≡ ``SUM(v) <= c``) and the complementary
    comparison is mapped by its own lemma rule.
    """
    if isinstance(cond, ast.NotCondition):
        return _having_condition(cond.child, statement, footprints, ctx)
    if isinstance(cond, ast.AndCondition):
        return make_or(_negated_having(c, statement, footprints, ctx)
                       for c in cond.children)
    if isinstance(cond, ast.OrCondition):
        return make_and(_negated_having(c, statement, footprints, ctx)
                        for c in cond.children)
    if isinstance(cond, ast.Comparison) and (
            _is_aggregate_call(cond.left)
            or _is_aggregate_call(cond.right)):
        op = _OPS.get(cond.op)
        if op is None:
            ctx.approx(f"unknown negated HAVING operator {cond.op}")
            return TRUE
        negated = ast.Comparison(cond.left, op.negate().value, cond.right)
        mapped = _having_comparison(negated, footprints, ctx)
        if mapped is not None:
            return mapped
        return TRUE
    if isinstance(cond, ast.Between) and _is_aggregate_call(cond.expr):
        flipped = ast.Between(cond.expr, cond.low, cond.high,
                              negated=not cond.negated)
        return _having_condition(flipped, statement, footprints, ctx)
    # Non-aggregate conditions negate like WHERE conditions (with the
    # widening guards of transform._not_to_expr).
    return condition_to_expr(ast.NotCondition(cond), ctx)


def _having_comparison(cond: ast.Comparison,
                       footprints: dict[ColumnRef, Interval],
                       ctx: ExtractionContext) -> BoolExpr | None:
    """``AGG(a) θ c`` → the Lemma mapping; None when not an aggregate."""
    left, op_text, right = cond.left, cond.op, cond.right
    if _is_aggregate_call(right) and not _is_aggregate_call(left):
        left, right = right, left
        op_text = {"<": ">", "<=": ">=", ">": "<", ">=": "<="}.get(
            op_text, op_text)
    if not _is_aggregate_call(left):
        return None
    call = left
    assert isinstance(call, ast.FunctionCall)
    constant = _operand(right, ctx)
    if not isinstance(constant, (int, float)) or isinstance(constant, bool):
        ctx.approx("non-constant aggregate comparison widened to TRUE")
        return TRUE
    op = _OPS.get(op_text)
    if op is None:
        ctx.approx(f"unknown aggregate comparison operator {op_text}")
        return TRUE

    ref: ColumnRef | None = None
    if call.args and not isinstance(call.args[0], ast.Star):
        operand = _operand(call.args[0], ctx)
        if isinstance(operand, ColumnRef):
            ref = operand
    if ref is not None and not _in_from(ref, ctx):
        # "we check if a belongs to some relation in the FROM clause.
        #  If it does not, we ignore it."
        ctx.approx(f"aggregate over column {ref} outside FROM ignored")
        return TRUE

    declared = _declared_domain(ref, ctx)
    where_fp = footprints.get(ref) if ref is not None else None
    dom = effective_domain(declared, where_fp)
    return aggregate_constraint(call.upper_name, ref, op, constant, dom)


def _is_aggregate_call(expr: ast.Expr) -> bool:
    return (isinstance(expr, ast.FunctionCall)
            and expr.upper_name in SUPPORTED_AGGREGATES)


def _in_from(ref: ColumnRef, ctx: ExtractionContext) -> bool:
    return ref.relation.lower() in (r.lower() for r in ctx.relations)


def _declared_domain(ref: ColumnRef | None,
                     ctx: ExtractionContext) -> Interval | None:
    if ref is None or ctx.schema is None:
        return None
    if not ctx.schema.has_relation(ref.relation):
        return None
    column = ctx.schema.relation(ref.relation).find_column(ref.column)
    if column is None or not column.is_numeric:
        return None
    return column.effective_domain


def _conjunctive_footprints(
        where_expr: BoolExpr) -> dict[ColumnRef, Interval]:
    """Single-interval footprint per column from top-level AND atoms.

    This is the WHERE narrowing that upgrades Lemma 1 to Lemmas 2/3.
    Disjunctive structure is ignored (conservative: wider domains only
    make the aggregate rules *less* constraining).
    """
    expr = to_nnf(where_expr)
    atoms: list[ColumnConstantPredicate] = []
    if isinstance(expr, Atom):
        candidates = [expr]
    elif isinstance(expr, And):
        candidates = [c for c in expr.children if isinstance(c, Atom)]
    else:
        candidates = []
    for leaf in candidates:
        pred = leaf.predicate
        if isinstance(pred, ColumnConstantPredicate) and pred.is_numeric:
            atoms.append(pred)

    footprints: dict[ColumnRef, Interval] = {}
    for pred in atoms:
        hull = pred.to_interval_set().hull()
        if hull is None:
            continue
        if pred.ref in footprints:
            narrowed = footprints[pred.ref].intersect(hull)
            if narrowed is not None:
                footprints[pred.ref] = narrowed
        else:
            footprints[pred.ref] = hull
    return footprints
