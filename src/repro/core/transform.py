"""AST → Boolean-constraint transformation (Sections 4.1, 4.2, 4.4).

This module turns a parsed SELECT statement's FROM and WHERE structure
into a constraint over the universal relation:

* **simple predicates** — comparisons, BETWEEN (split into two bounds),
  IN-lists (OR of equalities), NOT (operator inversion downstream);
* **joins** — CROSS / INNER / NATURAL push their condition into the
  constraint; FULL OUTER drops it (Example 2); LEFT / RIGHT OUTER reduce
  to the nested-IN form whose flattening lands back on the join condition
  (Example 3 + Lemma 4);
* **nested queries** — EXISTS / IN / ANY / ALL / scalar subqueries are
  flattened by adding the subquery's relations to the universal relation
  and splicing its constraint in place (Lemmas 4–6, Example 4).
  AND/OR-connected EXISTS over the same relation are grouped and their
  constraints OR-ed, which is what makes Lemma 5 come out right instead
  of a false contradiction;
* **approximations** — constructs whose exact predicate cannot be
  represented by column-constant/column-column atoms (arithmetic over
  columns, UDF calls, LIKE with wildcards, NOT EXISTS/NOT IN) are widened
  to TRUE (a conservative over-approximation) or handled by influence
  symmetry, with a note recorded on the context.
"""

from __future__ import annotations

from typing import Optional, Union

from ..algebra.boolexpr import (FALSE, TRUE, BoolExpr, atom, make_and,
                                make_not, make_or)
from ..algebra.coercion import parse_number
from ..algebra.predicates import (ColumnColumnPredicate,
                                  ColumnConstantPredicate, ColumnRef,
                                  Constant, Op)
from ..sqlparser import ast
from .context import ExtractionContext

_OPS = {"<": Op.LT, "<=": Op.LE, "=": Op.EQ,
        ">": Op.GT, ">=": Op.GE, "<>": Op.NE}

Operand = Union[ColumnRef, int, float, str, bool, None]


# ---------------------------------------------------------------------------
# FROM clause (Section 4.2)
# ---------------------------------------------------------------------------

def from_items_to_expr(items: tuple[ast.FromItem, ...],
                       ctx: ExtractionContext) -> BoolExpr:
    """Register FROM relations and return the join constraint."""
    parts: list[BoolExpr] = []
    for item in items:
        parts.append(_from_item(item, ctx))
    return make_and(parts)


def _from_item(item: ast.FromItem, ctx: ExtractionContext) -> BoolExpr:
    if isinstance(item, ast.TableRef):
        ctx.register_table(item.name, item.alias)
        return TRUE
    return _join(item, ctx)


def _join(join: ast.Join, ctx: ExtractionContext) -> BoolExpr:
    left = _from_item(join.left, ctx)
    right = _from_item(join.right, ctx)
    jt = join.join_type

    if jt is ast.JoinType.FULL:
        # Example 2: FULL OUTER JOIN keeps every tuple of both sides, so
        # there is no constraint on U — the ON condition is dropped.
        return make_and([left, right])

    if jt is ast.JoinType.NATURAL:
        condition = _natural_condition(join, ctx)
        return make_and([left, right, condition])

    if jt is ast.JoinType.CROSS or join.condition is None:
        return make_and([left, right])

    # INNER keeps the condition directly; LEFT/RIGHT route through the
    # nested-IN equivalence of Example 3, whose Lemma-4 flattening yields
    # the very same condition — so the net transformation is identical.
    condition = condition_to_expr(join.condition, ctx)
    return make_and([left, right, condition])


def _natural_condition(join: ast.Join, ctx: ExtractionContext) -> BoolExpr:
    """Equate the common columns of the two sides of a NATURAL JOIN."""
    if ctx.schema is None:
        ctx.approx("NATURAL JOIN without schema: no condition derivable")
        return TRUE
    left_rels = _relations_of_item(join.left, ctx)
    right_rels = _relations_of_item(join.right, ctx)
    parts: list[BoolExpr] = []
    for lrel in left_rels:
        for rrel in right_rels:
            if not (ctx.schema.has_relation(lrel)
                    and ctx.schema.has_relation(rrel)):
                continue
            lcols = {c.name.lower() for c in ctx.schema.relation(lrel)}
            rcols = {c.name.lower() for c in ctx.schema.relation(rrel)}
            for name in sorted(lcols & rcols):
                parts.append(atom(ColumnColumnPredicate(
                    ColumnRef(lrel, name), Op.EQ, ColumnRef(rrel, name))))
    if not parts:
        ctx.note("NATURAL JOIN with no common columns")
    return make_and(parts)


def _relations_of_item(item: ast.FromItem,
                       ctx: ExtractionContext) -> list[str]:
    if isinstance(item, ast.TableRef):
        return [ctx.canonical_relation(item.name)]
    return (_relations_of_item(item.left, ctx)
            + _relations_of_item(item.right, ctx))


# ---------------------------------------------------------------------------
# Conditions (Sections 4.1 and 4.4)
# ---------------------------------------------------------------------------

def condition_to_expr(cond: ast.Condition,
                      ctx: ExtractionContext) -> BoolExpr:
    """Convert a condition tree into the constraint Boolean expression."""
    if isinstance(cond, (ast.AndCondition, ast.OrCondition)):
        return _connective_to_expr(cond, ctx)
    if isinstance(cond, ast.NotCondition):
        return _not_to_expr(cond, ctx)
    if isinstance(cond, ast.Comparison):
        return _comparison_to_expr(cond, ctx)
    if isinstance(cond, ast.Between):
        return _between_to_expr(cond, ctx)
    if isinstance(cond, ast.InList):
        return _in_list_to_expr(cond, ctx)
    if isinstance(cond, ast.InSubquery):
        return _in_subquery_to_expr(cond, ctx)
    if isinstance(cond, ast.Exists):
        return flatten_subquery(cond.query, ctx,
                                negated=cond.negated)
    if isinstance(cond, ast.QuantifiedComparison):
        return _quantified_to_expr(cond, ctx)
    if isinstance(cond, ast.Like):
        return _like_to_expr(cond, ctx)
    if isinstance(cond, ast.IsNull):
        # NULL membership does not restrict the value space we model.
        ctx.approx("IS NULL predicate widened to TRUE")
        return TRUE
    ctx.approx(f"unsupported condition {type(cond).__name__} widened")
    return TRUE


def _connective_to_expr(cond: ast.Condition,
                        ctx: ExtractionContext) -> BoolExpr:
    """AND/OR with the EXISTS-grouping rule of Section 4.4.

    Sibling EXISTS subqueries over the same relation set contribute ONE
    occurrence of that relation to U, so their constraints must be OR-ed
    (any tuple satisfying either influences the result).  Without the
    grouping, ``EXISTS(S.v < b) AND EXISTS(S.v > g)`` would wrongly
    conjoin into a contradiction — the situation Lemma 5 resolves.
    """
    is_and = isinstance(cond, ast.AndCondition)
    children = cond.children if isinstance(
        cond, (ast.AndCondition, ast.OrCondition)) else (cond,)

    groups: dict[frozenset[str], list[BoolExpr]] = {}
    rest: list[BoolExpr] = []
    for child in children:
        exists = _as_exists(child)
        if exists is not None:
            relations = _subquery_relation_key(exists.query, ctx)
            constraint = flatten_subquery(exists.query, ctx,
                                          negated=exists.negated)
            groups.setdefault(relations, []).append(constraint)
        else:
            rest.append(condition_to_expr(child, ctx))

    grouped = [make_or(constraints) for constraints in groups.values()]
    parts = rest + grouped
    return make_and(parts) if is_and else make_or(parts)


def _as_exists(cond: ast.Condition) -> Optional[ast.Exists]:
    if isinstance(cond, ast.Exists):
        return cond
    if isinstance(cond, ast.NotCondition) and \
            isinstance(cond.child, ast.Exists):
        inner = cond.child
        return ast.Exists(inner.query, negated=not inner.negated)
    return None


def _subquery_relation_key(stmt: ast.SelectStatement,
                           ctx: ExtractionContext) -> frozenset[str]:
    return frozenset(
        ctx.canonical_relation(ref.name).lower()
        for ref in stmt.table_refs())


def _not_to_expr(cond: ast.NotCondition,
                 ctx: ExtractionContext) -> BoolExpr:
    """NOT is pushed through condition connectives BEFORE conversion.

    Flattened subquery constraints describe which tuples of the added
    relations can influence the result — a property that is symmetric
    under negation — so NOT must never reach them.  De Morgan at the
    condition level routes every negation either to plain predicates
    (operator inversion) or to the influence-symmetric subquery cases.
    """
    child = cond.child
    if isinstance(child, ast.Exists):
        ctx.note("NOT EXISTS flattened via influence symmetry")
        return flatten_subquery(child.query, ctx, negated=not child.negated)
    if isinstance(child, ast.InSubquery):
        return _in_subquery_to_expr(
            ast.InSubquery(child.expr, child.query, not child.negated),
            ctx)
    if isinstance(child, ast.QuantifiedComparison):
        ctx.note("NOT over quantified comparison flattened via "
                 "influence symmetry")
        return _quantified_to_expr(child, ctx, under_not=True)
    if isinstance(child, ast.NotCondition):
        return condition_to_expr(child.child, ctx)
    if isinstance(child, ast.AndCondition):
        return make_or(
            _not_to_expr(ast.NotCondition(grandchild), ctx)
            for grandchild in child.children)
    if isinstance(child, ast.OrCondition):
        return make_and(
            _not_to_expr(ast.NotCondition(grandchild), ctx)
            for grandchild in child.children)
    if isinstance(child, ast.Comparison) and (
            isinstance(child.right, ast.ScalarSubquery)
            or isinstance(child.left, ast.ScalarSubquery)):
        # Negate the link operator only; the subquery's own constraint is
        # influence-symmetric and survives as-is.
        negated_op = _OPS[child.op].negate()
        op_text = {Op.LT: "<", Op.LE: "<=", Op.EQ: "=", Op.GT: ">",
                   Op.GE: ">=", Op.NE: "<>"}[negated_op]
        return _comparison_to_expr(
            ast.Comparison(child.left, op_text, child.right), ctx)
    if isinstance(child, ast.Like):
        # Flip the LIKE's own negation flag; wildcard patterns still
        # widen to TRUE inside, which stays sound under this rewrite.
        return _like_to_expr(
            ast.Like(child.expr, child.pattern, not child.negated), ctx)
    if isinstance(child, ast.IsNull):
        # IS [NOT] NULL widens either way; negating TRUE would be FALSE —
        # a *shrunken* area — so route through the widening case instead.
        return condition_to_expr(
            ast.IsNull(child.expr, not child.negated), ctx)
    # Fallback: safe only when the child converted exactly.  A widened
    # child means `inner` is an over-set of the child's constraint, so
    # NOT inner would *under*-approximate — re-widen to TRUE instead.
    before = ctx.widening_count
    inner = condition_to_expr(child, ctx)
    if ctx.widening_count > before:
        ctx.approx("NOT over widened condition re-widened to TRUE")
        return TRUE
    return make_not(inner)


def _comparison_to_expr(cond: ast.Comparison,
                        ctx: ExtractionContext) -> BoolExpr:
    op = _OPS.get(cond.op)
    if op is None:
        ctx.approx(f"unknown comparison operator {cond.op}")
        return TRUE

    if isinstance(cond.right, ast.ScalarSubquery):
        return _scalar_subquery_to_expr(cond.left, op, cond.right.query, ctx)
    if isinstance(cond.left, ast.ScalarSubquery):
        return _scalar_subquery_to_expr(
            cond.right, op.flip(), cond.left.query, ctx)

    left = _operand(cond.left, ctx)
    right = _operand(cond.right, ctx)
    if isinstance(left, ColumnRef) and isinstance(right, ColumnRef):
        return atom(ColumnColumnPredicate(left, op, right))
    if isinstance(left, ColumnRef) and _is_constant(right):
        return atom(ColumnConstantPredicate(
            left, op, _schema_coerce(left, right, ctx)))
    if _is_constant(left) and isinstance(right, ColumnRef):
        return atom(ColumnConstantPredicate(
            right, op.flip(), _schema_coerce(right, left, ctx)))
    if _is_constant(left) and _is_constant(right):
        # Constant folding: e.g. WHERE 1 = 1.
        return TRUE if ColumnConstantPredicate(
            ColumnRef("", ""), op, right).evaluate(left) else FALSE
    ctx.approx("non-atomic comparison widened to TRUE")
    return TRUE


def _between_to_expr(cond: ast.Between,
                     ctx: ExtractionContext) -> BoolExpr:
    """BETWEEN splits into the two bound predicates (Section 4.1)."""
    ref = _operand(cond.expr, ctx)
    low = _operand(cond.low, ctx)
    high = _operand(cond.high, ctx)
    if not isinstance(ref, ColumnRef) or not _is_constant(low) \
            or not _is_constant(high):
        ctx.approx("non-atomic BETWEEN widened to TRUE")
        return TRUE
    expr = make_and([
        atom(ColumnConstantPredicate(
            ref, Op.GE, _schema_coerce(ref, low, ctx))),
        atom(ColumnConstantPredicate(
            ref, Op.LE, _schema_coerce(ref, high, ctx))),
    ])
    return make_not(expr) if cond.negated else expr


def _in_list_to_expr(cond: ast.InList,
                     ctx: ExtractionContext) -> BoolExpr:
    ref = _operand(cond.expr, ctx)
    if not isinstance(ref, ColumnRef):
        ctx.approx("non-column IN list widened to TRUE")
        return TRUE
    parts: list[BoolExpr] = []
    for value_expr in cond.values:
        value = _operand(value_expr, ctx)
        if _is_constant(value):
            parts.append(atom(ColumnConstantPredicate(
                ref, Op.EQ, _schema_coerce(ref, value, ctx))))
        else:
            ctx.approx("non-constant IN member widened")
            return TRUE
    expr = make_or(parts)
    return make_not(expr) if cond.negated else expr


def _in_subquery_to_expr(cond: ast.InSubquery,
                         ctx: ExtractionContext) -> BoolExpr:
    """``x IN (SELECT y FROM ...)`` ≡ ``EXISTS(... WHERE y = x)``."""
    if cond.negated:
        ctx.note("NOT IN flattened via influence symmetry")
    return flatten_subquery(cond.query, ctx, link=(cond.expr, Op.EQ),
                            negated=cond.negated)


def _quantified_to_expr(cond: ast.QuantifiedComparison,
                        ctx: ExtractionContext,
                        under_not: bool = False) -> BoolExpr:
    """ANY/ALL flatten like IN but keep the comparison operator.

    For ALL this keeps the user's comparison as-is — an approximation
    aimed at intent capture (the boundary tuples differ only in operator
    closure).  ALL (and NOT over ANY) holds vacuously on an empty
    subquery, so those forms pass ``vacuous_truth`` down.
    """
    op = _OPS.get(cond.op, Op.EQ)
    if cond.quantifier == "ALL":
        ctx.approx("ALL quantifier approximated by ANY-style flattening")
    vacuous = (cond.quantifier == "ALL") != under_not
    return flatten_subquery(cond.query, ctx, link=(cond.expr, op),
                            vacuous_truth=vacuous)


def _scalar_subquery_to_expr(outer_expr: ast.Expr, op: Op,
                             query: ast.SelectStatement,
                             ctx: ExtractionContext) -> BoolExpr:
    """Implicit nesting: ``T.u = (SELECT S.u FROM S WHERE ...)``."""
    return flatten_subquery(query, ctx, link=(outer_expr, op))


def _like_to_expr(cond: ast.Like, ctx: ExtractionContext) -> BoolExpr:
    ref = _operand(cond.expr, ctx)
    if not isinstance(ref, ColumnRef):
        ctx.approx("non-column LIKE widened to TRUE")
        return TRUE
    if "%" not in cond.pattern and "_" not in cond.pattern:
        # Wildcard-free LIKE is an equality on a categorical column.
        op = Op.NE if cond.negated else Op.EQ
        return atom(ColumnConstantPredicate(ref, op, cond.pattern))
    ctx.approx(f"LIKE pattern {cond.pattern!r} widened to TRUE")
    return TRUE


# ---------------------------------------------------------------------------
# Subquery flattening (Section 4.4, Lemmas 4-6, Example 4)
# ---------------------------------------------------------------------------

def flatten_subquery(stmt: ast.SelectStatement, ctx: ExtractionContext,
                     link: Optional[tuple[ast.Expr, Op]] = None,
                     negated: bool = False,
                     vacuous_truth: Optional[bool] = None) -> BoolExpr:
    """Flatten a nested query into a constraint on the enlarged U.

    The subquery's relations join the universal relation; its WHERE (and
    join conditions) become the returned constraint.  ``link`` adds the
    correlation predicate of IN / ANY / ALL / scalar forms: the outer
    expression compared against the subquery's first output column.
    Multi-level nesting recurses naturally (Example 4).

    ``negated`` marks NOT EXISTS / NOT IN forms; by influence symmetry the
    flattening is identical, so the flag only feeds diagnostics.

    ``vacuous_truth`` marks constructs that hold on an *empty* subquery
    result (NOT EXISTS, NOT IN, ALL, NOT over ANY; defaults to
    ``negated``).  Their flattened constraint must not be allowed to
    contradict: an unsatisfiable subquery produces no rows in any state,
    the construct is then TRUE everywhere, and conjoining the
    contradiction would collapse the whole area to ∅ — wrongly ruling
    out outer tuples that appear in every result.
    """
    sub = ctx.child()
    join_expr = from_items_to_expr(stmt.from_items, sub)
    where_expr = TRUE
    if stmt.where is not None:
        where_expr = condition_to_expr(stmt.where, sub)

    link_expr: BoolExpr = TRUE
    if link is not None:
        outer_expr, op = link
        outer_operand = _operand(outer_expr, ctx)
        inner_operand = _subquery_output_operand(stmt, sub)
        link_expr = _link_predicate(outer_operand, op, inner_operand, ctx)

    having_expr = TRUE
    if stmt.having is not None:
        # Nested aggregate queries: combine Section 4.3 with Section 4.4.
        from .extractor import having_to_expr  # local import: no cycle
        having_expr = having_to_expr(stmt, where_expr, sub)

    if negated:
        ctx.note("negated subquery flattened without negation "
                 "(influence-symmetric approximation)")
    expr = make_and([join_expr, where_expr, link_expr, having_expr])
    if vacuous_truth is None:
        vacuous_truth = negated
    if vacuous_truth and _provably_unsat(expr):
        ctx.note("vacuously-true nested construct over an unsatisfiable "
                 "subquery: constraint dropped")
        return TRUE
    return expr


def _provably_unsat(expr: BoolExpr) -> bool:
    """Cheap satisfiability refutation via the consolidation engine."""
    from ..algebra.cnf import to_cnf
    from ..algebra.consolidate import consolidate
    from ..algebra.nnf import to_nnf
    if to_nnf(expr).count_atoms() > 64:
        return False  # CNF blow-up guard: assume satisfiable
    return consolidate(to_cnf(expr)).stats.contradiction


def _subquery_output_operand(stmt: ast.SelectStatement,
                             sub: ExtractionContext) -> Operand:
    if not stmt.select_items:
        return None
    first = stmt.select_items[0].expr
    if isinstance(first, ast.Star):
        return None
    return _operand(first, sub)


def _link_predicate(outer: Operand, op: Op, inner: Operand,
                    ctx: ExtractionContext) -> BoolExpr:
    if isinstance(outer, ColumnRef) and isinstance(inner, ColumnRef):
        return atom(ColumnColumnPredicate(outer, op, inner))
    if isinstance(outer, ColumnRef) and _is_constant(inner):
        return atom(ColumnConstantPredicate(
            outer, op, _schema_coerce(outer, inner, ctx)))
    if _is_constant(outer) and isinstance(inner, ColumnRef):
        return atom(ColumnConstantPredicate(
            inner, op.flip(), _schema_coerce(inner, outer, ctx)))
    ctx.approx("subquery link predicate widened to TRUE")
    return TRUE


# ---------------------------------------------------------------------------
# Operand extraction
# ---------------------------------------------------------------------------

def _schema_coerce(ref: ColumnRef, value: Constant,
                   ctx: ExtractionContext) -> Constant:
    """Build-time mirror of the shared mixed-type comparison coercion.

    A numeric-string constant against a column the schema declares
    numeric (``WHERE ra > '180'``) becomes its numeric value, so the
    predicate consolidates, intervals, and interns exactly like its
    unquoted spelling.  Evaluation semantics are unchanged — the
    compare-time rule in :mod:`repro.algebra.coercion` performs the
    same conversion — this only canonicalizes the stored constant.
    """
    if not isinstance(value, str) or ctx.schema is None:
        return value
    if not ctx.schema.has_relation(ref.relation):
        return value
    column = ctx.schema.relation(ref.relation).find_column(ref.column)
    if column is None or not column.is_numeric:
        return value
    parsed = parse_number(value)
    return value if parsed is None else parsed

def _operand(expr: ast.Expr, ctx: ExtractionContext) -> Operand:
    """Reduce a scalar expression to a column reference or a constant.

    Anything more complex (arithmetic over columns, UDF calls) returns
    ``None``, signalling the caller to widen.  Constant arithmetic is
    folded so that ``WHERE r < 20 + 2`` still yields an atomic predicate.
    """
    if isinstance(expr, ast.ColumnExpr):
        ref = ctx.resolve_column(expr.table, expr.name)
        if ref is None:
            ctx.note(f"unresolved column {expr}")
        return ref
    if isinstance(expr, ast.Literal):
        return expr.value
    if isinstance(expr, ast.UnaryMinus):
        inner = _operand(expr.operand, ctx)
        if _is_constant(inner) and not isinstance(inner, str):
            return -inner
        return None
    if isinstance(expr, ast.Arithmetic):
        left = _operand(expr.left, ctx)
        right = _operand(expr.right, ctx)
        if _is_number(left) and _is_number(right):
            return _fold(expr.op, left, right)
        return None
    return None


def _is_constant(value: Operand) -> bool:
    return value is not None and not isinstance(value, ColumnRef)


def _is_number(value: Operand) -> bool:
    return isinstance(value, (int, float)) and not isinstance(value, bool)


def _fold(op: str, left: float, right: float) -> Optional[float]:
    if op == "+":
        return left + right
    if op == "-":
        return left - right
    if op == "*":
        return left * right
    if op == "/" and right != 0:
        return left / right
    if op == "%" and right != 0:
        return left % right
    return None
