"""Temporal interest drift (the abstract's "trending research directions").

The paper motivates access-area mining with understanding "the public
focus, and trending research directions on the subject described by the
database".  This module adds the temporal axis: split a timestamped log
into windows, mine each window's interest areas, and match areas across
consecutive windows to report which interests **emerged**, **persisted**
(growing or shrinking), and **vanished**.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Callable, Optional, Sequence

from ..clustering.aggregation import AggregatedArea, aggregate_cluster
from ..clustering.partitioned import partitioned_dbscan
from ..core.area import AccessArea
from ..distance.query_distance import QueryDistance
from ..schema.statistics import StatisticsCatalog


class TrendKind(enum.Enum):
    EMERGED = "emerged"
    PERSISTED = "persisted"
    VANISHED = "vanished"


@dataclass(frozen=True)
class WindowInterest:
    """One interest area mined from one time window."""

    window: int
    aggregated: AggregatedArea
    medoid: AccessArea
    cardinality: int


@dataclass(frozen=True)
class Trend:
    """One interest's evolution between consecutive windows."""

    kind: TrendKind
    window: int  # the later window
    current: Optional[WindowInterest]
    previous: Optional[WindowInterest]

    @property
    def growth(self) -> float:
        """Cardinality ratio (later / earlier); inf for emerged."""
        if self.previous is None:
            return float("inf")
        if self.current is None:
            return 0.0
        return self.current.cardinality / max(self.previous.cardinality, 1)

    def describe(self) -> str:
        interest = self.current or self.previous
        assert interest is not None
        label = interest.aggregated.describe()
        if self.kind is TrendKind.EMERGED:
            return (f"[w{self.window}] EMERGED "
                    f"({interest.cardinality} queries): {label}")
        if self.kind is TrendKind.VANISHED:
            return f"[w{self.window}] VANISHED: {label}"
        arrow = "↑" if self.growth > 1.25 else \
            "↓" if self.growth < 0.8 else "→"
        return (f"[w{self.window}] {arrow} x{self.growth:.2f} "
                f"({interest.cardinality} queries): {label}")


@dataclass
class DriftReport:
    windows: list[list[WindowInterest]] = field(default_factory=list)
    trends: list[Trend] = field(default_factory=list)

    def emerged(self) -> list[Trend]:
        return [t for t in self.trends if t.kind is TrendKind.EMERGED]

    def vanished(self) -> list[Trend]:
        return [t for t in self.trends if t.kind is TrendKind.VANISHED]

    def persisted(self) -> list[Trend]:
        return [t for t in self.trends if t.kind is TrendKind.PERSISTED]

    def describe(self, limit: int = 20) -> str:
        lines = [f"windows analysed : {len(self.windows)}"]
        lines += [f"  w{index}: {len(interests)} interest areas"
                  for index, interests in enumerate(self.windows)]
        lines.append(f"trends: {len(self.emerged())} emerged, "
                     f"{len(self.persisted())} persisted, "
                     f"{len(self.vanished())} vanished")
        for trend in self.trends[:limit]:
            lines.append("  " + trend.describe()[:100])
        return "\n".join(lines)


def mine_drift(
        windows: Sequence[Sequence[AccessArea]],
        stats: StatisticsCatalog,
        eps: float = 0.12,
        min_pts: int = 5,
        resolution: float = 0.05,
        match_distance: float = 0.5,
        sigma: float = 3.0,
        n_jobs: int = 1) -> DriftReport:
    """Mine each window and match interests across consecutive windows.

    Two interests in consecutive windows are the *same* interest when
    their medoids are within ``match_distance`` (greedy best-match).
    ``n_jobs`` fans the per-window distance matrices out over worker
    processes (1 = serial).
    """
    distance = QueryDistance(stats, resolution=resolution)
    report = DriftReport()

    for window_index, areas in enumerate(windows):
        clustering = partitioned_dbscan(list(areas), distance, eps,
                                        min_pts, n_jobs=n_jobs)
        interests: list[WindowInterest] = []
        for cluster_id, indices in clustering.clusters().items():
            members = [areas[i] for i in indices]
            aggregated = aggregate_cluster(cluster_id, members, stats,
                                           sigma=sigma)
            medoid = _medoid(members, distance)
            interests.append(WindowInterest(
                window=window_index, aggregated=aggregated,
                medoid=medoid, cardinality=len(members)))
        interests.sort(key=lambda i: i.cardinality, reverse=True)
        report.windows.append(interests)

    for window_index in range(1, len(report.windows)):
        previous = list(report.windows[window_index - 1])
        current = list(report.windows[window_index])
        matched_prev: set[int] = set()
        for interest in current:
            best_j, best_d = None, match_distance
            for j, candidate in enumerate(previous):
                if j in matched_prev:
                    continue
                d = distance(interest.medoid, candidate.medoid)
                if d <= best_d:
                    best_j, best_d = j, d
            if best_j is None:
                report.trends.append(Trend(TrendKind.EMERGED,
                                           window_index, interest, None))
            else:
                matched_prev.add(best_j)
                report.trends.append(Trend(TrendKind.PERSISTED,
                                           window_index, interest,
                                           previous[best_j]))
        for j, candidate in enumerate(previous):
            if j not in matched_prev:
                report.trends.append(Trend(TrendKind.VANISHED,
                                           window_index, None, candidate))
    return report


def _medoid(members: list[AccessArea],
            distance: Callable[[AccessArea, AccessArea], float],
            sample_cap: int = 20) -> AccessArea:
    candidates = members[:sample_cap]
    best, best_cost = candidates[0], float("inf")
    for candidate in candidates:
        cost = sum(distance(candidate, other) for other in candidates)
        if cost < best_cost:
            best, best_cost = candidate, cost
    return best


def split_by_time(areas_with_time: Sequence[tuple[AccessArea, float]],
                  n_windows: int) -> list[list[AccessArea]]:
    """Equal-duration windows over (area, timestamp) pairs."""
    if not areas_with_time:
        return [[] for _ in range(n_windows)]
    times = [t for _, t in areas_with_time]
    start, end = min(times), max(times)
    span = max(end - start, 1e-9)
    windows: list[list[AccessArea]] = [[] for _ in range(n_windows)]
    for area, t in areas_with_time:
        index = min(n_windows - 1,
                    int((t - start) / span * n_windows))
        windows[index].append(area)
    return windows
