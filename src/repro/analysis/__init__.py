"""Experiment drivers and reporting (Section 6 reproduction)."""

from .experiments import (CaseStudyConfig, CaseStudyResult, ClusterRow,
                          SampledQuery, run_case_study)
from .categorize import (IntentKind, QueryCategory, SkyAreaKind,
                         categorize, categorize_sql)
from .drift import (DriftReport, Trend, TrendKind, WindowInterest,
                    mine_drift, split_by_time)
from .export import (export_extraction_report_csv, export_figure_csv,
                     export_table1_csv)
from .sessions import (DEFAULT_IDLE_GAP, Session, SessionStatistics,
                       split_sessions)
from .figures import FigureData, Rect, figure1a, figure1b, figure1c
from .report import format_summary, format_table1
from .users import (QueryRole, UserAnalytics, UserProfile, UserQuery,
                    analyze_users, classify_test_queries,
                    format_user_report)

__all__ = [
    "CaseStudyConfig", "CaseStudyResult", "ClusterRow", "SampledQuery",
    "run_case_study",
    "FigureData", "Rect", "figure1a", "figure1b", "figure1c",
    "format_summary", "format_table1",
    "QueryRole", "UserAnalytics", "UserProfile", "UserQuery",
    "analyze_users", "classify_test_queries", "format_user_report",
    "export_extraction_report_csv", "export_figure_csv",
    "export_table1_csv",
    "IntentKind", "QueryCategory", "SkyAreaKind", "categorize",
    "categorize_sql",
    "DEFAULT_IDLE_GAP", "Session", "SessionStatistics", "split_sessions",
    "DriftReport", "Trend", "TrendKind", "WindowInterest", "mine_drift",
    "split_by_time",
]
