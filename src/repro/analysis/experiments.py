"""The end-to-end case study driver (Section 6).

Glues the substrates together the way the paper's study does:

1. generate the synthetic database and query log;
2. estimate ``content(a)``/``access(a)`` by sampling (Section 5.3);
3. extract access areas from the whole log (Section 6.1);
4. widen ``access(a)`` with the constants seen in the log;
5. cluster a sample of the transformed queries with DBSCAN (Section 6.2);
6. aggregate clusters into MBRs with 3σ trimming and compute cardinality,
   user counts, area coverage, and object coverage (Table 1).

Benchmarks and examples all call :func:`run_case_study` with different
configurations.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Optional

from ..clustering.aggregation import AggregatedArea, aggregate_cluster
from ..clustering.coverage import area_coverage, object_coverage
from ..clustering.dbscan import DBSCANResult
from ..clustering.density import density_contrast
from ..clustering.partitioned import partitioned_dbscan
from ..core.area import AccessArea
from ..core.extractor import AccessAreaExtractor
from ..core.pipeline import (LogProcessingReport, dedupe_areas,
                             expand_labels, process_log)
from ..distance.block_sparse import (MATRIX_MODES, NEIGHBOR_BACKENDS,
                                     compute_matrix)
from ..distance.query_distance import QueryDistance
from ..obs import get_logger, trace
from ..engine.database import Database
from ..schema.database import Schema
from ..schema.skyserver import CONTENT_BOUNDS, skyserver_schema
from ..schema.statistics import StatisticsCatalog
from ..workload.content import ContentConfig, build_database
from ..workload.generator import (GeneratedWorkload, WorkloadConfig,
                                  generate_workload)

logger = get_logger(__name__)


@dataclass(frozen=True)
class CaseStudyConfig:
    """All knobs of one case-study run."""

    workload: WorkloadConfig = WorkloadConfig(n_queries=6000)
    content: ContentConfig = ContentConfig()
    #: clustering sample size (the paper also clusters a sample)
    sample_size: int = 2500
    eps: float = 0.12
    min_pts: int = 5
    resolution: float = 0.05
    sigma: float = 3.0
    #: True → the paper's sampling+doubling estimate; False → exact MBRs
    estimate_stats: bool = True
    predicate_cap: Optional[int] = 35
    consolidate: bool = True
    seed: int = 99
    #: worker processes for the clustering distance matrices (1 = serial)
    n_jobs: int = 1
    #: distance-matrix layout: "dense", "sparse" (block-sparse
    #: partitioned), or "auto" (sparse whenever eps lies below the
    #: population's partition exactness bound)
    matrix_mode: str = "auto"
    #: neighbour-query backend: "matrix" (materialized storage) or
    #: "vptree" (per-partition vantage-point trees; falls back to the
    #: matrix backend with a warning when its preconditions fail)
    neighbor_backend: str = "matrix"
    #: True → intern areas by canonical fingerprint and cluster the
    #: unique areas with multiplicity weights (distance stage computes
    #: u(u−1)/2 pairs instead of n(n−1)/2), expanding labels back
    #: afterwards; False → one area object per statement (``--no-intern``)
    intern: bool = True
    #: directory for the persistent :class:`~repro.store.AreaStore`
    #: (``--store-dir``): a cold run persists extracted areas, the log
    #: manifest, and condensed distance blocks; a warm re-run on the
    #: same directory replays them — zero SQL re-extraction, reloaded
    #: blocks, bitwise-identical labels.  ``None`` = in-memory only.
    store_dir: Optional[str] = None

    def __post_init__(self) -> None:
        if self.matrix_mode not in MATRIX_MODES:
            raise ValueError(
                f"matrix_mode must be one of {MATRIX_MODES}, "
                f"got {self.matrix_mode!r}")
        if self.neighbor_backend not in NEIGHBOR_BACKENDS:
            raise ValueError(
                f"neighbor_backend must be one of {NEIGHBOR_BACKENDS}, "
                f"got {self.neighbor_backend!r}")


@dataclass
class ClusterRow:
    """One Table-1 row."""

    cluster_id: int
    cardinality: int
    n_users: int
    area_coverage: float
    object_coverage: float
    description: str
    aggregated: AggregatedArea
    #: how much denser the cluster is than its immediate surroundings
    #: (the Section 6.3 refinement); inf when the shell is empty
    density_contrast: float = 1.0
    #: ground-truth diagnostics (synthetic setting only)
    dominant_family: int = 0
    purity: float = 0.0

    @property
    def is_empty_area(self) -> bool:
        return self.area_coverage == 0.0


@dataclass
class SampledQuery:
    """A clustering-sample member with its provenance."""

    area: AccessArea
    user: str
    family_id: int


@dataclass
class CaseStudyResult:
    config: CaseStudyConfig
    workload: GeneratedWorkload
    db: Database
    schema: Schema
    stats: StatisticsCatalog
    report: LogProcessingReport
    sample: list[SampledQuery]
    clustering: DBSCANResult
    rows: list[ClusterRow] = field(default_factory=list)

    @property
    def n_clusters(self) -> int:
        return self.clustering.n_clusters

    def rows_for_family(self, family_id: int) -> list[ClusterRow]:
        return [row for row in self.rows
                if row.dominant_family == family_id]

    def recovered_families(self, min_purity: float = 0.5) -> set[int]:
        """Planted families recovered as (dominant, pure-enough) clusters."""
        return {
            row.dominant_family for row in self.rows
            if row.dominant_family > 0 and row.purity >= min_purity
        }


def run_case_study(config: CaseStudyConfig | None = None) -> CaseStudyResult:
    """Execute the full pipeline; deterministic given the config seeds."""
    config = config or CaseStudyConfig()
    with trace.span("casestudy",
                    queries=config.workload.n_queries,
                    sample_size=config.sample_size,
                    eps=config.eps) as root:
        schema = skyserver_schema()
        with trace.span("generate_workload"):
            workload = generate_workload(config.workload)
        with trace.span("build_database"):
            db = build_database(config.content, schema)

        with trace.span("estimate_stats",
                        estimated=config.estimate_stats):
            if config.estimate_stats:
                stats = StatisticsCatalog.estimate(schema, db)
            else:
                stats = StatisticsCatalog.from_exact_content(
                    schema, CONTENT_BOUNDS)

        extractor = AccessAreaExtractor(
            schema, predicate_cap=config.predicate_cap,
            consolidate=config.consolidate)
        store = None
        store_token = None
        if config.store_dir:
            from ..store import AreaStore
            store = AreaStore(config.store_dir)
            # Everything beyond area identity that shapes distance
            # values: metric resolution plus the provenance of the
            # statistics the metric widens with (content + workload
            # configs pin both deterministically).  Any drift misses
            # the block cache instead of serving stale distances.
            store_token = (f"res={config.resolution}"
                           f"|est={config.estimate_stats}"
                           f"|workload={config.workload!r}"
                           f"|content={config.content!r}")
        report = process_log(workload.log.statements_with_users(),
                             extractor, intern=config.intern,
                             store=store)

        # access(a) = content(a) ∪ MBR(a): widen with the whole log's
        # constants.
        with trace.span("widen_access"):
            for extracted in report.extracted:
                stats.observe_cnf(extracted.area.cnf)

        rng = random.Random(config.seed)
        extracted = report.extracted
        if len(extracted) > config.sample_size:
            extracted = rng.sample(extracted, config.sample_size)
        sample = [
            SampledQuery(
                area=item.area,
                user=item.user or "anonymous",
                family_id=workload.log[item.index].family_id,
            )
            for item in extracted
        ]

        distance = QueryDistance(stats, resolution=config.resolution)
        with trace.span("cluster", sample=len(sample),
                        matrix_mode=config.matrix_mode,
                        intern=config.intern) as cluster_span:
            sample_areas = [s.area for s in sample]
            if config.intern:
                # Cluster the unique areas with multiplicity weights —
                # same labels as clustering the full sample, but the
                # distance stage pays u(u−1)/2 instead of n(n−1)/2.
                unique, area_weights, inverse = dedupe_areas(sample_areas)
                matrix = compute_matrix(
                    unique, distance, mode=config.matrix_mode,
                    eps=config.eps, n_jobs=config.n_jobs,
                    neighbor_backend=config.neighbor_backend,
                    store=store, store_token=store_token)
                matrix.stats.n_source_items = len(sample_areas)
                deduped = partitioned_dbscan(
                    unique, distance, config.eps, config.min_pts,
                    matrix=matrix, weights=area_weights,
                    on_inexact="fallback")
                clustering = DBSCANResult(
                    expand_labels(deduped.labels, inverse))
                cluster_span.set(unique=len(unique))
            else:
                matrix = compute_matrix(
                    sample_areas, distance, mode=config.matrix_mode,
                    eps=config.eps, n_jobs=config.n_jobs,
                    neighbor_backend=config.neighbor_backend,
                    store=store, store_token=store_token)
                # auto mode already hands us a dense matrix when eps is
                # too large for exact partitioning; fall back to plain
                # DBSCAN on it instead of failing the whole study.
                clustering = partitioned_dbscan(
                    sample_areas, distance, config.eps,
                    config.min_pts, matrix=matrix, on_inexact="fallback")

        with trace.span("aggregate"):
            rows = _build_rows(sample, clustering, stats, db, config)
        if store is not None:
            store.close()
        root.set(clusters=clustering.n_clusters)
    logger.info("case study: %d statements, %d sampled, %d clusters",
                report.total, len(sample), clustering.n_clusters)
    return CaseStudyResult(
        config=config, workload=workload, db=db, schema=schema,
        stats=stats, report=report, sample=sample, clustering=clustering,
        rows=rows)


def _build_rows(sample: list[SampledQuery], clustering: DBSCANResult,
                stats: StatisticsCatalog, db: Database,
                config: CaseStudyConfig) -> list[ClusterRow]:
    population = [s.area for s in sample]
    rows: list[ClusterRow] = []
    for cluster_id, indices in clustering.clusters().items():
        members = [sample[i] for i in indices]
        member_areas = [m.area for m in members]
        agg = aggregate_cluster(
            cluster_id, member_areas, stats, sigma=config.sigma)
        families = [m.family_id for m in members]
        dominant = max(set(families), key=families.count)
        purity = families.count(dominant) / len(families)
        density = density_contrast(agg, member_areas, population, stats)
        rows.append(ClusterRow(
            cluster_id=cluster_id,
            cardinality=len(members),
            n_users=len({m.user for m in members}),
            area_coverage=area_coverage(agg, stats),
            object_coverage=object_coverage(agg, db),
            description=agg.describe(),
            aggregated=agg,
            density_contrast=density.contrast,
            dominant_family=dominant,
            purity=purity,
        ))
    rows.sort(key=lambda row: row.cardinality, reverse=True)
    return rows
