"""User and session analytics (Section 6.3 follow-ups).

The paper's astronomer distinguished numerous exploratory **test
queries** from the few decisive **final queries** and asked for "ways to
differentiate between these categories, possibly based on the metadata
available"; the related work (Singh et al.) separates **bots** from
**mortals** by their repetition patterns.  This module implements both
heuristics over extracted areas plus per-user activity profiles.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass, field
from typing import Sequence

from ..baselines.signatures import area_signature
from ..core.area import AccessArea


@dataclass(frozen=True)
class UserQuery:
    """One extracted query attributed to a user."""

    user: str
    area: AccessArea
    sql: str = ""


@dataclass(frozen=True)
class UserProfile:
    """Aggregate behaviour of one user."""

    user: str
    query_count: int
    distinct_signatures: int
    relations: frozenset[str]
    max_signature_repeats: int

    @property
    def repetition_ratio(self) -> float:
        """1.0 = every query identical; → 0 for all-distinct users."""
        if self.query_count <= 1:
            return 0.0
        return 1.0 - (self.distinct_signatures - 1) / (self.query_count - 1)


@dataclass
class UserAnalytics:
    """Classified view of a query population."""

    profiles: dict[str, UserProfile] = field(default_factory=dict)
    #: users issuing many near-identical statements (likely automated)
    bots: list[str] = field(default_factory=list)
    #: users with few, varied statements (likely human explorers)
    mortals: list[str] = field(default_factory=list)

    def profile(self, user: str) -> UserProfile:
        return self.profiles[user]


def analyze_users(queries: Sequence[UserQuery],
                  bot_min_queries: int = 20,
                  bot_repetition: float = 0.5) -> UserAnalytics:
    """Build per-user profiles and the bot/mortal split.

    A *bot* issues at least ``bot_min_queries`` statements with a
    repetition ratio of at least ``bot_repetition`` — the Singh-et-al.
    style template-hammering pattern.  Everyone else is a mortal.
    """
    by_user: dict[str, list[UserQuery]] = {}
    for query in queries:
        by_user.setdefault(query.user, []).append(query)

    analytics = UserAnalytics()
    for user, items in by_user.items():
        signatures = Counter(area_signature(q.area) for q in items)
        relations: set[str] = set()
        for q in items:
            relations.update(q.area.relations)
        profile = UserProfile(
            user=user,
            query_count=len(items),
            distinct_signatures=len(signatures),
            relations=frozenset(relations),
            max_signature_repeats=max(signatures.values()),
        )
        analytics.profiles[user] = profile
        if (profile.query_count >= bot_min_queries
                and profile.repetition_ratio >= bot_repetition):
            analytics.bots.append(user)
        else:
            analytics.mortals.append(user)
    analytics.bots.sort()
    analytics.mortals.sort()
    return analytics


@dataclass(frozen=True)
class QueryRole:
    """Test-vs-final classification of one user's query."""

    query: UserQuery
    is_final: bool
    burst_size: int  # how many same-signature-family queries it belongs to


def classify_test_queries(queries: Sequence[UserQuery],
                          burst_threshold: int = 3) -> list[QueryRole]:
    """Split a single user's (ordered) queries into test vs. final.

    Heuristic: consecutive runs of queries over the same relation set are
    exploration bursts; within a burst everything except the last
    statement is a *test query*, the last is the candidate *final query*.
    Runs shorter than ``burst_threshold`` are all final (no evidence of
    iteration).
    """
    roles: list[QueryRole] = []
    index = 0
    n = len(queries)
    while index < n:
        start = index
        tables = queries[index].area.table_set
        while index + 1 < n and queries[index + 1].area.table_set == tables:
            index += 1
        burst = queries[start:index + 1]
        if len(burst) >= burst_threshold:
            for position, query in enumerate(burst):
                roles.append(QueryRole(
                    query=query,
                    is_final=(position == len(burst) - 1),
                    burst_size=len(burst),
                ))
        else:
            for query in burst:
                roles.append(QueryRole(query, True, len(burst)))
        index += 1
    return roles


def format_user_report(analytics: UserAnalytics, top: int = 10) -> str:
    """Readable summary of the bot/mortal split."""
    heavy = sorted(analytics.profiles.values(),
                   key=lambda p: p.query_count, reverse=True)[:top]
    lines = [
        f"users analysed : {len(analytics.profiles):,}",
        f"bots           : {len(analytics.bots):,}",
        f"mortals        : {len(analytics.mortals):,}",
        "",
        f"{'user':<14} {'queries':>8} {'distinct':>9} "
        f"{'repetition':>11} class",
    ]
    for profile in heavy:
        kind = "bot" if profile.user in analytics.bots else "mortal"
        lines.append(
            f"{profile.user:<14} {profile.query_count:>8,} "
            f"{profile.distinct_signatures:>9,} "
            f"{profile.repetition_ratio:>10.0%} {kind}")
    return "\n".join(lines)
