"""User-session analysis (related work: Yao et al., "Finding and
analyzing database user sessions").

Splits a timestamped query log into per-user sessions (a gap above the
idle threshold starts a new session) and derives the statistics that the
query-log-mining literature reports: session lengths, durations,
queries-per-session distributions, and per-session relation focus.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable

from ..workload.log import LogEntry

#: default idle gap (seconds) that ends a session — 30 minutes, the
#: standard choice in web/query log analysis.
DEFAULT_IDLE_GAP = 1800.0


@dataclass(frozen=True)
class Session:
    """One user's contiguous burst of activity."""

    user: str
    entries: tuple[LogEntry, ...]

    @property
    def start(self) -> float:
        return self.entries[0].timestamp

    @property
    def end(self) -> float:
        return self.entries[-1].timestamp

    @property
    def duration(self) -> float:
        return self.end - self.start

    @property
    def size(self) -> int:
        return len(self.entries)

    def __len__(self) -> int:
        return len(self.entries)


@dataclass
class SessionStatistics:
    """Aggregate session metrics of a log."""

    sessions: list[Session] = field(default_factory=list)

    @property
    def n_sessions(self) -> int:
        return len(self.sessions)

    @property
    def n_users(self) -> int:
        return len({s.user for s in self.sessions})

    @property
    def mean_session_size(self) -> float:
        if not self.sessions:
            return 0.0
        return sum(s.size for s in self.sessions) / len(self.sessions)

    @property
    def mean_session_duration(self) -> float:
        if not self.sessions:
            return 0.0
        return sum(s.duration for s in self.sessions) / len(self.sessions)

    @property
    def single_query_sessions(self) -> int:
        return sum(1 for s in self.sessions if s.size == 1)

    def size_histogram(self, buckets: tuple[int, ...] = (1, 2, 5, 10,
                                                         50)) -> \
            dict[str, int]:
        """Session-size distribution over half-open buckets."""
        histogram: dict[str, int] = {}
        edges = list(buckets) + [None]
        for low, high in zip(edges, edges[1:]):
            label = f"{low}+" if high is None else f"{low}-{high - 1}"
            histogram[label] = sum(
                1 for s in self.sessions
                if s.size >= low and (high is None or s.size < high))
        return histogram

    def describe(self) -> str:
        lines = [
            f"sessions              : {self.n_sessions:,}",
            f"users                 : {self.n_users:,}",
            f"mean queries/session  : {self.mean_session_size:.2f}",
            f"mean duration (s)     : {self.mean_session_duration:.1f}",
            f"single-query sessions : {self.single_query_sessions:,}",
        ]
        for label, count in self.size_histogram().items():
            lines.append(f"  size {label:<6}: {count:,}")
        return "\n".join(lines)


def split_sessions(entries: Iterable[LogEntry],
                   idle_gap: float = DEFAULT_IDLE_GAP) -> \
        SessionStatistics:
    """Split a log into per-user sessions by idle gaps."""
    by_user: dict[str, list[LogEntry]] = {}
    for entry in entries:
        by_user.setdefault(entry.user, []).append(entry)

    stats = SessionStatistics()
    for user, items in by_user.items():
        items.sort(key=lambda e: e.timestamp)
        current: list[LogEntry] = []
        for entry in items:
            if current and entry.timestamp - current[-1].timestamp \
                    > idle_gap:
                stats.sessions.append(Session(user, tuple(current)))
                current = []
            current.append(entry)
        if current:
            stats.sessions.append(Session(user, tuple(current)))
    stats.sessions.sort(key=lambda s: (s.user, s.start))
    return stats
