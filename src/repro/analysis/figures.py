"""Figure 1 data series: content scatter vs. accessed areas.

Each figure function returns the raw series (content points plus access
rectangles) and an ASCII rendering so the benchmark harness can print the
same picture the paper plots:

* 1(a) — SpecObjAll ``plate`` × ``mjd``: the content diagonal band and a
  small accessed sub-box inside it;
* 1(b) — PhotoObjAll ``ra`` × ``dec``: content everywhere north of the
  survey edge, accessed areas both inside and in the empty far south;
* 1(c) — zooSpec ``ra`` × ``dec``: a northern content stripe and
  non-contiguous accessed areas, the southern one entirely empty.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..algebra.predicates import ColumnRef
from ..engine.database import Database
from .experiments import CaseStudyResult, ClusterRow


@dataclass(frozen=True)
class Rect:
    """An axis-aligned accessed rectangle in the plotted subspace."""

    x_lo: float
    x_hi: float
    y_lo: float
    y_hi: float
    label: str
    empty: bool  # True when the rectangle misses the content entirely


@dataclass
class FigureData:
    """One Figure-1 panel."""

    title: str
    x_label: str
    y_label: str
    points: list[tuple[float, float]] = field(default_factory=list)
    rects: list[Rect] = field(default_factory=list)

    @property
    def empty_rects(self) -> list[Rect]:
        return [r for r in self.rects if r.empty]

    def render_ascii(self, width: int = 72, height: int = 20) -> str:
        """Plot content ('.') and rectangle borders ('#') on a text grid."""
        xs = [p[0] for p in self.points] + \
            [v for r in self.rects for v in (r.x_lo, r.x_hi)]
        ys = [p[1] for p in self.points] + \
            [v for r in self.rects for v in (r.y_lo, r.y_hi)]
        if not xs or not ys:
            return f"{self.title}: (no data)"
        x_lo, x_hi = min(xs), max(xs)
        y_lo, y_hi = min(ys), max(ys)
        x_span = (x_hi - x_lo) or 1.0
        y_span = (y_hi - y_lo) or 1.0
        grid = [[" "] * width for _ in range(height)]

        def cell(x: float, y: float) -> tuple[int, int]:
            col = int((x - x_lo) / x_span * (width - 1))
            row = int((y_hi - y) / y_span * (height - 1))
            return max(0, min(height - 1, row)), max(0, min(width - 1, col))

        for x, y in self.points:
            row, col = cell(x, y)
            grid[row][col] = "."
        for rect in self.rects:
            mark = "#" if not rect.empty else "E"
            for x in _steps(rect.x_lo, rect.x_hi, width):
                for y in (rect.y_lo, rect.y_hi):
                    row, col = cell(x, y)
                    grid[row][col] = mark
            for y in _steps(rect.y_lo, rect.y_hi, height):
                for x in (rect.x_lo, rect.x_hi):
                    row, col = cell(x, y)
                    grid[row][col] = mark
        lines = [f"{self.title}   (y={self.y_label}, x={self.x_label}; "
                 f"'.'=content, '#'=accessed, 'E'=accessed empty area)"]
        lines += ["".join(row) for row in grid]
        return "\n".join(lines)


def _steps(lo: float, hi: float, count: int) -> list[float]:
    if count <= 1 or hi <= lo:
        return [lo]
    step = (hi - lo) / (count - 1)
    return [lo + i * step for i in range(count)]


def _content_points(db: Database, relation: str, x_col: str, y_col: str,
                    limit: int = 600) -> list[tuple[float, float]]:
    table = db.table(relation)
    points = []
    for row in table.rows[:limit]:
        x = table.get_value(row, x_col)
        y = table.get_value(row, y_col)
        if x is not None and y is not None:
            points.append((float(x), float(y)))
    return points


def _rects_from_rows(rows: list[ClusterRow], relation: str, x_col: str,
                     y_col: str) -> list[Rect]:
    x_ref = ColumnRef(relation, x_col)
    y_ref = ColumnRef(relation, y_col)
    rects = []
    for row in rows:
        xb = row.aggregated.bound_for(x_ref)
        yb = row.aggregated.bound_for(y_ref)
        if xb is None or yb is None:
            continue
        rects.append(Rect(
            x_lo=float(xb.interval.lo), x_hi=float(xb.interval.hi),
            y_lo=float(yb.interval.lo), y_hi=float(yb.interval.hi),
            label=f"cluster {row.cluster_id} (n={row.cardinality})",
            empty=row.is_empty_area,
        ))
    return rects


def _rows_on(result: CaseStudyResult, relation: str) -> list[ClusterRow]:
    return [
        row for row in result.rows
        if any(r.lower() == relation.lower()
               for r in row.aggregated.relations)
    ]


def figure1a(result: CaseStudyResult) -> FigureData:
    """SpecObjAll plate × mjd: content band + accessed sub-area."""
    rows = _rows_on(result, "SpecObjAll")
    return FigureData(
        title="Figure 1(a): SpecObjAll.plate vs SpecObjAll.mjd",
        x_label="plate", y_label="mjd",
        points=_content_points(result.db, "SpecObjAll", "plate", "mjd"),
        rects=_rects_from_rows(rows, "SpecObjAll", "plate", "mjd"),
    )


def figure1b(result: CaseStudyResult) -> FigureData:
    """PhotoObjAll ra × dec: content + empty-south access area."""
    rows = _rows_on(result, "PhotoObjAll")
    return FigureData(
        title="Figure 1(b): PhotoObjAll.ra vs PhotoObjAll.dec",
        x_label="ra", y_label="dec",
        points=_content_points(result.db, "PhotoObjAll", "ra", "dec"),
        rects=_rects_from_rows(rows, "PhotoObjAll", "ra", "dec"),
    )


def figure1c(result: CaseStudyResult) -> FigureData:
    """zooSpec ra × dec: non-contiguous empty access areas."""
    rows = _rows_on(result, "zooSpec")
    return FigureData(
        title="Figure 1(c): zooSpec.ra vs zooSpec.dec",
        x_label="ra", y_label="dec",
        points=_content_points(result.db, "zooSpec", "ra", "dec"),
        rects=_rects_from_rows(rows, "zooSpec", "ra", "dec"),
    )
