"""Textual reports: the Table-1 layout and run summaries."""

from __future__ import annotations

import math

from .experiments import CaseStudyResult, ClusterRow


def format_table1(rows: list[ClusterRow], max_rows: int | None = None,
                  show_truth: bool = False,
                  show_density: bool = False) -> str:
    """Render cluster rows in the paper's Table 1 layout.

    ``show_density`` adds the Section 6.3 density-contrast refinement
    column; ``show_truth`` appends the synthetic ground-truth
    diagnostics.
    """
    header = (f"{'Cluster':>7} | {'Cardinality':>11} | {'Area':>6} | "
              f"{'Object':>6} | ")
    if show_density:
        header += f"{'Density':>8} | "
    header += "Access area"
    if show_truth:
        header += "  [family/purity]"
    lines = [header, "-" * len(header)]
    selected = rows if max_rows is None else rows[:max_rows]
    for row in selected:
        line = (f"{row.cluster_id:>7} | {row.cardinality:>11,} | "
                f"{_cov(row.area_coverage):>6} | "
                f"{_cov(row.object_coverage):>6} | ")
        if show_density:
            line += f"{_density(row.density_contrast):>8} | "
        line += _truncate(row.description, 72)
        if show_truth:
            line += f"  [{row.dominant_family}/{row.purity:.2f}]"
        lines.append(line)
    return "\n".join(lines)


def _density(value: float) -> str:
    if math.isinf(value):
        return "inf"
    return f"{value:.1f}x"


def format_summary(result: CaseStudyResult) -> str:
    """One-paragraph run summary (Section 6.1-style headline numbers)."""
    report = result.report
    empty_rows = [row for row in result.rows if row.is_empty_area]
    lines = [
        f"log size            : {report.total:,}",
        f"areas extracted     : {report.extraction_count:,} "
        f"({report.extraction_rate:.2%})",
        f"  parse errors      : {report.parse_errors}",
        f"  unsupported stmts : {report.unsupported_statements}",
        f"  CNF failures      : {report.cnf_failures}",
    ]
    if report.interner is not None:
        stats = report.intern_stats
        lines.append(
            f"unique areas        : {stats.pool_size:,} "
            f"({stats.dedup_ratio:.1f}x dedup, "
            f"{stats.hit_rate:.0%} intern hit rate)")
    lines += [
        f"clustered sample    : {len(result.sample):,}",
        f"clusters found      : {result.n_clusters}",
        f"noise points        : {result.clustering.noise_count:,}",
        f"empty-area clusters : {len(empty_rows)}",
        f"families recovered  : "
        f"{sorted(result.recovered_families())}",
    ]
    return "\n".join(lines)


def _cov(value: float) -> str:
    if value == 0.0:
        return "0.0"
    if value < 0.001:
        return "<0.001"
    return f"{value:.2f}"


def _truncate(text: str, width: int) -> str:
    return text if len(text) <= width else text[:width - 1] + "…"
