"""CSV export of the experiment artifacts.

Downstream users plot the Table-1 and Figure-1 series with their own
tooling; these helpers write them in flat CSV form.
"""

from __future__ import annotations

import csv
import math
from pathlib import Path

from .experiments import CaseStudyResult
from .figures import FigureData


def export_table1_csv(result: CaseStudyResult, path: str | Path) -> None:
    """One row per cluster: the Table 1 columns plus diagnostics."""
    with open(path, "w", newline="", encoding="utf-8") as handle:
        writer = csv.writer(handle)
        writer.writerow([
            "cluster_id", "cardinality", "n_users", "area_coverage",
            "object_coverage", "density_contrast", "relations",
            "access_area", "dominant_family", "purity",
        ])
        for row in result.rows:
            density = ("inf" if math.isinf(row.density_contrast)
                       else f"{row.density_contrast:.4f}")
            writer.writerow([
                row.cluster_id, row.cardinality, row.n_users,
                f"{row.area_coverage:.6f}",
                f"{row.object_coverage:.6f}",
                density,
                ";".join(row.aggregated.relations),
                row.description,
                row.dominant_family,
                f"{row.purity:.4f}",
            ])


def export_figure_csv(figure: FigureData, points_path: str | Path,
                      rects_path: str | Path) -> None:
    """Two files per panel: the content scatter and the access rects."""
    with open(points_path, "w", newline="", encoding="utf-8") as handle:
        writer = csv.writer(handle)
        writer.writerow([figure.x_label, figure.y_label])
        for x, y in figure.points:
            writer.writerow([x, y])
    with open(rects_path, "w", newline="", encoding="utf-8") as handle:
        writer = csv.writer(handle)
        writer.writerow(["x_lo", "x_hi", "y_lo", "y_hi", "label",
                         "empty"])
        for rect in figure.rects:
            writer.writerow([rect.x_lo, rect.x_hi, rect.y_lo, rect.y_hi,
                             rect.label, int(rect.empty)])


def export_extraction_report_csv(result: CaseStudyResult,
                                 path: str | Path) -> None:
    """Per-stage timing summary plus the failure taxonomy."""
    report = result.report
    with open(path, "w", newline="", encoding="utf-8") as handle:
        writer = csv.writer(handle)
        writer.writerow(["metric", "value"])
        writer.writerow(["total", report.total])
        writer.writerow(["extracted", report.extraction_count])
        writer.writerow(["extraction_rate",
                         f"{report.extraction_rate:.6f}"])
        writer.writerow(["parse_errors", report.parse_errors])
        writer.writerow(["lex_errors", report.lex_errors])
        writer.writerow(["unsupported_statements",
                         report.unsupported_statements])
        writer.writerow(["cnf_failures", report.cnf_failures])
        for stage, summary in report.stage_timings.items():
            writer.writerow([f"{stage}_min_s", f"{summary.minimum:.9f}"])
            writer.writerow([f"{stage}_mean_s", f"{summary.mean:.9f}"])
            writer.writerow([f"{stage}_max_s", f"{summary.maximum:.9f}"])
        # Quantile rows are appended after the legacy block so existing
        # readers keyed on the rows above keep working unchanged.
        for stage, summary in report.stage_timings.items():
            writer.writerow([f"{stage}_p50_s", f"{summary.p50:.9f}"])
            writer.writerow([f"{stage}_p95_s", f"{summary.p95:.9f}"])
            writer.writerow([f"{stage}_p99_s", f"{summary.p99:.9f}"])
