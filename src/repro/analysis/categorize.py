"""SDSS-Log-Viewer-style query categorization (related work, Section 3.2).

Zhang's SDSS Log Viewer classifies SkyServer queries by the *kind of sky
area* they touch — Rectangular Sky Area, Circular Sky Area, Single
Point/Object, Other — and by *intent* — Scan, Search, Retrieve.  Both
classifications are implementable on top of this library's AST and
access areas, and make a useful triage layer before clustering.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Optional

from ..algebra.predicates import ColumnConstantPredicate, Op
from ..core.area import AccessArea
from ..sqlparser import ast

#: column names treated as sky coordinates
_SKY_COLUMNS = frozenset({"ra", "dec", "l", "b"})

#: SkyServer UDFs implying a circular (cone) search
_CONE_FUNCTIONS = frozenset({
    "fgetnearbyobjeq", "fgetnearestobjeq", "fgetobjfromrect",
    "fgetnearbyspecobjeq", "fgetnearbyframeeq",
})


class SkyAreaKind(enum.Enum):
    RECTANGULAR = "rectangular-sky-area"
    CIRCULAR = "circular-sky-area"
    SINGLE_POINT = "single-point"
    OTHER = "other"


class IntentKind(enum.Enum):
    SCAN = "scan"          # no selective constraint: sweep the table(s)
    SEARCH = "search"      # constrained, exploring a region
    RETRIEVE = "retrieve"  # pin-point lookups of known objects


@dataclass(frozen=True)
class QueryCategory:
    sky_area: SkyAreaKind
    intent: IntentKind

    def __str__(self) -> str:
        return f"{self.sky_area.value} / {self.intent.value}"


def categorize(area: AccessArea,
               statement: Optional[ast.SelectStatement] = None
               ) -> QueryCategory:
    """Classify one extracted query."""
    return QueryCategory(
        sky_area=_sky_area_kind(area, statement),
        intent=_intent_kind(area),
    )


def _sky_area_kind(area: AccessArea,
                   statement: Optional[ast.SelectStatement]
                   ) -> SkyAreaKind:
    if statement is not None and _calls_cone_function(statement):
        return SkyAreaKind.CIRCULAR

    sky_preds = [
        pred for pred in area.cnf.predicates()
        if isinstance(pred, ColumnConstantPredicate)
        and pred.ref.column.lower() in _SKY_COLUMNS
        and pred.is_numeric
    ]
    if not sky_preds:
        return SkyAreaKind.OTHER

    by_column: dict[str, list[ColumnConstantPredicate]] = {}
    for pred in sky_preds:
        by_column.setdefault(pred.ref.column.lower(), []).append(pred)

    point_columns = sum(
        1 for preds in by_column.values()
        if any(p.op is Op.EQ for p in preds))
    if point_columns == len(by_column) and len(by_column) >= 2:
        return SkyAreaKind.SINGLE_POINT

    bounded_columns = sum(
        1 for preds in by_column.values()
        if _has_two_sided_bounds(preds) or any(p.op is Op.EQ
                                               for p in preds))
    if bounded_columns >= 2:
        return SkyAreaKind.RECTANGULAR
    if by_column:
        # Bounded in one coordinate only: a band, still rectangular in
        # the Log Viewer's taxonomy.
        return SkyAreaKind.RECTANGULAR
    return SkyAreaKind.OTHER


def _has_two_sided_bounds(preds: list[ColumnConstantPredicate]) -> bool:
    lower = any(p.op in (Op.GT, Op.GE) for p in preds)
    upper = any(p.op in (Op.LT, Op.LE) for p in preds)
    return lower and upper


def _calls_cone_function(statement: ast.SelectStatement) -> bool:
    found = False

    def visit_expr(expr: ast.Expr) -> None:
        nonlocal found
        if isinstance(expr, ast.FunctionCall):
            name = expr.name.split(".")[-1].lower()
            if name in _CONE_FUNCTIONS:
                found = True
            for arg in expr.args:
                visit_expr(arg)
        elif isinstance(expr, ast.Arithmetic):
            visit_expr(expr.left)
            visit_expr(expr.right)
        elif isinstance(expr, ast.UnaryMinus):
            visit_expr(expr.operand)

    for item in statement.select_items:
        if not isinstance(item.expr, ast.Star):
            visit_expr(item.expr)
    if statement.where is not None:
        _visit_condition_exprs(statement.where, visit_expr)
    return found


def _visit_condition_exprs(cond: ast.Condition, visit) -> None:
    if isinstance(cond, (ast.AndCondition, ast.OrCondition)):
        for child in cond.children:
            _visit_condition_exprs(child, visit)
    elif isinstance(cond, ast.NotCondition):
        _visit_condition_exprs(cond.child, visit)
    elif isinstance(cond, ast.Comparison):
        visit(cond.left)
        visit(cond.right)
    elif isinstance(cond, ast.Between):
        visit(cond.expr)
    elif isinstance(cond, (ast.InList, ast.Like, ast.IsNull)):
        visit(cond.expr)


def _intent_kind(area: AccessArea) -> IntentKind:
    predicates = list(area.cnf.predicates())
    if not predicates:
        return IntentKind.SCAN
    # Pin-point: equality on an identifier-like column.
    id_lookups = [
        pred for pred in predicates
        if isinstance(pred, ColumnConstantPredicate)
        and pred.op is Op.EQ
        and pred.ref.column.lower().endswith("id")
    ]
    if id_lookups:
        return IntentKind.RETRIEVE
    return IntentKind.SEARCH


def categorize_sql(sql: str, extractor) -> QueryCategory:
    """Extract then categorize (convenience)."""
    result = extractor.extract(sql)
    return categorize(result.area, result.statement)
