"""Query-family templates mirroring Table 1 of the paper.

Each :class:`QueryFamily` generates SQL statements whose access areas fall
into one planted interest area — one per Table 1 cluster (1–24), keeping
the paper's relation, column, range, and cardinality structure.  Families
vary their surface syntax (BETWEEN vs. bound pairs, aliases, TOP, ORDER
BY) and a configurable fraction of "transform-required" phrasings
(HAVING aggregates, NOT-wrapped ranges, EXISTS nesting, outer joins) —
the forms Sections 4.2–4.4 exist for, and the reason the raw-query
baseline of Section 6.5 breaks exactly those clusters.

Cardinalities are the paper's Table 1 numbers; the generator scales them
down (sub-linearly) to the configured log size.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Callable, Sequence

from ..schema import skyserver as sky

SqlGenerator = Callable[[random.Random], str]


@dataclass(frozen=True)
class QueryFamily:
    """One planted user-interest area."""

    family_id: int
    name: str
    relations: tuple[str, ...]
    cardinality: int  # the paper's Table 1 cardinality
    generate: SqlGenerator
    empty_area: bool = False
    #: fraction of statements phrased in a transform-required form
    transformed_fraction: float = 0.0


def _jitter(rng: random.Random, lo: float, hi: float,
            fraction: float = 0.04) -> tuple[float, float]:
    """A sub-window of [lo, hi] — queries in a family overlap, not match."""
    span = hi - lo
    a = rng.uniform(lo, lo + fraction * span)
    b = rng.uniform(hi - fraction * span, hi)
    return a, b


def _int_jitter(rng: random.Random, lo: int, hi: int,
                fraction: float = 0.04) -> tuple[int, int]:
    a, b = _jitter(rng, lo, hi, fraction)
    return int(a), int(b)


# ---------------------------------------------------------------------------
# Families 1-6: hot id ranges (point lookups and range scans)
# ---------------------------------------------------------------------------

#: Table 1 Cluster 1 hot range on Photoz.objid.
C1_LO, C1_HI = 1_237_657_855_534_432_934, 1_237_666_210_342_830_434
C2_LO, C2_HI = 1_115_887_524_498_139_136, 2_183_177_975_464_224_768
C3_LO, C3_HI = 1_345_591_721_622_267_904, 2_007_633_797_213_874_176
C4_LO, C4_HI = 1_416_192_325_597_030_400, 2_183_213_984_470_034_432
C6_LO, C6_HI = 1_228_357_946_564_438_016, 2_069_493_422_263_134_208
C13_THRESHOLD = 1_237_676_243_900_255_188
C19_LO, C19_HI = 3_519_644_828_126_257_152, 5_788_299_621_113_984_000
C21_LO, C21_HI = 4_037_480_726_273_651_712, 5_788_299_621_113_984_000


def _gen_photoz_objid(rng: random.Random) -> str:
    c = rng.randint(C1_LO, C1_HI)
    style = rng.random()
    if style < 0.75:
        return f"SELECT z FROM Photoz WHERE objid = {c}"
    if style < 0.9:
        return f"SELECT p.z, p.zerr FROM Photoz p WHERE p.objid = {c}"
    return (f"SELECT TOP 10 z FROM Photoz WHERE objid = {c} "
            f"ORDER BY z DESC")


def _id_range_family(table: str, column: str, lo: int, hi: int,
                     transformed: float = 0.0) -> SqlGenerator:
    def generate(rng: random.Random) -> str:
        a, b = _int_jitter(rng, lo, hi)
        roll = rng.random()
        if roll < transformed:
            variant = rng.random()
            if variant < 0.5:
                # Lemma 3 shape: lower-bounded WHERE + SUM HAVING, whose
                # exact access area is just the WHERE range.
                k = rng.randint(1, 1_000_000)
                return (f"SELECT {column}, COUNT(*) FROM {table} "
                        f"WHERE {column} >= {a} AND {column} <= {b} "
                        f"GROUP BY {column} HAVING COUNT(*) > {k}")
            # NOT-wrapped complement phrasing of the same range.
            return (f"SELECT * FROM {table} "
                    f"WHERE NOT ({column} < {a} OR {column} > {b})")
        if roll < transformed + 0.5:
            return (f"SELECT * FROM {table} "
                    f"WHERE {column} BETWEEN {a} AND {b}")
        return (f"SELECT * FROM {table} "
                f"WHERE {column} >= {a} AND {column} <= {b}")

    return generate


# ---------------------------------------------------------------------------
# Families 5, 7, 8, 11, 12, 14: sky windows
# ---------------------------------------------------------------------------

def _gen_photoobj_radec(rng: random.Random) -> str:
    ra = rng.uniform(195.0, 210.0)
    dec = rng.uniform(7.0, 10.0)
    roll = rng.random()
    if roll < 0.2:
        # Transform-required phrasing: correlated EXISTS over SpecObjAll.
        return (f"SELECT * FROM PhotoObjAll "
                f"WHERE ra <= {ra:.3f} AND dec <= {dec:.3f} "
                f"AND EXISTS (SELECT * FROM SpecObjAll "
                f"WHERE SpecObjAll.bestobjid = PhotoObjAll.objid)")
    if roll < 0.6:
        return (f"SELECT ra, dec FROM PhotoObjAll "
                f"WHERE ra <= {ra:.3f} AND dec <= {dec:.3f}")
    return (f"SELECT p.objid, p.ra, p.dec FROM PhotoObjAll p "
            f"WHERE p.ra <= {ra:.3f} AND p.dec <= {dec:.3f}")


def _ra_window_family(table: str, lo: float, hi: float,
                      transformed: float = 0.0) -> SqlGenerator:
    def generate(rng: random.Random) -> str:
        a, b = _jitter(rng, lo, hi)
        roll = rng.random()
        if roll < transformed:
            # Lemma 2/3-style aggregate phrasing over the window.
            c = rng.uniform(1, 500)
            return (f"SELECT ra, AVG(dec) FROM {table} "
                    f"WHERE ra >= {a:.2f} AND ra <= {b:.2f} "
                    f"GROUP BY ra HAVING AVG(dec) < {c:.1f}")
        if roll < transformed + 0.5:
            return (f"SELECT * FROM {table} "
                    f"WHERE ra BETWEEN {a:.2f} AND {b:.2f}")
        return (f"SELECT ra, dec FROM {table} "
                f"WHERE ra >= {a:.2f} AND ra <= {b:.2f}")

    return generate


def _gen_zoospec_north(rng: random.Random) -> str:
    ra_lo, ra_hi = _jitter(rng, 2.0, 120.0)
    dec_lo, dec_hi = _jitter(rng, 30.0, 70.0)
    return (f"SELECT * FROM zooSpec "
            f"WHERE ra BETWEEN {ra_lo:.2f} AND {ra_hi:.2f} "
            f"AND dec BETWEEN {dec_lo:.2f} AND {dec_hi:.2f}")


# ---------------------------------------------------------------------------
# Family 9: star spectra in the early survey (plate/mjd window + class)
# ---------------------------------------------------------------------------

def _gen_star_plate_mjd(rng: random.Random) -> str:
    plate_lo, plate_hi = _int_jitter(rng, 296, 3200)
    mjd_lo, mjd_hi = _int_jitter(rng, 51_578, 52_178)
    roll = rng.random()
    if roll < 0.3:
        # Transform-required phrasing: aggregate per plate (Section 4.3).
        k = rng.randint(1, 100_000)
        return (f"SELECT plate, COUNT(*) FROM SpecObjAll "
                f"WHERE class = 'star' AND mjd >= {mjd_lo} "
                f"AND mjd <= {mjd_hi} AND plate >= {plate_lo} "
                f"AND plate <= {plate_hi} "
                f"GROUP BY plate HAVING COUNT(*) > {k}")
    return (f"SELECT * FROM SpecObjAll WHERE class = 'star' "
            f"AND mjd BETWEEN {mjd_lo} AND {mjd_hi} "
            f"AND plate BETWEEN {plate_lo} AND {plate_hi}")


# ---------------------------------------------------------------------------
# Family 10: metadata lookups on DBObjects (categorical)
# ---------------------------------------------------------------------------

def _gen_dbobjects(rng: random.Random) -> str:
    second = rng.choice(["V", "U"])
    if rng.random() < 0.5:
        return (f"SELECT name FROM DBObjects WHERE access = 'U' "
                f"AND (type = 'V' OR type = '{second}')")
    return (f"SELECT * FROM DBObjects "
            f"WHERE access = 'U' AND type IN ('V', '{second}')")


# ---------------------------------------------------------------------------
# Family 13: recent objects (one-sided objid threshold)
# ---------------------------------------------------------------------------

def _gen_atlas_recent(rng: random.Random) -> str:
    c = C13_THRESHOLD + rng.randint(0, 2_000_000_000_000)
    return f"SELECT * FROM AtlasOutline WHERE objid > {c}"


# ---------------------------------------------------------------------------
# Families 15, 23, 24: photometric redshift windows
# ---------------------------------------------------------------------------

def _z_window_family(lo: float, hi: float) -> SqlGenerator:
    def generate(rng: random.Random) -> str:
        a, b = _jitter(rng, lo, hi, fraction=0.1)
        if rng.random() < 0.5:
            return (f"SELECT objid, z FROM Photoz "
                    f"WHERE z >= {a:.3f} AND z <= {b:.3f}")
        return f"SELECT * FROM Photoz WHERE z BETWEEN {a:.3f} AND {b:.3f}"

    return generate


# ---------------------------------------------------------------------------
# Families 16, 17: multi-relation spectro science queries
# ---------------------------------------------------------------------------

def _gen_bpt_join(rng: random.Random) -> str:
    lo, hi = _int_jitter(rng, 0, 3, fraction=0.0)
    if rng.random() < 0.5:
        return (f"SELECT * FROM galSpecExtra JOIN galSpecIndx "
                f"ON galSpecExtra.specobjid = galSpecIndx.specObjID "
                f"WHERE galSpecExtra.bptclass >= {lo} "
                f"AND galSpecExtra.bptclass <= {hi}")
    return (f"SELECT e.specobjid FROM galSpecExtra e, galSpecIndx i "
            f"WHERE e.bptclass BETWEEN {lo} AND {hi} "
            f"AND e.specobjid = i.specObjID")


def _gen_stellar_params(rng: random.Random) -> str:
    side_lo, side_hi = _jitter(rng, 0.0, 50.0, fraction=0.1)
    feh_lo, feh_hi = _jitter(rng, -0.3, 0.5, fraction=0.1)
    logg_lo, logg_hi = _jitter(rng, 2.0, 3.0, fraction=0.1)
    return (f"SELECT l.specobjid FROM sppLines l JOIN sppParams p "
            f"ON l.specobjid = p.specobjid "
            f"WHERE l.gwholemask = 0 "
            f"AND l.gwholeside BETWEEN {side_lo:.1f} AND {side_hi:.1f} "
            f"AND p.fehadop BETWEEN {feh_lo:.2f} AND {feh_hi:.2f} "
            f"AND p.loggadop BETWEEN {logg_lo:.2f} AND {logg_hi:.2f}")


# ---------------------------------------------------------------------------
# Families 18-24: empty-area queries
# ---------------------------------------------------------------------------

def _gen_photoobj_south(rng: random.Random) -> str:
    ra_lo, ra_hi = _jitter(rng, 10.0, 120.0)
    dec_lo, dec_hi = _jitter(rng, -90.0, -50.0)
    roll = rng.random()
    if roll < 0.25:
        # Transform-required: NOT-wrapped southern window.
        return (f"SELECT * FROM PhotoObjAll "
                f"WHERE ra >= {ra_lo:.2f} AND ra <= {ra_hi:.2f} "
                f"AND NOT (dec < {dec_lo:.2f} OR dec > {dec_hi:.2f})")
    return (f"SELECT objid FROM PhotoObjAll "
            f"WHERE ra BETWEEN {ra_lo:.2f} AND {ra_hi:.2f} "
            f"AND dec BETWEEN {dec_lo:.2f} AND {dec_hi:.2f}")


def _gen_zoospec_south(rng: random.Random) -> str:
    ra_lo, ra_hi = _jitter(rng, 6.0, 115.0)
    # The paper's curiosity: users query dec = -100, below the physical
    # minimum of -90 (Section 6.3, "hints on how the database could be
    # improved").
    dec_lo = -100.0 if rng.random() < 0.4 else rng.uniform(-100.0, -95.0)
    dec_hi = rng.uniform(-20.0, -15.0)
    if rng.random() < 0.25:
        # Transform-required: complement phrasing of the dec window.
        return (f"SELECT * FROM zooSpec "
                f"WHERE ra BETWEEN {ra_lo:.2f} AND {ra_hi:.2f} "
                f"AND NOT (dec < {dec_lo:.2f} OR dec > {dec_hi:.2f})")
    return (f"SELECT * FROM zooSpec "
            f"WHERE ra BETWEEN {ra_lo:.2f} AND {ra_hi:.2f} "
            f"AND dec BETWEEN {dec_lo:.2f} AND {dec_hi:.2f}")


# ---------------------------------------------------------------------------
# The Table-1 family registry
# ---------------------------------------------------------------------------

def table1_families() -> list[QueryFamily]:
    """All 24 planted families, ids matching Table 1 cluster numbers."""
    return [
        QueryFamily(1, "photoz-objid-lookups", ("Photoz",), 179_072,
                    _gen_photoz_objid),
        QueryFamily(2, "specobj-id-ranges", ("SpecObjAll",), 121_311,
                    _id_range_family("SpecObjAll", "specobjid",
                                     C2_LO, C2_HI, transformed=0.35),
                    transformed_fraction=0.35),
        QueryFamily(3, "galspecline-id-ranges", ("galSpecLine",), 92_177,
                    _id_range_family("galSpecLine", "specobjid",
                                     C3_LO, C3_HI)),
        QueryFamily(4, "galspecinfo-id-ranges", ("galSpecInfo",), 90_047,
                    _id_range_family("galSpecInfo", "specobjid",
                                     C4_LO, C4_HI)),
        QueryFamily(5, "photoobj-equatorial-window", ("PhotoObjAll",),
                    90_015, _gen_photoobj_radec,
                    transformed_fraction=0.2),
        QueryFamily(6, "spplines-id-ranges", ("sppLines",), 82_196,
                    _id_range_family("sppLines", "specobjid",
                                     C6_LO, C6_HI)),
        QueryFamily(7, "specobj-ra-window", ("SpecObjAll",), 23_021,
                    _ra_window_family("SpecObjAll", 54.0, 115.0)),
        QueryFamily(8, "specphoto-ra-window", ("SpecPhotoAll",), 23_021,
                    _ra_window_family("SpecPhotoAll", 60.0, 124.0,
                                      transformed=0.3),
                    transformed_fraction=0.3),
        QueryFamily(9, "early-star-spectra", ("SpecObjAll",), 18_904,
                    _gen_star_plate_mjd, transformed_fraction=0.3),
        QueryFamily(10, "dbobjects-metadata", ("DBObjects",), 10_141,
                    _gen_dbobjects),
        QueryFamily(11, "emissionlines-ra-window", ("emissionLinesPort",),
                    4_006, _ra_window_family("emissionLinesPort",
                                             55.0, 141.0, transformed=0.3),
                    transformed_fraction=0.3),
        QueryFamily(12, "stellarmass-ra-window", ("stellarMassPCAWisc",),
                    3_785, _ra_window_family("stellarMassPCAWisc",
                                             62.0, 138.0, transformed=0.3),
                    transformed_fraction=0.3),
        QueryFamily(13, "atlas-recent-objects", ("AtlasOutline",), 1_622,
                    _gen_atlas_recent),
        QueryFamily(14, "zoospec-northern-window", ("zooSpec",), 1_371,
                    _gen_zoospec_north),
        QueryFamily(15, "photoz-low-z", ("Photoz",), 1_141,
                    _z_window_family(0.0, 0.1)),
        QueryFamily(16, "bpt-class-join", ("galSpecExtra", "galSpecIndx"),
                    1_102, _gen_bpt_join),
        QueryFamily(17, "stellar-parameter-join",
                    ("sppLines", "sppParams"), 1_035, _gen_stellar_params),
        QueryFamily(18, "photoobj-southern-empty", ("PhotoObjAll",),
                    48_470, _gen_photoobj_south, empty_area=True,
                    transformed_fraction=0.25),
        QueryFamily(19, "galspecline-future-ids", ("galSpecLine",),
                    41_599, _id_range_family("galSpecLine", "specobjid",
                                             C19_LO, C19_HI,
                                             transformed=0.3),
                    empty_area=True, transformed_fraction=0.3),
        QueryFamily(20, "galspecinfo-future-ids", ("galSpecInfo",),
                    18_444, _id_range_family("galSpecInfo", "specobjid",
                                             C19_LO, C19_HI,
                                             transformed=0.3),
                    empty_area=True, transformed_fraction=0.3),
        QueryFamily(21, "spplines-future-ids", ("sppLines",), 18_043,
                    _id_range_family("sppLines", "specobjid",
                                     C21_LO, C21_HI), empty_area=True),
        QueryFamily(22, "zoospec-southern-empty", ("zooSpec",), 1_358,
                    _gen_zoospec_south, empty_area=True,
                    transformed_fraction=0.25),
        QueryFamily(23, "photoz-negative-z", ("Photoz",), 422,
                    _z_window_family(-0.98, -0.1), empty_area=True),
        QueryFamily(24, "photoz-high-z", ("Photoz",), 217,
                    _z_window_family(3.0, 6.5), empty_area=True),
    ]


# ---------------------------------------------------------------------------
# Background noise and pathological statements
# ---------------------------------------------------------------------------

_NOISE_TABLES: Sequence[tuple[str, str, float, float]] = (
    ("PhotoObjAll", "r", 10.0, 25.0),
    ("PhotoObjAll", "ra", 0.0, 360.0),
    ("SpecObjAll", "z", 0.0, 7.0),
    ("SpecObjAll", "fiberid", 1, 1000),
    ("sppParams", "teffadop", 3000.0, 10_000.0),
    ("galSpecLine", "h_alpha_flux", -100.0, 500.0),
    ("zooSpec", "p_el", 0.0, 1.0),
    ("stellarMassPCAWisc", "mstellar_median", 7.0, 13.0),
)


def generate_noise_query(rng: random.Random) -> str:
    """A diffuse query: values spread evenly, so no cluster forms.

    This is the population the domain experts alluded to — attributes
    "queried more frequently, but the values ... are spread more evenly
    over the range, i.e., there is no cluster" (Section 6.3).
    """
    table, column, lo, hi = rng.choice(_NOISE_TABLES)
    center = rng.uniform(lo, hi)
    width = (hi - lo) * rng.uniform(0.001, 0.05)
    a, b = center - width / 2, center + width / 2
    if rng.random() < 0.3:
        return f"SELECT * FROM {table} WHERE {column} > {a:.4f}"
    return (f"SELECT * FROM {table} "
            f"WHERE {column} BETWEEN {a:.4f} AND {b:.4f}")


def generate_error_query(rng: random.Random) -> str:
    """A parseable query that ERRORS when executed on the server.

    These are the 1.2M statements the paper can still extract areas from
    while the re-query baseline cannot (Section 6.6): the MySQL LIMIT
    dialect and result sets beyond the TOP cap.
    """
    if rng.random() < 0.6:
        n = rng.choice([10, 100, 1000])
        return f"SELECT objid FROM PhotoObjAll LIMIT {n}"
    return "SELECT * FROM PhotoObjAll, SpecObjAll"


def generate_malformed_statement(rng: random.Random) -> str:
    """A statement outside the grammar (the 0.6% of Section 6.1)."""
    roll = rng.random()
    if roll < 0.35:
        return "CREATE TABLE #tmp (objid bigint, ra float)"
    if roll < 0.6:
        return "DECLARE @ra float SET @ra = 180.0"
    if roll < 0.8:
        return "SELECT FROM PhotoObjAll WHERE ra <"
    return "SELCT * FORM PhotoObjAll"
