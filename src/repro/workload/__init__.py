"""Synthetic SkyServer substrate: content, query templates, log generator.

Substitutes for the non-redistributable SkyServer DR9 SQL log and the
live CasJobs database (see DESIGN.md, "Gates and substitutions").
"""

from .content import ContentConfig, build_database
from .generator import (GeneratedWorkload, WorkloadConfig,
                        family_allocation, generate_workload)
from .log import LogEntry, QueryLog
from .templates import (QueryFamily, generate_error_query,
                        generate_malformed_statement, generate_noise_query,
                        table1_families)

__all__ = [
    "ContentConfig", "build_database",
    "GeneratedWorkload", "WorkloadConfig", "family_allocation",
    "generate_workload",
    "LogEntry", "QueryLog",
    "QueryFamily", "generate_error_query", "generate_malformed_statement",
    "generate_noise_query", "table1_families",
]
