"""Synthetic SkyServer query-log generator.

Scales the 24 Table-1 families down to a configurable log size (with a
sub-linear exponent so small clusters survive the downscaling), mixes in
diffuse noise queries, executable-but-erroring queries, and malformed
statements, assigns users (mostly one query per user, as the paper
observes per cluster), and shuffles deterministically.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field

from .log import LogEntry, QueryLog
from .templates import (QueryFamily, generate_error_query,
                        generate_malformed_statement, generate_noise_query,
                        table1_families)


@dataclass(frozen=True)
class WorkloadConfig:
    """Knobs of the synthetic log."""

    n_queries: int = 20_000
    seed: int = 13
    #: families are sized ∝ cardinality ** scale_exponent, so a 0.5
    #: exponent compresses the 800:1 spread of Table 1 to about 29:1 and
    #: keeps every family clusterable at laptop scale.
    scale_exponent: float = 0.5
    noise_fraction: float = 0.18
    error_fraction: float = 0.04
    malformed_fraction: float = 0.006
    #: minimum statements per family (must exceed DBSCAN's min_pts)
    min_family_size: int = 12
    #: fraction of a family's queries issued by repeat users
    repeat_user_fraction: float = 0.05
    #: number of bot users hammering one fixed statement each
    #: (the Singh-et-al. traffic pattern; 0 disables)
    n_bots: int = 0
    #: statements each bot issues
    bot_queries: int = 40
    #: families confined to the final third of the log timeline
    #: (emerging interests, for drift analysis)
    emerging_families: tuple[int, ...] = ()
    #: families confined to the first third (fading interests)
    fading_families: tuple[int, ...] = ()


@dataclass
class GeneratedWorkload:
    """The log plus its ground-truth composition."""

    log: QueryLog
    family_sizes: dict[int, int] = field(default_factory=dict)
    families: dict[int, QueryFamily] = field(default_factory=dict)

    @property
    def n_queries(self) -> int:
        return len(self.log)


def _stamp(entries: list[LogEntry], rng: random.Random) -> list[LogEntry]:
    stamped: list[LogEntry] = []
    clock = 0.0
    for entry in entries:
        clock += rng.expovariate(1.0)
        stamped.append(LogEntry(entry.sql, entry.user, entry.family_id,
                                timestamp=clock))
    return stamped


def family_allocation(config: WorkloadConfig,
                      families: list[QueryFamily]) -> dict[int, int]:
    """How many statements each family contributes to the log."""
    overhead = (config.noise_fraction + config.error_fraction
                + config.malformed_fraction)
    family_budget = max(0, round(config.n_queries * (1.0 - overhead)))
    weights = {f.family_id: f.cardinality ** config.scale_exponent
               for f in families}
    total_weight = sum(weights.values())
    allocation = {
        fid: max(config.min_family_size,
                 round(family_budget * weight / total_weight))
        for fid, weight in weights.items()
    }
    return allocation


def generate_workload(config: WorkloadConfig | None = None,
                      families: list[QueryFamily] | None = None
                      ) -> GeneratedWorkload:
    """Generate the full synthetic log."""
    config = config or WorkloadConfig()
    families = families if families is not None else table1_families()
    rng = random.Random(config.seed)
    allocation = family_allocation(config, families)

    entries: list[LogEntry] = []
    user_counter = 0

    def next_user() -> str:
        nonlocal user_counter
        user_counter += 1
        return f"user{user_counter:06d}"

    for family in families:
        size = allocation[family.family_id]
        repeat_users = [next_user() for _ in range(
            max(1, int(size * config.repeat_user_fraction)))]
        for _ in range(size):
            if rng.random() < config.repeat_user_fraction:
                user = rng.choice(repeat_users)
            else:
                user = next_user()
            entries.append(LogEntry(
                sql=family.generate(rng),
                user=user,
                family_id=family.family_id,
            ))

    for _ in range(round(config.n_queries * config.noise_fraction)):
        entries.append(LogEntry(generate_noise_query(rng), next_user(),
                                LogEntry.NOISE))
    for _ in range(round(config.n_queries * config.error_fraction)):
        entries.append(LogEntry(generate_error_query(rng), next_user(),
                                LogEntry.ERROR))
    for _ in range(round(config.n_queries * config.malformed_fraction)):
        entries.append(LogEntry(generate_malformed_statement(rng),
                                next_user(), LogEntry.MALFORMED))

    for bot_index in range(config.n_bots):
        bot_user = f"bot{bot_index:03d}"
        template_family = families[bot_index % len(families)]
        statement = template_family.generate(rng)
        for _ in range(config.bot_queries):
            entries.append(LogEntry(statement, bot_user,
                                    template_family.family_id))

    # Each entry gets a timeline phase in [0, 1]; drifting families are
    # confined to their era, everyone else is uniform.  Sorting by phase
    # then stamping with Poisson arrivals yields a realistic timeline.
    def phase_of(entry: LogEntry) -> float:
        if entry.family_id in config.emerging_families:
            return rng.uniform(2 / 3, 1.0)
        if entry.family_id in config.fading_families:
            return rng.uniform(0.0, 1 / 3)
        return rng.random()

    entries.sort(key=phase_of)
    entries = _stamp(entries, rng)
    log = QueryLog(entries)
    return GeneratedWorkload(
        log=log,
        family_sizes={f.family_id: allocation[f.family_id]
                      for f in families},
        families={f.family_id: f for f in families},
    )
