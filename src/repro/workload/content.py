"""Synthetic SkyServer content generator.

Fills the DR9-like schema with content whose *shape* matches the real
survey as the paper depicts it:

* ``SpecObjAll`` plate/mjd form a diagonal band inside the
  ``[266, 5141] × [51578, 55752]`` box (Figure 1(a));
* the photometric footprint covers the full RA circle but no far-southern
  declinations (Figure 1(b) — queries below dec −30 hit empty space);
* ``zooSpec`` is confined to the northern Legacy stripe (Figure 1(c));
* id columns occupy the narrow DR9 band of the BIGINT axis;
* ``Photoz.z`` stays in ``[0, 1]`` so negative and very high redshift
  windows are empty (Clusters 23/24).

All generation is deterministic given the seed.
"""

from __future__ import annotations

import random
from dataclasses import dataclass

from ..engine.database import Database
from ..schema import skyserver
from ..schema.database import Schema
from ..schema.skyserver import skyserver_schema


@dataclass(frozen=True)
class ContentConfig:
    """Row counts of the synthetic database."""

    photo_rows: int = 3000
    spec_rows: int = 2500
    satellite_rows: int = 1500  # per spectro satellite table
    seed: int = 7


def build_database(config: ContentConfig | None = None,
                   schema: Schema | None = None) -> Database:
    """Create and populate the synthetic SkyServer database."""
    config = config or ContentConfig()
    schema = schema or skyserver_schema()
    db = Database(schema, seed=config.seed)
    rng = random.Random(config.seed)

    photo = _photo_rows(rng, config.photo_rows)
    db.insert("PhotoObjAll", photo)

    spec = _spec_rows(rng, config.spec_rows, photo)
    db.insert("SpecObjAll", spec)

    db.insert("SpecPhotoAll", [
        {
            "objid": s["bestobjid"], "specobjid": s["specobjid"],
            "ra": s["ra"], "dec": s["dec"], "z": s["z"],
            "class": s["class"],
        }
        for s in rng.sample(spec, min(len(spec), config.satellite_rows))
    ])

    db.insert("Photoz", [
        {
            "objid": p["objid"],
            "z": min(skyserver.PHOTOZ_HI,
                     max(skyserver.PHOTOZ_LO, rng.lognormvariate(-1.5, 0.7))),
            "zerr": rng.uniform(0.01, 0.2),
            "photoerrorclass": rng.randint(-5, 5),
        }
        for p in rng.sample(photo, min(len(photo), config.satellite_rows))
    ])

    galaxies = [s for s in spec if s["class"] == "galaxy"] or spec
    stars = [s for s in spec if s["class"] == "star"] or spec

    def spec_sample(pool: list[dict]) -> list[dict]:
        k = min(len(pool), config.satellite_rows)
        return rng.sample(pool, k)

    db.insert("galSpecLine", [
        {
            "specobjid": s["specobjid"],
            "h_alpha_flux": rng.gauss(120.0, 80.0),
            "h_beta_flux": rng.gauss(40.0, 30.0),
            "oiii_5007_flux": rng.gauss(60.0, 50.0),
        }
        for s in spec_sample(galaxies)
    ])
    db.insert("galSpecInfo", [
        {
            "specobjid": s["specobjid"], "ra": s["ra"], "dec": s["dec"],
            "targettype": rng.choices(
                ["galaxy", "qa", "sky"], weights=[90, 5, 5])[0],
        }
        for s in spec_sample(galaxies)
    ])
    db.insert("galSpecExtra", [
        {
            "specobjid": s["specobjid"],
            "bptclass": rng.choices(
                [-1, 0, 1, 2, 3, 4], weights=[25, 10, 35, 10, 12, 8])[0],
            "lgm_tot_p50": rng.uniform(7.0, 12.5),
        }
        for s in spec_sample(galaxies)
    ])
    db.insert("galSpecIndx", [
        {"specObjID": s["specobjid"], "lick_hd_a": rng.gauss(2.0, 3.0)}
        for s in spec_sample(galaxies)
    ])
    db.insert("sppLines", [
        {
            "specobjid": s["specobjid"],
            "gwholemask": rng.choices(
                [0, 1, 2, 4, 8], weights=[70, 10, 10, 5, 5])[0],
            "gwholeside": abs(rng.gauss(30.0, 40.0)),
            "caiikside": abs(rng.gauss(25.0, 30.0)),
        }
        for s in spec_sample(stars)
    ])
    db.insert("sppParams", [
        {
            "specobjid": s["specobjid"],
            "fehadop": min(0.6, max(-4.0, rng.gauss(-0.8, 0.7))),
            "loggadop": min(5.0, max(0.2, rng.gauss(3.2, 0.9))),
            "teffadop": min(10_000.0, max(3000.0, rng.gauss(5500.0, 900.0))),
        }
        for s in spec_sample(stars)
    ])
    db.insert("zooSpec", [
        {
            "specobjid": s["specobjid"], "objid": s["bestobjid"],
            "ra": s["ra"],
            "dec": rng.uniform(skyserver.ZOO_DEC_LO, skyserver.ZOO_DEC_HI),
            "p_el": rng.random(), "p_cs": rng.random(),
        }
        for s in spec_sample(galaxies)
    ])
    db.insert("emissionLinesPort", [
        {
            "specObjID": s["specobjid"], "ra": s["ra"], "dec": s["dec"],
            "bpt": rng.choices(
                ["Star Forming", "Seyfert", "LINER", "Composite", "BLANK"],
                weights=[50, 10, 10, 15, 15])[0],
        }
        for s in spec_sample(galaxies)
    ])
    db.insert("stellarMassPCAWisc", [
        {
            "specObjID": s["specobjid"], "ra": s["ra"], "dec": s["dec"],
            "mstellar_median": rng.uniform(7.5, 12.0),
        }
        for s in spec_sample(galaxies)
    ])
    db.insert("AtlasOutline", [
        {"objid": p["objid"], "span": rng.randint(0, 3000)}
        for p in rng.sample(photo, min(len(photo), config.satellite_rows))
    ])
    db.insert("DBObjects", _dbobjects_rows(rng))
    return db


def _photo_rows(rng: random.Random, count: int) -> list[dict]:
    """Photometric objects: full RA circle, northern-weighted dec."""
    rows = []
    objid_step = (skyserver.OBJID_HI - skyserver.OBJID_LO) // max(count, 1)
    for index in range(count):
        dec_band = rng.random()
        if dec_band < 0.75:
            dec = rng.uniform(0.0, 60.0)
        elif dec_band < 0.92:
            dec = rng.uniform(skyserver.PHOTO_DEC_LO, 0.0)
        else:
            dec = rng.uniform(60.0, skyserver.PHOTO_DEC_HI)
        rows.append({
            "objid": skyserver.OBJID_LO + index * objid_step
            + rng.randint(0, max(objid_step - 1, 1)),
            "ra": rng.uniform(0.0, 360.0),
            "dec": dec,
            "type": rng.choices([3, 6], weights=[60, 40])[0],
            "mode": rng.choices([1, 2], weights=[85, 15])[0],
            "u": rng.gauss(20.5, 1.5),
            "g": rng.gauss(19.5, 1.5),
            "r": rng.gauss(18.8, 1.5),
            "i": rng.gauss(18.4, 1.5),
            "z": rng.gauss(18.1, 1.5),
        })
    # Pin the exact content MBR corners so CONTENT_BOUNDS is tight.
    rows[0].update(objid=skyserver.OBJID_LO, ra=0.0,
                   dec=skyserver.PHOTO_DEC_LO)
    rows[-1].update(objid=skyserver.OBJID_HI, ra=360.0,
                    dec=skyserver.PHOTO_DEC_HI)
    return rows


def _spec_rows(rng: random.Random, count: int,
               photo: list[dict]) -> list[dict]:
    """Spectra: plate/mjd diagonal band, id band, class mixture."""
    rows = []
    plate_span = skyserver.PLATE_HI - skyserver.PLATE_LO
    mjd_span = skyserver.MJD_HI - skyserver.MJD_LO
    id_span = skyserver.SPECOBJID_HI - skyserver.SPECOBJID_LO
    for _ in range(count):
        plate = rng.randint(skyserver.PLATE_LO, skyserver.PLATE_HI)
        progress = (plate - skyserver.PLATE_LO) / plate_span
        mjd = int(skyserver.MJD_LO + progress * mjd_span
                  + rng.gauss(0, mjd_span * 0.03))
        mjd = min(skyserver.MJD_HI, max(skyserver.MJD_LO, mjd))
        specobjid = int(skyserver.SPECOBJID_LO + progress * id_span
                        + rng.randint(0, id_span // 1000))
        specobjid = min(skyserver.SPECOBJID_HI, specobjid)
        photo_row = rng.choice(photo)
        rows.append({
            "specobjid": specobjid,
            "bestobjid": photo_row["objid"],
            "plate": plate,
            "mjd": mjd,
            "fiberid": rng.randint(1, 1000),
            "ra": photo_row["ra"],
            "dec": photo_row["dec"],
            "z": min(skyserver.SPECZ_HI,
                     max(skyserver.SPECZ_LO, rng.lognormvariate(-1.8, 1.0))),
            "zerr": rng.uniform(1e-5, 1e-3),
            "class": rng.choices(["galaxy", "star", "qso"],
                                 weights=[68, 22, 10])[0],
        })
    rows[0].update(plate=skyserver.PLATE_LO, mjd=skyserver.MJD_LO,
                   specobjid=skyserver.SPECOBJID_LO)
    rows[-1].update(plate=skyserver.PLATE_HI, mjd=skyserver.MJD_HI,
                    specobjid=skyserver.SPECOBJID_HI)
    return rows


def _dbobjects_rows(rng: random.Random) -> list[dict]:
    names = [
        "PhotoObjAll", "SpecObjAll", "Photoz", "galSpecLine", "galSpecInfo",
        "fGetNearbyObjEq", "fPhotoTypeN", "spSpecZ", "PhotoTag", "Frame",
        "Field", "Mask", "Region", "SiteConstants", "RunQA",
    ]
    rows = []
    for name in names:
        rows.append({
            "name": name,
            "type": rng.choices(["U", "V", "P", "F", "S"],
                                weights=[40, 25, 10, 20, 5])[0],
            "access": rng.choices(["U", "A"], weights=[80, 20])[0],
        })
    return rows
