"""Query-log container and serialization.

A :class:`QueryLog` is the reproduction's stand-in for the SkyServer SQL
log files: an ordered list of statements with the metadata the study uses
(user identifier) plus ground-truth labels (family id) that exist only in
the synthetic setting and are used for evaluation, never by the method
itself.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import Iterator


@dataclass(frozen=True)
class LogEntry:
    """One logged statement."""

    sql: str
    user: str
    #: ground-truth family id (Table 1 cluster number); 0 = noise,
    #: -1 = error query, -2 = malformed statement
    family_id: int = 0
    #: seconds since the start of the log (0.0 when unknown)
    timestamp: float = 0.0

    NOISE = 0
    ERROR = -1
    MALFORMED = -2


@dataclass
class QueryLog:
    """An ordered collection of log entries."""

    entries: list[LogEntry] = field(default_factory=list)
    #: raw log lines folded into earlier statements by
    #: :meth:`load_plain` (multi-line SQL) — extraction-rate taxonomy
    #: bookkeeping, not errors
    continuation_lines: int = 0

    def append(self, entry: LogEntry) -> None:
        self.entries.append(entry)

    def __len__(self) -> int:
        return len(self.entries)

    def __iter__(self) -> Iterator[LogEntry]:
        return iter(self.entries)

    def __getitem__(self, index: int) -> LogEntry:
        return self.entries[index]

    def statements(self) -> list[str]:
        return [entry.sql for entry in self.entries]

    def statements_with_users(self) -> list[tuple[str, str]]:
        return [(entry.sql, entry.user) for entry in self.entries]

    def users(self) -> set[str]:
        return {entry.user for entry in self.entries}

    def family_counts(self) -> dict[int, int]:
        counts: dict[int, int] = {}
        for entry in self.entries:
            counts[entry.family_id] = counts.get(entry.family_id, 0) + 1
        return counts

    def filter_family(self, family_id: int) -> "QueryLog":
        return QueryLog([e for e in self.entries
                         if e.family_id == family_id])

    def sample(self, size: int, rng) -> "QueryLog":
        """A uniform random sub-log (the paper clusters a sample too)."""
        if size >= len(self.entries):
            return QueryLog(list(self.entries))
        return QueryLog(rng.sample(self.entries, size))

    # -- persistence (JSON lines) --------------------------------------------

    def save(self, path: str | Path) -> None:
        with open(path, "w", encoding="utf-8") as handle:
            for entry in self.entries:
                handle.write(json.dumps({
                    "sql": entry.sql,
                    "user": entry.user,
                    "family_id": entry.family_id,
                    "timestamp": entry.timestamp,
                }) + "\n")

    @staticmethod
    def load(path: str | Path) -> "QueryLog":
        log = QueryLog()
        with open(path, encoding="utf-8") as handle:
            for line in handle:
                line = line.strip()
                if not line:
                    continue
                record = json.loads(line)
                log.append(LogEntry(
                    sql=record["sql"],
                    user=record.get("user", "anonymous"),
                    family_id=int(record.get("family_id", 0)),
                    timestamp=float(record.get("timestamp", 0.0)),
                ))
        return log

    # -- plain text (one statement per line, real-log style) -----------------

    def save_plain(self, path: str | Path) -> None:
        """One statement per line; newlines inside statements collapse.

        Real public SQL logs ship as flat text without metadata — this
        format round-trips the statements only (users become anonymous).
        """
        with open(path, "w", encoding="utf-8") as handle:
            for entry in self.entries:
                handle.write(" ".join(entry.sql.split()) + "\n")

    @staticmethod
    def load_plain(path: str | Path) -> "QueryLog":
        """Parse a flat-text log, folding multi-line statements.

        Real logs pretty-print long statements across lines.  The
        accumulation rule keeps the historical one-statement-per-line
        reading for flat logs while folding pretty-printed ones:

        * an **indented** non-blank line continues the statement above
          it (counted in :attr:`continuation_lines`, *not* as a parse
          error downstream);
        * a ``;`` line terminator or a blank line closes the current
          statement, so the next line — indented or not — starts fresh;
        * an unindented line starts a new statement;
        * ``#`` comment lines are skipped anywhere.
        """
        log = QueryLog()
        parts: list[str] = []

        def flush() -> None:
            if parts:
                sql = " ".join(parts)
                log.append(LogEntry(sql=sql, user="anonymous"))
                log.continuation_lines += len(parts) - 1
                parts.clear()

        with open(path, encoding="utf-8") as handle:
            for line in handle:
                sql = line.strip()
                if not sql:
                    flush()
                    continue
                if sql.startswith("#"):
                    continue
                indented = line[:1] in (" ", "\t")
                if not indented or not parts:
                    flush()
                parts.append(sql)
                if sql.endswith(";"):
                    flush()
        flush()
        return log

    @staticmethod
    def load_auto(path: str | Path) -> "QueryLog":
        """Load a log file, sniffing JSONL vs flat text.

        A first non-blank, non-comment line starting with ``{`` means
        JSONL (:meth:`load`); anything else is read as a flat-text SQL
        log (:meth:`load_plain`)."""
        with open(path, encoding="utf-8") as handle:
            for line in handle:
                stripped = line.strip()
                if not stripped or stripped.startswith("#"):
                    continue
                if stripped.startswith("{"):
                    return QueryLog.load(path)
                break
        return QueryLog.load_plain(path)
