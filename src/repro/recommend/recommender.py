"""Interest-area query recommendation (QueRIE-style, on access areas).

The paper's related work covers QueRIE — "designed to work directly with
SkyServer query logs" — and its own expert feedback notes the mined
areas "might not only be useful for the data owner, but for users as
well: They help to explore the database ... offer orientation in the
sense 'Which parts of the data do others deem important?'".

:class:`InterestRecommender` operationalizes that: fitted on the
clustered access areas of the community, it takes a user's query (or its
area) and returns the nearest aggregated interest areas — each with its
popularity, a representative medoid query, and ready-to-run SQL.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Optional, Sequence

from ..clustering.aggregation import AggregatedArea, aggregate_cluster
from ..clustering.dbscan import DBSCANResult
from ..core.area import AccessArea
from ..core.extractor import AccessAreaExtractor
from ..distance.query_distance import QueryDistance
from ..schema.statistics import StatisticsCatalog

Distance = Callable[[AccessArea, AccessArea], float]


@dataclass(frozen=True)
class Recommendation:
    """One suggested interest area."""

    aggregated: AggregatedArea
    distance: float
    popularity: int  # cluster cardinality
    suggested_sql: str
    medoid: AccessArea

    def describe(self) -> str:
        return (f"(d={self.distance:.2f}, {self.popularity} queries) "
                f"{self.aggregated.describe()}")


@dataclass
class _FittedCluster:
    aggregated: AggregatedArea
    medoid: AccessArea
    members: list[AccessArea]


@dataclass
class InterestRecommender:
    """Recommends community interest areas near a user's query."""

    stats: StatisticsCatalog
    extractor: Optional[AccessAreaExtractor] = None
    resolution: float = 0.05
    min_cluster_size: int = 5
    _clusters: list[_FittedCluster] = field(default_factory=list,
                                            repr=False)

    def __post_init__(self) -> None:
        self._distance: Distance = QueryDistance(self.stats,
                                                 self.resolution)

    # -- fitting ------------------------------------------------------------

    def fit(self, areas: Sequence[AccessArea],
            clustering: DBSCANResult,
            sigma: float = 3.0) -> "InterestRecommender":
        """Index the clusters of a finished clustering run."""
        self._clusters = []
        for cluster_id, indices in clustering.clusters().items():
            members = [areas[i] for i in indices]
            if len(members) < self.min_cluster_size:
                continue
            aggregated = aggregate_cluster(cluster_id, members,
                                           self.stats, sigma=sigma)
            medoid = self._medoid(members)
            self._clusters.append(
                _FittedCluster(aggregated, medoid, members))
        self._clusters.sort(key=lambda c: c.aggregated.cardinality,
                            reverse=True)
        return self

    def _medoid(self, members: list[AccessArea],
                sample_cap: int = 25) -> AccessArea:
        """The member minimizing total distance to the others (sampled)."""
        candidates = members[:sample_cap]
        best, best_cost = candidates[0], float("inf")
        for candidate in candidates:
            cost = sum(self._distance(candidate, other)
                       for other in candidates)
            if cost < best_cost:
                best, best_cost = candidate, cost
        return best

    @property
    def n_clusters(self) -> int:
        return len(self._clusters)

    # -- recommendation ----------------------------------------------------------

    def recommend(self, area: AccessArea, k: int = 5,
                  max_distance: float = 2.0,
                  exclude_exact: bool = True) -> list[Recommendation]:
        """The ``k`` interest areas nearest to ``area``.

        ``exclude_exact`` drops clusters whose medoid is at distance ~0 —
        the user is already there, recommending it adds nothing.
        """
        scored: list[Recommendation] = []
        for cluster in self._clusters:
            distance = self._distance(area, cluster.medoid)
            if distance > max_distance:
                continue
            if exclude_exact and distance < 1e-9:
                continue
            scored.append(Recommendation(
                aggregated=cluster.aggregated,
                distance=distance,
                popularity=cluster.aggregated.cardinality,
                suggested_sql=cluster.aggregated.to_sql(),
                medoid=cluster.medoid,
            ))
        scored.sort(key=lambda r: (r.distance, -r.popularity))
        return scored[:k]

    def recommend_for_sql(self, sql: str, k: int = 5) -> \
            list[Recommendation]:
        """Convenience wrapper: extract then recommend."""
        if self.extractor is None:
            raise ValueError("recommender was built without an extractor")
        area = self.extractor.extract(sql).area
        return self.recommend(area, k)

    def popular(self, k: int = 5) -> list[Recommendation]:
        """The globally most popular interest areas (cold start)."""
        out = []
        for cluster in self._clusters[:k]:
            out.append(Recommendation(
                aggregated=cluster.aggregated,
                distance=float("nan"),
                popularity=cluster.aggregated.cardinality,
                suggested_sql=cluster.aggregated.to_sql(),
                medoid=cluster.medoid,
            ))
        return out
