"""Interest-area query recommendation (QueRIE-style, on access areas).

The paper's related work covers QueRIE — "designed to work directly with
SkyServer query logs" — and its own expert feedback notes the mined
areas "might not only be useful for the data owner, but for users as
well: They help to explore the database ... offer orientation in the
sense 'Which parts of the data do others deem important?'".

:class:`InterestRecommender` operationalizes that: fitted on the
clustered access areas of the community, it takes a user's query (or its
area) and returns the nearest aggregated interest areas — each with its
popularity, a representative medoid query, and ready-to-run SQL.

Multiplicity matters: SkyServer-style logs collapse 33–133× under the
intern pool, so a cluster of 3 unique areas may stand for 10,000 logged
queries.  :meth:`InterestRecommender.fit` therefore accepts per-area
``weights`` and canonicalizes *every* population — weighted-unique or
expanded — to the same (unique representatives, multiplicities) form
before aggregating, so the two fits are bitwise identical and
``popularity`` always reports the true weighted cardinality.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Optional, Sequence

from ..clustering.aggregation import AggregatedArea, aggregate_cluster
from ..clustering.dbscan import DBSCANResult
from ..core.area import AccessArea
from ..core.extractor import AccessAreaExtractor
from ..distance.query_distance import QueryDistance
from ..schema.statistics import StatisticsCatalog

Distance = Callable[[AccessArea, AccessArea], float]


@dataclass(frozen=True)
class Recommendation:
    """One suggested interest area.

    ``distance`` is ``None`` for cold-start suggestions from
    :meth:`InterestRecommender.popular` — there is no reference query to
    measure from, and a ``NaN`` placeholder would poison any caller
    sorting mixed recommendation lists (``nan`` compares false against
    everything, so sorts silently misplace it).
    """

    aggregated: AggregatedArea
    distance: Optional[float]
    popularity: int  # weighted cluster cardinality (logged queries)
    suggested_sql: str
    medoid: AccessArea

    def describe(self) -> str:
        if self.distance is None:
            return (f"(popular, {self.popularity} queries) "
                    f"{self.aggregated.describe()}")
        return (f"(d={self.distance:.2f}, {self.popularity} queries) "
                f"{self.aggregated.describe()}")


@dataclass
class _FittedCluster:
    aggregated: AggregatedArea
    medoid: AccessArea
    members: list[AccessArea]
    weights: list[int]


@dataclass
class InterestRecommender:
    """Recommends community interest areas near a user's query."""

    stats: StatisticsCatalog
    extractor: Optional[AccessAreaExtractor] = None
    resolution: float = 0.05
    min_cluster_size: int = 5
    _clusters: list[_FittedCluster] = field(default_factory=list,
                                            repr=False)

    def __post_init__(self) -> None:
        self._distance: Distance = QueryDistance(self.stats,
                                                 self.resolution)

    # -- fitting ------------------------------------------------------------

    def fit(self, areas: Sequence[AccessArea],
            clustering: DBSCANResult,
            sigma: float = 3.0,
            weights: Optional[Sequence[int]] = None
            ) -> "InterestRecommender":
        """Index the clusters of a finished clustering run.

        ``weights`` — optional positive multiplicities aligned with
        ``areas`` (intern-pool duplicate counts): area ``i`` stands for
        ``weights[i]`` logged queries.  Cluster members are first
        collapsed to their unique representatives (summing
        multiplicities), so ``min_cluster_size``, the 3σ aggregation,
        medoid choice, and ``popularity`` all see the weighted
        population.  Fitting ``u`` unique areas with weights is bitwise
        identical to fitting the expanded ``n``-query population
        unweighted.
        """
        if weights is not None and len(weights) != len(areas):
            raise ValueError(f"{len(weights)} weights do not match "
                             f"{len(areas)} areas")
        self._clusters = []
        for cluster_id, indices in clustering.clusters().items():
            members = [areas[i] for i in indices]
            raw = ([1] * len(members) if weights is None
                   else [int(weights[i]) for i in indices])
            unique, counts = _collapse(members, raw)
            if sum(counts) < self.min_cluster_size:
                continue
            aggregated = aggregate_cluster(cluster_id, unique,
                                           self.stats, sigma=sigma,
                                           weights=counts)
            medoid = self._medoid(unique, counts)
            self._clusters.append(
                _FittedCluster(aggregated, medoid, unique, counts))
        self._clusters.sort(key=lambda c: c.aggregated.cardinality,
                            reverse=True)
        return self

    def _medoid(self, members: list[AccessArea],
                weights: Sequence[int],
                sample_cap: int = 25) -> AccessArea:
        """The member minimizing total weighted distance to the others.

        The candidate/reference pool is capped at the first
        ``sample_cap`` *unique* members; each reference counts with its
        multiplicity, so a representative of 10k identical queries
        pulls the medoid as hard as 10k expanded copies would.
        """
        candidates = members[:sample_cap]
        counts = list(weights[:sample_cap])
        best, best_cost = candidates[0], float("inf")
        for candidate in candidates:
            cost = sum(count * self._distance(candidate, other)
                       for other, count in zip(candidates, counts))
            if cost < best_cost:
                best, best_cost = candidate, cost
        return best

    @property
    def n_clusters(self) -> int:
        return len(self._clusters)

    # -- recommendation ----------------------------------------------------------

    def recommend(self, area: AccessArea, k: int = 5,
                  max_distance: float = 2.0,
                  exclude_exact: bool = True) -> list[Recommendation]:
        """The ``k`` interest areas nearest to ``area``.

        ``exclude_exact`` drops clusters whose medoid is at distance ~0 —
        the user is already there, recommending it adds nothing.
        """
        scored: list[Recommendation] = []
        for cluster in self._clusters:
            distance = self._distance(area, cluster.medoid)
            if distance > max_distance:
                continue
            if exclude_exact and distance < 1e-9:
                continue
            scored.append(Recommendation(
                aggregated=cluster.aggregated,
                distance=distance,
                popularity=cluster.aggregated.cardinality,
                suggested_sql=cluster.aggregated.to_sql(),
                medoid=cluster.medoid,
            ))
        scored.sort(key=lambda r: (r.distance, -r.popularity))
        return scored[:k]

    def recommend_for_sql(self, sql: str, k: int = 5) -> \
            list[Recommendation]:
        """Convenience wrapper: extract then recommend."""
        if self.extractor is None:
            raise ValueError("recommender was built without an extractor")
        area = self.extractor.extract(sql).area
        return self.recommend(area, k)

    def popular(self, k: int = 5) -> list[Recommendation]:
        """The globally most popular interest areas (cold start)."""
        out = []
        for cluster in self._clusters[:k]:
            out.append(Recommendation(
                aggregated=cluster.aggregated,
                distance=None,
                popularity=cluster.aggregated.cardinality,
                suggested_sql=cluster.aggregated.to_sql(),
                medoid=cluster.medoid,
            ))
        return out


def _collapse(members: Sequence[AccessArea],
              weights: Sequence[int]
              ) -> tuple[list[AccessArea], list[int]]:
    """Order-preserving dedupe by canonical area identity, summing
    multiplicities — the shared canonical form both the expanded and
    the weighted-unique fit paths reduce to."""
    unique: list[AccessArea] = []
    counts: list[int] = []
    position: dict[AccessArea, int] = {}
    for area, weight in zip(members, weights):
        index = position.get(area)
        if index is None:
            position[area] = len(unique)
            unique.append(area)
            counts.append(0)
            index = position[area]
        counts[index] += int(weight)
    return unique, counts
