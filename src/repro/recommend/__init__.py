"""Query recommendation over mined interest areas (QueRIE-style)."""

from .recommender import InterestRecommender, Recommendation

__all__ = ["InterestRecommender", "Recommendation"]
