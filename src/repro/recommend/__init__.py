"""Query recommendation over mined interest areas (QueRIE-style)."""

from .fitting import fit_from_areas, fit_recommender
from .recommender import InterestRecommender, Recommendation

__all__ = ["InterestRecommender", "Recommendation", "fit_from_areas",
           "fit_recommender"]
