"""Shared recommender-fitting paths.

Two entrypoints hand queries to :class:`InterestRecommender` — the
``repro recommend`` CLI (batch: a processed log) and the interest
service's ``GET /recommend`` route (live: the incremental clusterer's
resident population).  Both must fit the *same* way or their rankings
would drift apart; this module is that one way:

* :func:`fit_recommender` — the core: unique areas + multiplicities +
  cluster labels → a fitted :class:`InterestRecommender`;
* :func:`fit_from_areas` — the batch wrapper: dedupe a raw area
  population, cluster it weighted (``compute_matrix`` auto-selection),
  then delegate to :func:`fit_recommender`.
"""

from __future__ import annotations

from typing import Optional, Sequence

from ..clustering.dbscan import DBSCANResult
from ..clustering.partitioned import partitioned_dbscan
from ..core.area import AccessArea
from ..core.extractor import AccessAreaExtractor
from ..core.pipeline import dedupe_areas
from ..distance.block_sparse import compute_matrix
from ..distance.query_distance import QueryDistance
from ..schema.statistics import StatisticsCatalog


def fit_recommender(areas: Sequence[AccessArea],
                    weights: Sequence[int],
                    labels: Sequence[int],
                    stats: StatisticsCatalog,
                    extractor: Optional[AccessAreaExtractor] = None, *,
                    resolution: float = 0.05,
                    min_cluster_size: int = 5,
                    sigma: float = 3.0):
    """Fit a recommender on an already-clustered unique population.

    ``areas``/``weights``/``labels`` are aligned per unique area — the
    shape both :meth:`~repro.clustering.incremental.IncrementalDBSCAN`
    state and a weighted batch run produce.
    """
    from .recommender import InterestRecommender

    recommender = InterestRecommender(
        stats, extractor=extractor, resolution=resolution,
        min_cluster_size=min_cluster_size)
    recommender.fit(list(areas), DBSCANResult(list(labels)),
                    sigma=sigma, weights=[int(w) for w in weights])
    return recommender


def fit_from_areas(areas: Sequence[AccessArea],
                   stats: StatisticsCatalog,
                   extractor: Optional[AccessAreaExtractor] = None, *,
                   eps: float = 0.12,
                   min_pts: int = 5,
                   matrix_mode: str = "auto",
                   neighbor_backend: str = "matrix",
                   n_jobs: int = 1,
                   resolution: float = 0.05,
                   min_cluster_size: int = 5,
                   sigma: float = 3.0):
    """Cluster a raw (possibly repeat-heavy) area population and fit.

    The population is interned to unique representatives, clustered
    with multiplicity weights over a ``compute_matrix``-selected
    backend, and handed to :func:`fit_recommender` — the exact batch
    mirror of the service's incremental path.
    """
    unique, weights, _ = dedupe_areas(areas)
    metric = QueryDistance(stats)
    matrix = compute_matrix(unique, metric, mode=matrix_mode, eps=eps,
                            n_jobs=n_jobs,
                            neighbor_backend=neighbor_backend)
    clustering = partitioned_dbscan(unique, metric, eps, min_pts,
                                    matrix=matrix, weights=weights,
                                    on_inexact="fallback")
    return fit_recommender(unique, weights, clustering.labels, stats,
                           extractor, resolution=resolution,
                           min_cluster_size=min_cluster_size,
                           sigma=sigma)
