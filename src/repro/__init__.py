"""repro — access-area mining from SQL query logs.

A full reproduction of "Identifying User Interests within the Data Space —
a Case Study with SkyServer" (EDBT 2015): a state-independent notion of
query *access areas*, their extraction from SQL logs (joins, aggregates,
nested queries), an overlap-based distance for clustering them with
DBSCAN, and the paper's complete evaluation harness against a synthetic
SkyServer substrate.

Typical use::

    from repro import AccessAreaExtractor, skyserver_schema

    extractor = AccessAreaExtractor(skyserver_schema())
    area = extractor.extract(
        "SELECT * FROM SpecObjAll WHERE plate BETWEEN 296 AND 3200").area
    print(area.describe())

See README.md for the architecture overview and EXPERIMENTS.md for the
paper-vs-measured record.
"""

from .analysis import (CaseStudyConfig, CaseStudyResult, run_case_study)
from .clustering import (DBSCAN, AggregatedArea, aggregate_cluster,
                         area_coverage, object_coverage, partitioned_dbscan)
from .core import (AccessArea, AccessAreaExtractor, ExtractionResult,
                   LogProcessingReport, process_log)
from .distance import (DistanceMatrix, MatrixStats, PredicateDistance,
                       QueryDistance)
from .engine import Database, QueryExecutor
from .obs import (MetricsRegistry, Tracer, configure_logging, get_logger,
                  get_registry, get_tracer, set_registry, set_tracer)
from .schema import (Column, ColumnType, Relation, Schema,
                     StatisticsCatalog, skyserver_schema)
from .sqlparser import parse
from .workload import (QueryLog, WorkloadConfig, build_database,
                       generate_workload)

__version__ = "1.0.0"

__all__ = [
    "CaseStudyConfig", "CaseStudyResult", "run_case_study",
    "DBSCAN", "AggregatedArea", "aggregate_cluster", "area_coverage",
    "object_coverage", "partitioned_dbscan",
    "AccessArea", "AccessAreaExtractor", "ExtractionResult",
    "LogProcessingReport", "process_log",
    "DistanceMatrix", "MatrixStats", "PredicateDistance", "QueryDistance",
    "Database", "QueryExecutor",
    "MetricsRegistry", "Tracer", "configure_logging", "get_logger",
    "get_registry", "get_tracer", "set_registry", "set_tracer",
    "Column", "ColumnType", "Relation", "Schema", "StatisticsCatalog",
    "skyserver_schema",
    "parse",
    "QueryLog", "WorkloadConfig", "build_database", "generate_workload",
    "__version__",
]
