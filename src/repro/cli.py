"""Command-line interface.

Subcommands:

* ``extract`` — print the access area of one SQL statement;
* ``generate`` — write a synthetic SkyServer-style log (JSONL);
* ``process`` — batch-extract a log file and print the Section 6.1 report;
* ``stream`` — monitor a log file incrementally, printing novelty events;
* ``casestudy`` — run the full pipeline and print the Table-1 report.

Examples::

    repro-skyserver extract "SELECT * FROM Photoz WHERE z < 0.1"
    repro-skyserver generate --queries 5000 --out log.jsonl
    repro-skyserver process log.jsonl
    repro-skyserver stream log.jsonl --warmup 200
    repro-skyserver casestudy --queries 4000 --sample 1500
"""

from __future__ import annotations

import argparse
import sys
from typing import Optional, Sequence

from .analysis import format_summary, format_table1
from .analysis.experiments import CaseStudyConfig, run_case_study
from .core import AccessAreaExtractor, process_log
from .core.stream import StreamMonitor
from .schema import StatisticsCatalog, skyserver_schema
from .schema.skyserver import CONTENT_BOUNDS
from .sqlparser import SqlError
from .workload import QueryLog, WorkloadConfig, generate_workload


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-skyserver",
        description="Access-area mining from SQL query logs "
                    "(EDBT 2015 SkyServer reproduction)")
    sub = parser.add_subparsers(dest="command", required=True)

    p_extract = sub.add_parser(
        "extract", help="extract the access area of one SQL statement")
    p_extract.add_argument("sql", help="the SELECT statement")
    p_extract.add_argument("--no-consolidate", action="store_true",
                           help="skip the consolidation stage")

    p_generate = sub.add_parser(
        "generate", help="generate a synthetic SkyServer-style query log")
    p_generate.add_argument("--queries", type=int, default=5000)
    p_generate.add_argument("--seed", type=int, default=13)
    p_generate.add_argument("--out", required=True,
                            help="output JSONL path")

    p_process = sub.add_parser(
        "process", help="batch-extract a JSONL log file")
    p_process.add_argument("log", help="JSONL log path")
    p_process.add_argument("--failures", type=int, default=5,
                           help="failure examples to print")

    p_stream = sub.add_parser(
        "stream", help="monitor a JSONL log incrementally")
    p_stream.add_argument("log", help="JSONL log path")
    p_stream.add_argument("--warmup", type=int, default=100)
    p_stream.add_argument("--events", type=int, default=30,
                          help="max events to print")

    p_case = sub.add_parser(
        "casestudy", help="run the full case-study pipeline")
    p_case.add_argument("--queries", type=int, default=4000)
    p_case.add_argument("--sample", type=int, default=1500)
    p_case.add_argument("--eps", type=float, default=0.12)
    p_case.add_argument("--min-pts", type=int, default=5)
    p_case.add_argument("--seed", type=int, default=13)
    p_case.add_argument("--rows", type=int, default=24,
                        help="table rows to print")
    p_case.add_argument("--n-jobs", type=int, default=1,
                        help="worker processes for the clustering "
                             "distance matrix (1 = serial, 0 = all "
                             "CPU cores)")
    return parser


def main(argv: Optional[Sequence[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    command = args.command
    if command == "extract":
        return _cmd_extract(args)
    if command == "generate":
        return _cmd_generate(args)
    if command == "process":
        return _cmd_process(args)
    if command == "stream":
        return _cmd_stream(args)
    return _cmd_casestudy(args)


def _cmd_extract(args: argparse.Namespace) -> int:
    extractor = AccessAreaExtractor(
        skyserver_schema(), consolidate=not args.no_consolidate)
    try:
        result = extractor.extract(args.sql)
    except SqlError as exc:
        print(f"cannot extract: {exc}", file=sys.stderr)
        return 1
    area = result.area
    print(f"relations : {', '.join(area.relations) or '(none)'}")
    print(f"area      : {area.cnf}")
    if area.notes:
        print(f"notes     : {'; '.join(area.notes)}")
    return 0


def _cmd_generate(args: argparse.Namespace) -> int:
    workload = generate_workload(
        WorkloadConfig(n_queries=args.queries, seed=args.seed))
    workload.log.save(args.out)
    print(f"wrote {len(workload.log):,} statements to {args.out}")
    return 0


def _cmd_process(args: argparse.Namespace) -> int:
    log = QueryLog.load(args.log)
    extractor = AccessAreaExtractor(skyserver_schema())
    report = process_log(log.statements_with_users(), extractor)
    print(f"statements       : {report.total:,}")
    print(f"areas extracted  : {report.extraction_count:,} "
          f"({report.extraction_rate:.2%})")
    print(f"  parse errors   : {report.parse_errors}")
    print(f"  lex errors     : {report.lex_errors}")
    print(f"  unsupported    : {report.unsupported_statements}")
    print(f"  CNF failures   : {report.cnf_failures}")
    for index, kind, message in report.failures[:args.failures]:
        print(f"  e.g. [{kind}] {log[index].sql[:60]!r}: {message[:50]}")
    return 0


def _cmd_stream(args: argparse.Namespace) -> int:
    log = QueryLog.load(args.log)
    schema = skyserver_schema()
    stats = StatisticsCatalog.from_exact_content(schema, CONTENT_BOUNDS)
    printed = 0

    def emit(event) -> None:
        nonlocal printed
        if printed < args.events:
            print(event)
            printed += 1

    monitor = StreamMonitor(
        AccessAreaExtractor(schema), stats=stats, on_event=emit,
        warmup=args.warmup)
    monitor.process_many(log.statements())
    print()
    print(monitor.summary())
    return 0


def _cmd_casestudy(args: argparse.Namespace) -> int:
    config = CaseStudyConfig(
        workload=WorkloadConfig(n_queries=args.queries, seed=args.seed),
        sample_size=args.sample,
        eps=args.eps,
        min_pts=args.min_pts,
        n_jobs=args.n_jobs,
    )
    result = run_case_study(config)
    print(format_summary(result))
    print()
    print(format_table1(result.rows, max_rows=args.rows))
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
