"""Command-line interface.

Subcommands:

* ``extract`` — print the access area of one SQL statement;
* ``generate`` — write a synthetic SkyServer-style log (JSONL);
* ``process`` — batch-extract a log file (JSONL or flat text,
  auto-detected; flat text folds indented multi-line SQL), cluster the
  areas, and print the Section 6.1 report;
* ``stream`` — monitor a log file incrementally, printing novelty events;
* ``serve`` — run the interest service: an async HTTP API holding the
  intern pool, incremental clusterer, and recommender resident;
* ``recommend`` — fit a recommender on a processed log and print the
  interest areas nearest to ``--sql`` (or the most popular ones);
* ``casestudy`` — run the full pipeline and print the Table-1 report;
* ``qa`` — randomized extraction-conformance harness (soundness +
  metamorphic oracles over random schemas/states, shrinking failures
  to a replayable JSON corpus);
* ``stats`` — render a ``--metrics-out`` dump / ``--trace-out`` trace;
* ``runs`` — the flight recorder: list/show/diff run records;
* ``perf`` — benchmark trajectories and the perf-regression guard.

Observability: every subcommand takes ``--log-level`` / ``--log-format``
(stderr diagnostics; also via ``REPRO_LOG_LEVEL`` / ``REPRO_LOG_FORMAT``),
and the pipeline subcommands take ``--trace-out FILE`` (JSONL span
trees) and ``--metrics-out FILE`` (JSON metrics dump).  User-facing
results stay on stdout; diagnostics go through the logging layer.

Flight recorder: ``process``/``casestudy``/``qa``/``stream`` write one
JSON run record per invocation under ``--runs-dir`` (default ``runs/``
or ``REPRO_RUNS_DIR``; ``--no-run-record`` opts out) with the config,
git SHA, stage waterfall, and metrics snapshot; ``--profile`` wraps
the stage bodies in cProfile and embeds hotspot tables plus a
``<run_id>.folded`` flamegraph file.

Examples::

    repro-skyserver extract "SELECT * FROM Photoz WHERE z < 0.1"
    repro-skyserver generate --queries 5000 --out log.jsonl
    repro-skyserver process log.jsonl --metrics-out m.json
    repro-skyserver stream log.jsonl --warmup 200
    repro-skyserver serve --port 8080 --eps 0.12
    repro-skyserver recommend log.jsonl --sql "SELECT * FROM Photoz" -k 3
    repro-skyserver casestudy --queries 4000 --sample 1500
    repro-skyserver qa --n-queries 500 --seed 0
    repro-skyserver qa --replay tests/qa/corpus
    repro-skyserver stats m.json --trace t.jsonl
    repro-skyserver runs list
    repro-skyserver runs diff prev latest
    repro-skyserver perf record --label baseline
    repro-skyserver perf check --budgets perf_budgets.toml
"""

from __future__ import annotations

import argparse
import json
import os
import sys
from typing import Optional, Sequence

from .analysis import format_summary, format_table1
from .analysis.experiments import CaseStudyConfig, run_case_study
from .core import AccessAreaExtractor, process_log
from .core.stream import StreamMonitor
from .distance.block_sparse import (MATRIX_MODES, NEIGHBOR_BACKENDS,
                                    compute_matrix)
from .distance.query_distance import QueryDistance
from .obs import (Profiler, Tracer, configure_logging, export,
                  get_logger, get_registry, profile_section, runrec,
                  set_profiler, set_tracer, trace)
from .obs import perf as obs_perf
from .schema import StatisticsCatalog, skyserver_schema
from .schema.skyserver import CONTENT_BOUNDS
from .sqlparser import SqlError
from .workload import QueryLog, WorkloadConfig, generate_workload

# Fixed name: ``python -m repro.cli`` would otherwise log as __main__.
logger = get_logger("cli")


def build_parser() -> argparse.ArgumentParser:
    logging_parent = argparse.ArgumentParser(add_help=False)
    logging_parent.add_argument(
        "--log-level", default=None,
        choices=["debug", "info", "warning", "error", "critical"],
        help="diagnostic verbosity on stderr (default: warning, "
             "or REPRO_LOG_LEVEL)")
    logging_parent.add_argument(
        "--log-format", default=None, choices=["human", "json"],
        help="diagnostic format (default: human, or REPRO_LOG_FORMAT)")

    obs_parent = argparse.ArgumentParser(add_help=False,
                                         parents=[logging_parent])
    obs_parent.add_argument(
        "--trace-out", default=None, metavar="FILE",
        help="write hierarchical span traces as JSONL")
    obs_parent.add_argument(
        "--metrics-out", default=None, metavar="FILE",
        help="write the metrics registry as JSON on exit")
    # Flight-recorder options shared by the recorded subcommands.
    obs_parent.add_argument(
        "--runs-dir", default=None, metavar="DIR",
        help="run-record directory (default: runs/ or REPRO_RUNS_DIR)")
    obs_parent.add_argument(
        "--no-run-record", action="store_true",
        help="skip writing the JSON run record")

    parser = argparse.ArgumentParser(
        prog="repro-skyserver",
        description="Access-area mining from SQL query logs "
                    "(EDBT 2015 SkyServer reproduction)")
    sub = parser.add_subparsers(dest="command", required=True)

    p_extract = sub.add_parser(
        "extract", parents=[logging_parent],
        help="extract the access area of one SQL statement")
    p_extract.add_argument("sql", help="the SELECT statement")
    p_extract.add_argument("--no-consolidate", action="store_true",
                           help="skip the consolidation stage")

    p_generate = sub.add_parser(
        "generate", parents=[logging_parent],
        help="generate a synthetic SkyServer-style query log")
    p_generate.add_argument("--queries", type=int, default=5000)
    p_generate.add_argument("--seed", type=int, default=13)
    p_generate.add_argument("--out", required=True,
                            help="output JSONL path")

    p_process = sub.add_parser(
        "process", parents=[obs_parent],
        help="batch-extract a JSONL log file and cluster the areas")
    p_process.add_argument("log", help="JSONL log path")
    p_process.add_argument("--failures", type=int, default=5,
                           help="failure examples to log")
    p_process.add_argument("--no-cluster", action="store_true",
                           help="skip the clustering stage")
    p_process.add_argument("--eps", type=float, default=0.12)
    p_process.add_argument("--min-pts", type=int, default=5)
    p_process.add_argument("--sample", type=int, default=2000,
                           help="max areas to cluster")
    p_process.add_argument("--cluster-seed", type=int, default=99,
                           help="sampling seed for the clustering stage")
    p_process.add_argument("--n-jobs", type=int, default=1,
                           help="worker processes for the distance "
                                "matrix (1 = serial, 0 = all cores)")
    p_process.add_argument("--matrix-mode", default="auto",
                           choices=list(MATRIX_MODES),
                           help="distance-matrix layout (auto: block-"
                                "sparse when eps is below the partition "
                                "exactness bound; kernel: block-sparse "
                                "with vectorized struct-of-arrays "
                                "blocks)")
    p_process.add_argument("--neighbor-backend", default="matrix",
                           choices=list(NEIGHBOR_BACKENDS),
                           help="range-query backend (vptree: per-"
                                "partition vantage-point trees; falls "
                                "back to matrix when preconditions "
                                "fail)")
    p_process.add_argument("--intern", default=True,
                           action=argparse.BooleanOptionalAction,
                           help="pool areas by canonical fingerprint and "
                                "cluster unique areas with multiplicity "
                                "weights (--no-intern: one object per "
                                "statement)")
    p_process.add_argument("--store-dir", default=None, metavar="DIR",
                           help="persistent area store: cold runs "
                                "persist areas + a log manifest, warm "
                                "re-runs skip SQL re-extraction "
                                "entirely")
    p_process.add_argument("--profile", dest="profile_hotspots",
                           action="store_true",
                           help="cProfile the extract/cluster stages "
                                "into the run record + folded stacks")

    p_stream = sub.add_parser(
        "stream", parents=[obs_parent],
        help="monitor a JSONL log incrementally")
    p_stream.add_argument("log", help="JSONL log path")
    p_stream.add_argument("--warmup", type=int, default=100)
    p_stream.add_argument("--events", type=int, default=30,
                          help="max events to print")
    p_stream.add_argument("--cluster", action="store_true",
                          help="maintain live DBSCAN labels while "
                               "streaming (incremental clustering)")
    p_stream.add_argument("--eps", type=float, default=0.12)
    p_stream.add_argument("--min-pts", type=int, default=5)
    p_stream.add_argument("--cluster-backend", default="sparse",
                          choices=("sparse", "vptree", "dense"),
                          help="neighbourhood index for --cluster")

    p_serve = sub.add_parser(
        "serve", parents=[obs_parent],
        help="run the interest service (async HTTP API over the "
             "resident pipeline)")
    p_serve.add_argument("--host", default="127.0.0.1")
    p_serve.add_argument("--port", type=int, default=8080,
                         help="TCP port (0 = ephemeral)")
    p_serve.add_argument("--backend", default="auto",
                         choices=("auto", "sparse", "vptree", "dense"),
                         help="incremental-clustering neighbourhood "
                              "backend (auto: sparse when eps is below "
                              "the conservative partition exactness "
                              "bound, dense otherwise)")
    p_serve.add_argument("--eps", type=float, default=0.12)
    p_serve.add_argument("--min-pts", type=int, default=5)
    p_serve.add_argument("--warmup", type=int, default=100,
                         help="extracted statements before novelty "
                              "events fire")
    p_serve.add_argument("--store-dir", default=None, metavar="DIR",
                         help="persistent area store backing the "
                              "resident state: ingests are journaled "
                              "and replayed on restart, and the "
                              "intern pool evicts to disk")
    p_serve.add_argument("--max-resident", type=int, default=None,
                         metavar="N",
                         help="cap on in-memory interned areas "
                              "(requires --store-dir; older areas "
                              "evict to the store)")
    p_serve.add_argument("--min-cluster-size", type=int, default=5,
                         help="smallest weighted cluster the "
                              "recommender indexes")

    p_recommend = sub.add_parser(
        "recommend", parents=[obs_parent],
        help="recommend interest areas mined from a processed log")
    p_recommend.add_argument("log", help="JSONL or flat-text log path")
    p_recommend.add_argument("--sql", default=None,
                             help="the user's query (omit for the "
                                  "globally most popular areas)")
    p_recommend.add_argument("-k", type=int, default=5,
                             help="recommendations to print")
    p_recommend.add_argument("--eps", type=float, default=0.12)
    p_recommend.add_argument("--min-pts", type=int, default=5)
    p_recommend.add_argument("--min-cluster-size", type=int, default=5)
    p_recommend.add_argument("--sample", type=int, default=2000,
                             help="max areas to cluster")
    p_recommend.add_argument("--cluster-seed", type=int, default=99,
                             help="sampling seed above --sample areas")
    p_recommend.add_argument("--matrix-mode", default="auto",
                             choices=list(MATRIX_MODES))
    p_recommend.add_argument("--neighbor-backend", default="matrix",
                             choices=list(NEIGHBOR_BACKENDS))

    p_case = sub.add_parser(
        "casestudy", parents=[obs_parent],
        help="run the full case-study pipeline")
    p_case.add_argument("--queries", type=int, default=4000)
    p_case.add_argument("--sample", type=int, default=1500)
    p_case.add_argument("--eps", type=float, default=0.12)
    p_case.add_argument("--min-pts", type=int, default=5)
    p_case.add_argument("--seed", type=int, default=13)
    p_case.add_argument("--rows", type=int, default=24,
                        help="table rows to print")
    p_case.add_argument("--n-jobs", type=int, default=1,
                        help="worker processes for the clustering "
                             "distance matrix (1 = serial, 0 = all "
                             "CPU cores)")
    p_case.add_argument("--matrix-mode", default="auto",
                        choices=list(MATRIX_MODES),
                        help="distance-matrix layout (auto: block-"
                             "sparse when eps is below the partition "
                             "exactness bound; kernel: block-sparse "
                             "with vectorized struct-of-arrays blocks)")
    p_case.add_argument("--neighbor-backend", default="matrix",
                        choices=list(NEIGHBOR_BACKENDS),
                        help="range-query backend (vptree: per-"
                             "partition vantage-point trees; falls "
                             "back to matrix when preconditions fail)")
    p_case.add_argument("--intern", default=True,
                        action=argparse.BooleanOptionalAction,
                        help="pool areas by canonical fingerprint and "
                             "cluster unique areas with multiplicity "
                             "weights (--no-intern: one object per "
                             "statement)")
    p_case.add_argument("--store-dir", default=None, metavar="DIR",
                        help="persistent area store: warm re-runs "
                             "replay the log manifest and reload "
                             "condensed distance blocks")
    p_case.add_argument("--profile", dest="profile_hotspots",
                        action="store_true",
                        help="cProfile the pipeline stages into the "
                             "run record + folded stacks")

    p_qa = sub.add_parser(
        "qa", parents=[obs_parent],
        help="run the randomized extraction-conformance harness")
    p_qa.add_argument("--n-queries", type=int, default=200,
                      help="total statements across all profiles")
    p_qa.add_argument("--seed", type=int, default=0)
    p_qa.add_argument("--profile", default="all",
                      choices=["all", "simple", "join", "aggregate",
                               "nested"],
                      help="restrict the sweep to one grammar profile")
    p_qa.add_argument("--max-rows", type=int, default=6,
                      help="max rows per relation in each random state")
    p_qa.add_argument("--corpus-dir", default=None, metavar="DIR",
                      help="write shrunken failures as JSON seeds here")
    p_qa.add_argument("--replay", default=None, metavar="DIR",
                      help="replay an existing corpus directory instead "
                           "of sweeping")
    p_qa.add_argument("--shrink", default=True,
                      action=argparse.BooleanOptionalAction,
                      help="delta-debug failures to minimal cases")
    # ``--profile`` is taken by the grammar-profile selector above.
    p_qa.add_argument("--profile-hotspots", dest="profile_hotspots",
                      action="store_true",
                      help="cProfile each QA grammar profile into the "
                           "run record + folded stacks")

    p_stats = sub.add_parser(
        "stats", parents=[logging_parent],
        help="render a metrics dump and/or a trace file")
    p_stats.add_argument("metrics", nargs="?", default=None,
                         help="metrics JSON written by --metrics-out")
    p_stats.add_argument("--trace", default=None, metavar="FILE",
                         help="trace JSONL written by --trace-out")
    p_stats.add_argument("--format", default="table",
                         choices=["table", "prometheus", "json"],
                         help="metrics rendering (default: table)")

    runs_dir_parent = argparse.ArgumentParser(add_help=False)
    runs_dir_parent.add_argument(
        "--runs-dir", default=None, metavar="DIR",
        help="run-record directory (default: runs/ or REPRO_RUNS_DIR)")
    p_runs = sub.add_parser(
        "runs", parents=[logging_parent],
        help="list/show/diff flight-recorder run records")
    runs_sub = p_runs.add_subparsers(dest="runs_command", required=True)
    runs_sub.add_parser("list", parents=[runs_dir_parent],
                        help="tabulate all run records")
    r_show = runs_sub.add_parser("show", parents=[runs_dir_parent],
                                 help="print one run record")
    r_show.add_argument("run", nargs="?", default="latest",
                        help="run id prefix, 'latest', or 'prev'")
    r_show.add_argument("--json", action="store_true",
                        help="dump the raw record instead of the "
                             "summary")
    r_diff = runs_sub.add_parser(
        "diff", parents=[runs_dir_parent],
        help="compare two run records (config, stage waterfall, "
             "metrics)")
    r_diff.add_argument("a", nargs="?", default="prev",
                        help="baseline run (id prefix/'latest'/'prev')")
    r_diff.add_argument("b", nargs="?", default="latest",
                        help="candidate run (id prefix/'latest'/'prev')")
    r_diff.add_argument("--json", action="store_true",
                        help="emit the structured diff as JSON")

    p_perf = sub.add_parser(
        "perf", parents=[logging_parent],
        help="benchmark trajectories and the perf-regression guard")
    perf_sub = p_perf.add_subparsers(dest="perf_command", required=True)
    f_record = perf_sub.add_parser(
        "record", help="flatten BENCH_*.json artifacts into the "
                       "trajectory store")
    f_record.add_argument("--bench-dir", default="benchmarks/out",
                          metavar="DIR",
                          help="directory holding BENCH_*.json")
    f_record.add_argument("--trajectory",
                          default="benchmarks/out/BENCH_trajectory.json",
                          metavar="FILE")
    f_record.add_argument("--label", default="baseline",
                          help="entry label (check compares labels)")
    f_check = perf_sub.add_parser(
        "check", help="compare trajectory labels against budgets; "
                      "exit 1 on regression")
    f_check.add_argument("--trajectory",
                         default="benchmarks/out/BENCH_trajectory.json",
                         metavar="FILE")
    f_check.add_argument("--budgets", default="perf_budgets.toml",
                         metavar="FILE")
    f_check.add_argument("--baseline", default="baseline",
                         help="baseline entry label")
    f_check.add_argument("--candidate", default="candidate",
                         help="candidate entry label")
    f_check.add_argument("--json", action="store_true",
                         help="emit the structured result as JSON")
    return parser


#: Subcommands that leave a flight-recorder run record by default.
_RECORDED_COMMANDS = ("process", "casestudy", "qa", "stream", "serve",
                      "recommend")

#: ``args`` entries excluded from the recorded config: bookkeeping,
#: not knobs that change what the run computes.
_UNRECORDED_ARGS = ("command", "log_level", "log_format", "runs_dir",
                    "no_run_record", "trace_out", "metrics_out")


def _resolve_runs_dir(args: argparse.Namespace) -> str:
    return (getattr(args, "runs_dir", None)
            or os.environ.get("REPRO_RUNS_DIR")
            or runrec.DEFAULT_RUNS_DIR)


def _dispatch(command: str, args: argparse.Namespace) -> int:
    if command == "extract":
        return _cmd_extract(args)
    if command == "generate":
        return _cmd_generate(args)
    if command == "process":
        return _cmd_process(args)
    if command == "stream":
        return _cmd_stream(args)
    if command == "serve":
        return _cmd_serve(args)
    if command == "recommend":
        return _cmd_recommend(args)
    if command == "stats":
        return _cmd_stats(args)
    if command == "qa":
        return _cmd_qa(args)
    if command == "runs":
        return _cmd_runs(args)
    if command == "perf":
        return _cmd_perf(args)
    return _cmd_casestudy(args)


def _finish_record(recorder, tracer, profiler) -> None:
    """Distill the run's trace/metrics/profile into the record and
    write it (plus the folded flamegraph file when profiling)."""
    if tracer is not None:
        recorder.set_waterfall(tracer.roots + tracer.open_roots)
    recorder.set_metrics(get_registry())
    if profiler is not None:
        recorder.set_profile(profiler)
    path = recorder.finalize()
    if profiler is not None and profiler.sections:
        profiler.write_folded(path.with_suffix(".folded"))
    logger.info("run record written to %s", path)


def main(argv: Optional[Sequence[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    configure_logging(getattr(args, "log_level", None),
                      getattr(args, "log_format", None))
    command = args.command

    recording = (command in _RECORDED_COMMANDS
                 and not getattr(args, "no_run_record", False))
    tracer = None
    trace_out = getattr(args, "trace_out", None)
    if trace_out or recording:
        # keep=True so the recorder can distill the stage waterfall
        # from the completed roots after the command returns.
        tracer = Tracer(sink=trace_out, keep=True)
        set_tracer(tracer)
    profiler = None
    if getattr(args, "profile_hotspots", False):
        profiler = Profiler()
        set_profiler(profiler)
    recorder = None
    if recording:
        config = {key: value for key, value in vars(args).items()
                  if key not in _UNRECORDED_ARGS}
        recorder = runrec.RunRecorder(
            command, runs_dir=_resolve_runs_dir(args), config=config,
            argv=list(argv) if argv is not None else None)
    try:
        exit_code = _dispatch(command, args)
        if recorder is not None:
            recorder.set(exit_code=exit_code)
            if exit_code != 0:
                recorder.record["status"] = "failed"
            _finish_record(recorder, tracer, profiler)
        return exit_code
    except BrokenPipeError:
        # Downstream closed the pipe (`runs list | head`) — not a
        # failure of the run; silence the interpreter's closing flush.
        devnull = os.open(os.devnull, os.O_WRONLY)
        os.dup2(devnull, sys.stdout.fileno())
        return 0
    except BaseException as exc:
        # A crashed run still leaves its flight-recorder entry: flush
        # the open span trees as partial traces, then write the record
        # with the error inline.
        if tracer is not None:
            open_roots = tracer.open_roots
            tracer.flush_open()
        else:
            open_roots = []
        if recorder is not None:
            recorder.record["status"] = "error"
            recorder.record["error"] = f"{type(exc).__name__}: {exc}"
            if tracer is not None:
                recorder.set_waterfall(tracer.roots + open_roots)
            recorder.set_metrics(get_registry())
            if profiler is not None:
                recorder.set_profile(profiler)
            recorder.finalize()
        raise
    finally:
        if profiler is not None:
            set_profiler(None)
        if tracer is not None:
            set_tracer(None)
            tracer.close()
        metrics_out = getattr(args, "metrics_out", None)
        if metrics_out:
            export.write_json(get_registry(), metrics_out)
            logger.info("metrics written to %s", metrics_out)


def _cmd_extract(args: argparse.Namespace) -> int:
    extractor = AccessAreaExtractor(
        skyserver_schema(), consolidate=not args.no_consolidate)
    try:
        result = extractor.extract(args.sql)
    except SqlError as exc:
        print(f"cannot extract: {exc}", file=sys.stderr)
        return 1
    area = result.area
    print(f"relations : {', '.join(area.relations) or '(none)'}")
    print(f"area      : {area.cnf}")
    if area.notes:
        print(f"notes     : {'; '.join(area.notes)}")
    return 0


def _cmd_generate(args: argparse.Namespace) -> int:
    workload = generate_workload(
        WorkloadConfig(n_queries=args.queries, seed=args.seed))
    workload.log.save(args.out)
    print(f"wrote {len(workload.log):,} statements to {args.out}")
    return 0


def _cmd_process(args: argparse.Namespace) -> int:
    from .store import open_store

    log = QueryLog.load_auto(args.log)
    schema = skyserver_schema()
    extractor = AccessAreaExtractor(schema)
    store = open_store(args.store_dir)
    with profile_section("extract"):
        report = process_log(log.statements_with_users(), extractor,
                             intern=args.intern, store=store)
    report.continuation_lines = log.continuation_lines
    if store is not None:
        mode = "warm replay" if report.warm else "cold run"
        print(f"area store       : {args.store_dir} ({mode}, "
              f"{len(store):,} areas, "
              f"{store.pool.stats.hit_rate:.0%} pool hit rate)")
    print(f"statements       : {report.total:,}")
    print(f"areas extracted  : {report.extraction_count:,} "
          f"({report.extraction_rate:.2%})")
    print(f"  parse errors   : {report.parse_errors}")
    print(f"  lex errors     : {report.lex_errors}")
    print(f"  unsupported    : {report.unsupported_statements}")
    print(f"  CNF failures   : {report.cnf_failures}")
    if report.continuation_lines:
        print(f"  multi-line SQL : {report.continuation_lines} "
              f"continuation lines folded")
    if report.interner is not None:
        intern_stats = report.intern_stats
        print(f"unique areas     : {intern_stats.pool_size:,} "
              f"({intern_stats.dedup_ratio:.1f}x dedup, "
              f"{intern_stats.hit_rate:.0%} hit rate)")
    for index, kind, message in report.failures[:args.failures]:
        logger.warning("failure example [%s] %r: %s", kind,
                       log[index].sql[:60], message[:50])

    if not args.no_cluster and report.extraction_count:
        with profile_section("cluster"):
            result = _cluster_report(report, schema, args)
        print(f"clusters found   : {result.n_clusters} "
              f"({result.noise_count} noise points)")
    if store is not None:
        store.close()
    return 0


def _cluster_report(report, schema, args: argparse.Namespace):
    """The process subcommand's clustering stage (sampled)."""
    import random

    from .clustering.dbscan import DBSCANResult
    from .clustering.partitioned import partitioned_dbscan
    from .core import dedupe_areas, expand_labels

    stats = StatisticsCatalog.from_exact_content(schema, CONTENT_BOUNDS)
    areas = report.areas()
    for area in areas:
        stats.observe_cnf(area.cnf)
    if len(areas) > args.sample:
        rng = random.Random(args.cluster_seed)
        areas = rng.sample(areas, args.sample)
    distance = QueryDistance(stats)
    if args.intern:
        unique, weights, inverse = dedupe_areas(areas)
        matrix = compute_matrix(unique, distance, mode=args.matrix_mode,
                                eps=args.eps, n_jobs=args.n_jobs,
                                neighbor_backend=args.neighbor_backend)
        matrix.stats.n_source_items = len(areas)
        deduped = partitioned_dbscan(
            unique, distance, args.eps, args.min_pts, matrix=matrix,
            weights=weights, on_inexact="fallback")
        return DBSCANResult(expand_labels(deduped.labels, inverse))
    matrix = compute_matrix(areas, distance, mode=args.matrix_mode,
                            eps=args.eps, n_jobs=args.n_jobs,
                            neighbor_backend=args.neighbor_backend)
    return partitioned_dbscan(areas, distance, args.eps, args.min_pts,
                              matrix=matrix, on_inexact="fallback")


def _cmd_stream(args: argparse.Namespace) -> int:
    log = QueryLog.load(args.log)
    schema = skyserver_schema()
    stats = StatisticsCatalog.from_exact_content(schema, CONTENT_BOUNDS)
    printed = 0

    def emit(event) -> None:
        nonlocal printed
        if printed < args.events:
            print(event)
            printed += 1

    monitor = StreamMonitor(
        AccessAreaExtractor(schema), stats=stats, on_event=emit,
        warmup=args.warmup,
        cluster_incrementally=args.cluster,
        cluster_eps=args.eps, cluster_min_pts=args.min_pts,
        cluster_backend=args.cluster_backend)
    with trace.span("stream", warmup=args.warmup,
                    cluster=args.cluster), \
            profile_section("stream"):
        monitor.process_many(log.statements())
    print()
    print(monitor.summary())
    if monitor.clusterer is not None:
        labels = monitor.clusterer.labels()
        sizes: dict[int, float] = {}
        for label, weight in zip(labels,
                                 monitor.clusterer.weights()):
            sizes[label] = sizes.get(label, 0.0) + weight
        for label in sorted(sizes):
            name = "noise" if label < 0 else f"cluster {label}"
            print(f"  {name:<12}: {sizes[label]:g} statements")
    return 0


def _cmd_serve(args: argparse.Namespace) -> int:
    import asyncio

    from .service import ServiceConfig, create_app, run_server

    config = ServiceConfig(
        eps=args.eps, min_pts=args.min_pts, backend=args.backend,
        warmup=args.warmup, min_cluster_size=args.min_cluster_size,
        store_dir=args.store_dir, max_resident=args.max_resident)
    app = create_app(config)
    print(f"interest service on http://{args.host}:{args.port} "
          f"(backend={config.resolved_backend()}, eps={config.eps}, "
          f"min_pts={config.min_pts}) — Ctrl-C to stop")
    if config.store_dir:
        print(f"area store {config.store_dir}: replayed "
              f"{app.state.replayed:,} journalled arrivals "
              f"({app.state.clusterer.n_clusters} clusters)")
    try:
        # On SIGINT, asyncio.run cancels the server task; run_server
        # absorbs the cancellation and returns normally, so the
        # summary prints on both the clean and the double-Ctrl-C path.
        asyncio.run(run_server(app, args.host, args.port))
    except KeyboardInterrupt:
        pass
    app.state.close()
    state = app.state.monitor.state
    print(f"\nstopped after {state.processed:,} statements "
          f"({app.state.clusterer.n_clusters} clusters, "
          f"{len(app.state.interner)} pooled areas)")
    return 0


def _cmd_recommend(args: argparse.Namespace) -> int:
    import random

    from .recommend import fit_from_areas

    log = QueryLog.load_auto(args.log)
    schema = skyserver_schema()
    extractor = AccessAreaExtractor(schema)
    with profile_section("extract"):
        report = process_log(log.statements_with_users(), extractor,
                             keep_failures=False)
    if not report.extraction_count:
        print("recommend: no access areas could be extracted from "
              f"{args.log}", file=sys.stderr)
        return 2
    stats = StatisticsCatalog.from_exact_content(schema, CONTENT_BOUNDS)
    areas = report.areas()
    for area in areas:
        stats.observe_cnf(area.cnf)
    if len(areas) > args.sample:
        areas = random.Random(args.cluster_seed).sample(areas,
                                                        args.sample)
    with profile_section("fit"):
        recommender = fit_from_areas(
            areas, stats, extractor, eps=args.eps,
            min_pts=args.min_pts, matrix_mode=args.matrix_mode,
            neighbor_backend=args.neighbor_backend,
            min_cluster_size=args.min_cluster_size)
    if args.sql is not None:
        try:
            recommendations = recommender.recommend_for_sql(args.sql,
                                                            k=args.k)
        except SqlError as exc:
            print(f"cannot extract an access area: {exc}",
                  file=sys.stderr)
            return 1
        print(f"{len(recommendations)} recommendation(s) from "
              f"{recommender.n_clusters} interest areas")
    else:
        recommendations = recommender.popular(k=args.k)
        print(f"{len(recommendations)} popular interest area(s) of "
              f"{recommender.n_clusters}")
    for rec in recommendations:
        print(f"  {rec.describe()}")
        print(f"    try: {rec.suggested_sql}")
    return 0


def _cmd_casestudy(args: argparse.Namespace) -> int:
    config = CaseStudyConfig(
        workload=WorkloadConfig(n_queries=args.queries, seed=args.seed),
        sample_size=args.sample,
        eps=args.eps,
        min_pts=args.min_pts,
        n_jobs=args.n_jobs,
        matrix_mode=args.matrix_mode,
        neighbor_backend=args.neighbor_backend,
        intern=args.intern,
        store_dir=args.store_dir,
    )
    with profile_section("casestudy"):
        result = run_case_study(config)
    print(format_summary(result))
    print()
    print(format_table1(result.rows, max_rows=args.rows))
    return 0


def _cmd_qa(args: argparse.Namespace) -> int:
    from .qa import (PROFILES, QAConfig, load_corpus, replay_case,
                     run_qa)

    if args.replay is not None:
        cases = load_corpus(args.replay)
        if not cases:
            print(f"qa: no corpus cases under {args.replay}",
                  file=sys.stderr)
            return 2
        bad = 0
        for path, case in cases:
            failures = replay_case(case)
            verdict = "ok" if not failures else "FAIL"
            print(f"{verdict:>4}  {path.name}  ({case.kind}) {case.sql}")
            for failure in failures:
                bad += 1
                print(f"      {failure.detail}")
        print(f"{len(cases)} case(s), {bad} failure(s)")
        return 0 if bad == 0 else 1

    profiles = PROFILES if args.profile == "all" else (args.profile,)
    config = QAConfig(
        n_queries=args.n_queries, seed=args.seed, profiles=profiles,
        max_rows=args.max_rows, shrink=args.shrink,
        corpus_dir=args.corpus_dir)
    report = run_qa(config)
    print(report.summary())
    for path in report.corpus_paths:
        print(f"shrunken case: {path}")
    return 0 if report.ok else 1


def _cmd_stats(args: argparse.Namespace) -> int:
    if args.metrics is None and args.trace is None:
        print("stats: provide a metrics JSON file and/or --trace FILE",
              file=sys.stderr)
        return 2
    shown = []
    if args.metrics is not None:
        snapshot = export.load_json(args.metrics)
        if args.format == "prometheus":
            print(export.to_prometheus(snapshot), end="")
        elif args.format == "json":
            print(export.to_json(snapshot))
        else:
            print(export.render_table(snapshot))
        shown.append("metrics")
    if args.trace is not None:
        if shown:
            print()
        roots = trace.load_trace(args.trace)
        print(f"trace: {len(roots)} root span(s)")
        for root in roots:
            print()
            print(trace.format_span_tree(root))
        shown.append("trace")
    return 0


def _cmd_runs(args: argparse.Namespace) -> int:
    runs_dir = _resolve_runs_dir(args)
    try:
        if args.runs_command == "list":
            print(runrec.format_runs_table(runrec.list_runs(runs_dir)))
            return 0
        if args.runs_command == "show":
            record = runrec.resolve_run(args.run, runs_dir)
            if args.json:
                print(json.dumps(record, indent=2, sort_keys=True))
            else:
                print(runrec.format_run(record))
            return 0
        # diff
        record_a = runrec.resolve_run(args.a, runs_dir)
        record_b = runrec.resolve_run(args.b, runs_dir)
        diff = runrec.diff_runs(record_a, record_b)
        if args.json:
            print(json.dumps(diff, indent=2, sort_keys=True))
        else:
            print(runrec.format_diff(diff))
        return 0
    except KeyError as exc:
        print(f"runs: {exc.args[0]}", file=sys.stderr)
        return 2


def _cmd_perf(args: argparse.Namespace) -> int:
    if args.perf_command == "record":
        metrics = obs_perf.collect_bench_metrics(args.bench_dir)
        if not metrics:
            print(f"perf record: no BENCH_*.json under "
                  f"{args.bench_dir}", file=sys.stderr)
            return 2
        entry = obs_perf.append_entry(
            args.trajectory, metrics, label=args.label,
            git_sha=runrec.git_sha())
        print(f"recorded {len(metrics)} metrics as "
              f"{entry['label']!r} in {args.trajectory}")
        return 0
    # check
    try:
        trajectory = obs_perf.load_trajectory(args.trajectory)
        budgets = obs_perf.load_budgets(args.budgets)
        result = obs_perf.check_regressions(
            trajectory, budgets, baseline_label=args.baseline,
            candidate_label=args.candidate)
    except (KeyError, ValueError, OSError) as exc:
        message = exc.args[0] if exc.args else exc
        print(f"perf check: {message}", file=sys.stderr)
        return 2
    if args.json:
        print(json.dumps(result, indent=2, sort_keys=True))
    else:
        print(obs_perf.format_check(result))
    return 0 if result["ok"] else 1


if __name__ == "__main__":
    raise SystemExit(main())
